#!/usr/bin/env python3
"""Generate a Graph Challenge style sparse DNN with RadiX-Net and run the inference engine.

The MIT/IEEE/Amazon Sparse DNN Graph Challenge distributes networks
generated with RadiX-Net.  This example regenerates challenge-style
instances at laptop scale, builds an :class:`InferenceEngine` (which
precomputes each layer's transposed weights once and runs the recurrence
``Y <- min(max(Y W + b, 0), 32)`` on a pluggable sparse backend),
verifies the surviving categories against a dense reference
implementation, compares backends and activation storage policies
(dense SpMM buffers vs CSR SpGEMM batches), demonstrates chunked
mini-batch streaming, round-trips the challenge TSV format (with its
binary sidecar cache) and streams it back layer by layer, runs the
fully streaming generate->infer and generate->disk->infer pipelines
(one CSR layer resident at a time -- the path that scales to the
official 16384/65536-neuron sizes), and reports edges/second across a
x4 neuron scaling series.

Backend selection: ``--backend {reference,scipy,vectorized}`` here, the
``REPRO_BACKEND`` environment variable, or ``repro.backends.use(...)``
in code.  Activation policy: ``--activations {auto,dense,sparse}``.

Run with:  python examples/graph_challenge_inference.py [--neurons 256] [--layers 24] [--backend scipy]
"""

import argparse
import tempfile

import repro.backends as backends
from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
    iter_generate_challenge_layers,
)
from repro.challenge.inference import InferenceEngine, engine_for, streaming_inference
from repro.challenge.io import (
    iter_challenge_layers,
    load_challenge_network,
    save_challenge_layers,
    save_challenge_network,
)
from repro.challenge.verify import category_checksum, verify_categories
from repro.experiments.scaling import graph_challenge_scaling
from repro.viz.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--neurons", type=int, default=256)
    parser.add_argument("--layers", type=int, default=24)
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", default=None, choices=backends.available_backends())
    parser.add_argument("--chunk-size", type=int, default=None,
                        help="mini-batch rows per chunk (bounds peak memory)")
    parser.add_argument("--activations", choices=["auto", "dense", "sparse"], default="auto",
                        help="activation storage policy (dense SpMM vs CSR SpGEMM)")
    args = parser.parse_args()

    print(f"generating challenge network: {args.neurons} neurons x {args.layers} layers, "
          f"{args.connections} connections/neuron")
    network = generate_challenge_network(
        args.neurons, args.layers, connections=args.connections, seed=args.seed
    )
    batch = challenge_input_batch(args.neurons, args.batch, seed=args.seed + 1)

    # The engine transposes each layer's weights once, at construction;
    # every run after that is transpose-free.
    engine = engine_for(network, args.backend)
    result = engine.run(batch, chunk_size=args.chunk_size, activations=args.activations)
    print(f"edges/layer: {network.topology.num_edges // args.layers}")
    print(f"backend:     {result.backend}")
    print(f"inference:   {result.total_seconds:.4f}s, {result.edges_per_second:,.0f} edges/s")
    print(f"activations: policy {result.activation_policy}, peak nnz "
          f"{result.peak_activation_nnz:,} (dense buffer: {batch.size:,} elements)")
    print(f"categories:  {result.categories.size} of {args.batch} "
          f"(checksum {category_checksum(result.categories)})")
    print(f"verified against dense reference: {verify_categories(network, batch)}")

    # Dense vs sparse activation storage: identical categories, different
    # peak activation memory (CSR batches shine once thresholding thins
    # the activations out).
    dense_run = engine.run(batch, activations="dense")
    sparse_run = engine.run(batch, activations="sparse")
    assert list(dense_run.categories) == list(sparse_run.categories)
    print("activation policy comparison (identical categories):")
    for run in (dense_run, sparse_run):
        print(f"  {run.activation_policy:<7} {run.total_seconds:.4f}s  "
              f"peak nnz {run.peak_activation_nnz:>10,}")

    profile = engine.layer_profile(batch)
    print(f"activation fraction after first/last layer: {profile[0]:.3f} / {profile[-1]:.3f}")
    print()

    # Compare every registered backend on the same instance: identical
    # categories, different edges/second.
    print("backend comparison (identical categories, per-backend throughput):")
    for name in backends.available_backends():
        per_backend = InferenceEngine(network, backend=name).run(batch)
        assert list(per_backend.categories) == list(result.categories)
        print(f"  {name:<11} {per_backend.total_seconds:.4f}s  "
              f"{per_backend.edges_per_second:>14,.0f} edges/s")
    print()

    # Chunked streaming: bounded peak memory for arbitrarily large batches.
    streamed = sum(r.categories.size for _, r in engine.stream(batch, chunk_size=max(1, args.batch // 8)))
    print(f"chunked streaming ({max(1, args.batch // 8)} rows/chunk): {streamed} categories (matches: "
          f"{streamed == result.categories.size})")
    print()

    # Round-trip the challenge TSV interchange format (the second load
    # hits the binary sidecar cache and memory-maps the weights), then
    # stream the saved network back layer by layer -- the engine starts
    # before later layers are even read.
    with tempfile.TemporaryDirectory() as directory:
        save_challenge_network(network, directory)
        reloaded = load_challenge_network(directory, args.neurons)
        assert reloaded.topology.same_topology(network.topology)
        print(f"TSV round-trip OK ({reloaded.num_layers} layer files + sidecar cache)")
        streamed_result = streaming_inference(
            iter_challenge_layers(directory, args.neurons),
            batch,
            threshold=network.threshold,
            backend=args.backend,
            activations=args.activations,
        )
        assert list(streamed_result.categories) == list(result.categories)
        print(f"layer-streamed inference from disk OK "
              f"({streamed_result.categories.size} categories, identical)")
    print()

    # Fully streaming pipeline: generate -> infer with the network NEVER
    # materialized.  iter_generate_challenge_layers builds one CSR layer
    # at a time (the shuffle is a sparse O(nnz) column permutation, not a
    # dense N^2 round-trip) and streaming_inference consumes it layer by
    # layer -- this is the path that scales to the official
    # 16384/65536-neuron challenge sizes.
    fully_streamed = streaming_inference(
        iter_generate_challenge_layers(
            args.neurons, args.layers, connections=args.connections, seed=args.seed
        ),
        batch,
        threshold=network.threshold,
        backend=args.backend,
        activations=args.activations,
    )
    assert list(fully_streamed.categories) == list(result.categories)
    print(f"generate->infer streaming pipeline OK (no resident network, "
          f"{fully_streamed.categories.size} categories, identical)")

    # The same stream writes straight to disk, one layer resident at a
    # time (TSV + incrementally built sidecar cache) -- `repro challenge
    # generate --neurons 16384 --layers 120 --out DIR` is this call.
    with tempfile.TemporaryDirectory() as directory:
        save_challenge_layers(
            directory,
            iter_generate_challenge_layers(
                args.neurons, args.layers, connections=args.connections, seed=args.seed
            ),
            neurons=args.neurons,
            num_layers=args.layers,
            threshold=network.threshold,
        )
        replayed = streaming_inference(
            iter_challenge_layers(directory, args.neurons),
            batch,
            threshold=network.threshold,
        )
        assert list(replayed.categories) == list(result.categories)
        print("generate->disk->infer streaming pipeline OK (one layer resident)")
    print()

    # Scaling series (x4 neurons per step), as in the challenge's scaling study.
    rows = graph_challenge_scaling(
        base_neurons=max(16, args.neurons // 16),
        sizes=3,
        num_layers=min(args.layers, 16),
        batch_size=32,
        connections=args.connections,
        seed=args.seed,
    )
    print(format_table(
        ["neurons/layer", "edges", "seconds", "edges/s", "verified"],
        [[int(r["neurons"]), int(r["edges"]), f"{r['seconds']:.4f}", f"{r['edges_per_second']:,.0f}", bool(r["verified"])] for r in rows],
    ))


if __name__ == "__main__":
    main()
