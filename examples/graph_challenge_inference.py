#!/usr/bin/env python3
"""Graph Challenge at scale: generate -> checkpointed streaming inference -> verify.

The MIT/IEEE/Amazon Sparse DNN Graph Challenge distributes networks
generated with RadiX-Net and asks for the ReLU-threshold recurrence
``Y <- min(max(Y W + b, 0), 32)`` over all layers.  This example walks
the *official-scale* workflow end to end, at laptop size -- the same
staged pipeline (:mod:`repro.challenge.pipeline`) that runs the
16384/65536-neuron instances, as one command sequence:

    repro challenge generate --neurons N --layers L --out DIR
    repro challenge run --dir DIR --neurons N --checkpoint-every K --prefetch P
    repro challenge run --resume DIR/checkpoint        # after any interrupt
    repro challenge verify --dir DIR --neurons N

Each step here is the library call behind the CLI line:

1. **generate** -- stream the network to disk one CSR layer at a time
   (TSV + binary sidecar; a single layer's nnz resident, never N^2);
2. **run** -- staged streaming inference: a LoadStage reads layer l+1
   from the sidecar on a background prefetch thread while layer l
   computes, a ComputeStage advances the activation batch through the
   backend's fused sparse kernels, and a CheckpointStage atomically
   persists the full pipeline state every K layers;
3. **interrupt + resume** -- a deliberately staged run stops mid-network
   (``stop_after``), then resumes from its checkpoint and finishes
   bit-identically to the uninterrupted run;
4. **verify** -- cross-check the surviving categories against the naive
   dense reference recurrence.

Backend selection: ``--backend {reference,scipy,vectorized}`` here, the
``REPRO_BACKEND`` environment variable, or ``repro.backends.use(...)``.
Activation policy: ``--activations {auto,dense,sparse}``.

Run with:  python examples/graph_challenge_inference.py [--neurons 256] [--layers 24]
"""

import argparse
import tempfile
import time
from pathlib import Path

import repro.backends as backends
from repro.challenge.generator import (
    challenge_input_batch,
    iter_generate_challenge_layers,
)
from repro.challenge.inference import InferenceEngine, streaming_inference
from repro.challenge.io import (
    load_challenge_network,
    read_challenge_meta,
    save_challenge_layers,
)
from repro.challenge.pipeline import (
    resume_challenge_pipeline,
    run_challenge_pipeline,
)
from repro.challenge.verify import category_checksum, verify_categories
from repro.utils.timing import format_rss_mb, peak_rss_mb


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--neurons", type=int, default=256)
    parser.add_argument("--layers", type=int, default=24)
    parser.add_argument("--connections", type=int, default=8)
    parser.add_argument("--batch", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", default=None, choices=backends.available_backends())
    parser.add_argument("--activations", choices=["auto", "dense", "sparse"], default="auto")
    parser.add_argument("--prefetch", type=int, default=2,
                        help="layers read ahead on a background thread (0 = no overlap)")
    parser.add_argument("--checkpoint-every", type=int, default=6,
                        help="atomically checkpoint the pipeline state every K layers")
    args = parser.parse_args()

    batch = challenge_input_batch(args.neurons, args.batch, seed=args.seed + 1)

    with tempfile.TemporaryDirectory() as tmp:
        net_dir = Path(tmp) / "net"

        # ------------------------------------------------------------------
        # 1. generate: stream the network to disk, one CSR layer resident
        #    (`repro challenge generate --neurons N --layers L --out DIR`)
        # ------------------------------------------------------------------
        start = time.perf_counter()
        save_challenge_layers(
            net_dir,
            iter_generate_challenge_layers(
                args.neurons, args.layers, connections=args.connections, seed=args.seed
            ),
            neurons=args.neurons,
            num_layers=args.layers,
            threshold=32.0,
        )
        meta = read_challenge_meta(net_dir, args.neurons)
        print(f"[generate] {meta.neurons} neurons x {meta.num_layers} layers "
              f"streamed to disk in {time.perf_counter() - start:.3f}s "
              f"(TSV + sidecar, one layer resident)")

        # ------------------------------------------------------------------
        # 2. run: checkpointed streaming inference with prefetch overlap
        #    (`repro challenge run --dir DIR --neurons N
        #      --checkpoint-every K --prefetch P`)
        # ------------------------------------------------------------------
        outcome = run_challenge_pipeline(
            net_dir, args.neurons, batch,
            backend=args.backend, activations=args.activations,
            prefetch=args.prefetch,
            checkpoint_dir=net_dir / "checkpoint",
            checkpoint_every=args.checkpoint_every,
        )
        result = outcome.result
        print(f"[run]      backend {result.backend}, policy {result.activation_policy}: "
              f"{result.total_seconds:.4f}s, {result.edges_per_second:,.0f} edges/s, "
              f"peak activation nnz {result.peak_activation_nnz:,}")
        print(f"[run]      categories {result.categories.size} of {args.batch} "
              f"(checksum {category_checksum(result.categories)}); "
              f"checkpoint at {outcome.checkpoint}")

        # ------------------------------------------------------------------
        # 3. interrupt + resume: stop deliberately mid-network, resume from
        #    the checkpoint, finish bit-identically
        #    (`--stop-after L` ... `repro challenge run --resume DIR/checkpoint`)
        # ------------------------------------------------------------------
        staged_dir = net_dir / "staged-checkpoint"
        half = max(1, args.layers // 2)
        staged = run_challenge_pipeline(
            net_dir, args.neurons, batch,
            backend=args.backend, activations=args.activations,
            prefetch=args.prefetch,
            checkpoint_dir=staged_dir, checkpoint_every=args.checkpoint_every,
            stop_after=half,
        )
        assert not staged.completed and staged.layers_done == half
        resumed = resume_challenge_pipeline(staged_dir)
        assert resumed.completed and resumed.resumed_from == half
        assert list(resumed.result.categories) == list(result.categories)
        assert (resumed.result.activations == result.activations).all()
        print(f"[resume]   stopped after layer {half}, resumed from checkpoint, "
              f"finished layers {half + 1}..{args.layers}: bit-identical result")

        # overlap on/off, same categories -- at official scale the prefetch
        # thread hides the sidecar/TSV read latency behind the kernels
        # (single-core machines cannot overlap; the comparison still runs)
        start = time.perf_counter()
        no_overlap = run_challenge_pipeline(
            net_dir, args.neurons, batch, backend=args.backend,
            activations=args.activations, prefetch=0, use_cache=False,
            record_timing=False,
        )
        off_seconds = time.perf_counter() - start
        start = time.perf_counter()
        overlapped = run_challenge_pipeline(
            net_dir, args.neurons, batch, backend=args.backend,
            activations=args.activations, prefetch=args.prefetch, use_cache=False,
            record_timing=False,
        )
        on_seconds = time.perf_counter() - start
        assert list(overlapped.result.categories) == list(no_overlap.result.categories)
        print(f"[overlap]  TSV-parsing run: prefetch off {off_seconds:.3f}s, "
              f"prefetch {args.prefetch} {on_seconds:.3f}s "
              f"(peak RSS {format_rss_mb(peak_rss_mb())})")

        # ------------------------------------------------------------------
        # 4. verify: cross-check against the naive dense reference
        #    (`repro challenge verify --dir DIR --neurons N`)
        # ------------------------------------------------------------------
        network = load_challenge_network(net_dir, args.neurons)
        verified = verify_categories(network, batch, backend=args.backend,
                                     activations=args.activations)
        print(f"[verify]   categories match the dense reference: {verified}")

        # The in-memory engine and the disk pipeline are the same recurrence
        # (one implementation, repro.challenge.pipeline.run_pipeline), so the
        # engine -- and the fully streaming generate->infer path that never
        # touches disk at all -- agree bit for bit.
        engine = InferenceEngine(network, backend=args.backend,
                                 activations=args.activations)
        in_memory = engine.run(batch)
        assert list(in_memory.categories) == list(result.categories)
        no_disk = streaming_inference(
            iter_generate_challenge_layers(
                args.neurons, args.layers, connections=args.connections, seed=args.seed
            ),
            batch, threshold=network.threshold, backend=args.backend,
            activations=args.activations, prefetch=args.prefetch,
        )
        assert list(no_disk.categories) == list(result.categories)
        print("[parity]   in-memory engine and generate->infer streaming agree "
              "(single pipeline implementation)")

        print()
        print("backend comparison (identical categories, per-backend throughput):")
        for name in backends.available_backends():
            per_backend = InferenceEngine(network, backend=name).run(batch)
            assert list(per_backend.categories) == list(result.categories)
            print(f"  {name:<11} {per_backend.total_seconds:.4f}s  "
                  f"{per_backend.edges_per_second:>14,.0f} edges/s")


if __name__ == "__main__":
    main()
