#!/usr/bin/env python3
"""Serving quickstart: a resident challenge network behind request batching.

The serving subsystem (:mod:`repro.serve`) turns the one-shot challenge
pipeline into a long-lived service: the network is loaded resident
*once* (weights + precomputed transposes), and many concurrent clients'
requests are coalesced into micro-batches -- one
:func:`repro.challenge.pipeline.run_pipeline` step per batch, rows
scattered back per request bit-identically to single-shot inference.
Equivalent CLI session::

    repro challenge generate --neurons 256 --layers 12 --out DIR
    repro challenge serve --dir DIR --neurons 256 --port 7744 \
        --max-batch 32 --max-wait-ms 2 &
    repro challenge bench-serve --port 7744 --requests 500 --clients 8 \
        --json report.json --shutdown

This example runs the whole loop in one process:

1. **generate + load** -- stream a network to disk, then bring it up
   resident in a :class:`repro.serve.ServingEngine`;
2. **serve** -- start the asyncio front end on a background thread
   (ephemeral port, newline-delimited JSON protocol over TCP);
3. **talk to it** -- a :class:`repro.serve.ServeClient` pings the
   server, reads its metadata, and runs one inference request whose
   result is verified bit-for-bit against a single-shot
   :meth:`InferenceEngine.run`;
4. **load-generate** -- :func:`repro.serve.bench_serve` fires a few
   hundred concurrent requests and reports requests/second and latency
   percentiles, plus the server's own batching counters (how many rows
   each engine step amortized);
5. **warm restart** -- a pipeline checkpoint records the full serve
   configuration, so a second server comes up from the checkpoint
   directory alone (``--warm-start``).

Run with:  python examples/serve_quickstart.py [--neurons 256] [--layers 12]
"""

import argparse
import tempfile
from pathlib import Path

import numpy as np

from repro.challenge.generator import (
    challenge_input_batch,
    iter_generate_challenge_layers,
)
from repro.challenge.inference import InferenceEngine
from repro.challenge.io import load_challenge_network, save_challenge_layers
from repro.challenge.pipeline import run_challenge_pipeline
from repro.serve import ServeClient, ServingEngine, bench_serve, serve_in_background


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--neurons", type=int, default=256)
    parser.add_argument("--layers", type=int, default=12)
    parser.add_argument("--requests", type=int, default=200)
    parser.add_argument("--clients", type=int, default=6)
    args = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        net_dir = Path(tmp) / "net"
        print(f"== generating {args.neurons} neurons x {args.layers} layers ==")
        save_challenge_layers(
            net_dir,
            iter_generate_challenge_layers(
                args.neurons, args.layers, connections=8, seed=0
            ),
            neurons=args.neurons,
            num_layers=args.layers,
            threshold=32.0,
        )

        print("\n== loading the network resident (weights + transposes, once) ==")
        engine = ServingEngine.from_directory(net_dir, args.neurons, activations="dense")
        print(f"   {engine!r}")

        with serve_in_background(engine, max_batch=32, max_wait_ms=2.0) as handle:
            host, port = handle.address
            print(f"\n== serving on {host}:{port} ==")

            with ServeClient(host, port) as client:
                print(f"   ping -> {client.ping()['op']}")
                meta = client.meta()
                print(f"   meta -> {meta['neurons']} neurons, {meta['layers']} layers, "
                      f"backend {meta['backend']}, max_batch {meta['max_batch']}")

                rows = challenge_input_batch(args.neurons, 4, seed=1)
                response = client.infer(rows, request_id="demo", want_activations=True)
                single = InferenceEngine(
                    load_challenge_network(net_dir, args.neurons),
                    activations="dense",
                ).run(rows, record_timing=False)
                served = np.asarray(response["activations"])
                assert (served == single.activations).all()
                assert response["categories"] == [int(c) for c in single.categories]
                print(f"   infer -> categories {response['categories']} "
                      "(bit-identical to single-shot InferenceEngine.run)")
                print(f"   request stats: rode a {response['stats']['batch_rows']}-row "
                      f"batch, queue wait "
                      f"{response['stats']['queue_wait_s'] * 1000:.2f} ms")

            print(f"\n== load generator: {args.requests} requests x 2 rows "
                  f"from {args.clients} clients ==")
            report = bench_serve(
                host, port,
                requests=args.requests,
                clients=args.clients,
                rows_per_request=2,
                seed=2,
            )
            assert report["errors"] == 0, report["error_messages"]
            print(f"   {report['requests_per_second']:,.0f} requests/s, "
                  f"{report['rows_per_second']:,.0f} rows/s")
            print(f"   latency p50 {report['latency_p50_ms']:.2f} ms, "
                  f"p99 {report['latency_p99_ms']:.2f} ms")
            print(f"   batching: {report['server_stats']['batches']} engine steps, "
                  f"mean {report['server_stats']['mean_batch_rows']:.1f} rows/step "
                  f"(max_batch 32)")

        print("\n== warm restart from a pipeline checkpoint ==")
        batch = challenge_input_batch(args.neurons, 8, seed=3)
        run_challenge_pipeline(
            net_dir, args.neurons, batch, activations="dense",
            checkpoint_dir=Path(tmp) / "checkpoint", checkpoint_every=4,
        )
        warm = ServingEngine.from_checkpoint(Path(tmp) / "checkpoint")
        with serve_in_background(warm) as handle:
            with ServeClient(*handle.address) as client:
                meta = client.meta()
                print(f"   recovered {meta['neurons']} neurons x {meta['layers']} "
                      f"layers, policy {meta['activations']!r} from the checkpoint "
                      "(no --dir/--neurons flags)")
        print("\ndone: every served result matched single-shot inference bit-for-bit")


if __name__ == "__main__":
    main()
