#!/usr/bin/env python3
"""Quickstart: build a RadiX-Net, inspect its properties, and verify the paper's theory.

Run with:  python examples/quickstart.py
"""

from repro import exact_density, generate_radixnet
from repro.core.radixnet import RadixNetSpec
from repro.core.theory import predicted_radixnet_path_count, verify_theorem_1
from repro.topology.properties import degree_statistics, uniform_path_count
from repro.viz.ascii import render_adjacency, render_topology
from repro.viz.report import format_table


def main() -> None:
    # A RadiX-Net is specified by mixed-radix numeral systems N* and dense
    # layer widths D.  Here: two systems (2,2) and (2,2) sharing N' = 4,
    # and widths (1, 2, 2, 2, 1) -> layer sizes (4, 8, 8, 8, 4).
    systems = [(2, 2), (2, 2)]
    widths = [1, 2, 2, 2, 1]
    spec = RadixNetSpec(systems, widths, name="quickstart")
    net = generate_radixnet(systems, widths, name="quickstart")

    print("== RadiX-Net quickstart ==")
    print(f"specification: {spec}")
    print(f"layer sizes:   {net.layer_sizes}")
    print(f"edges:         {net.num_edges}")
    print(f"density:       {net.density():.4f} (eq. (4) predicts {exact_density(spec):.4f})")
    print()

    # Symmetry and path-connectedness (the paper's headline guarantees).
    print(f"path-connected: {net.is_path_connected()}")
    print(f"symmetric:      {net.is_symmetric()}")
    print(
        f"paths per (input, output) pair: {uniform_path_count(net)} "
        f"(Theorem 1 predicts {predicted_radixnet_path_count(spec)})"
    )
    check = verify_theorem_1(spec, topology=net)
    print(f"Theorem 1 verified: {check.matches_prediction}")
    print()

    # Per-layer degree regularity (no training bias baked into the topology).
    rows = []
    for stat in degree_statistics(net):
        rows.append([stat.layer, stat.out_degree_min, stat.in_degree_min, stat.out_regular and stat.in_regular])
    print(format_table(["layer", "out-degree", "in-degree", "regular"], rows))
    print()

    # Text rendering of the first adjacency submatrix and the whole topology.
    print("first adjacency submatrix (1_{1x2} (x) W_1):")
    print(render_adjacency(net.submatrix(0)))
    print()
    print(render_topology(net, max_nodes_per_layer=8))


if __name__ == "__main__":
    main()
