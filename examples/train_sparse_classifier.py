#!/usr/bin/env python3
"""Train a RadiX-Net, a random X-Net, a dense MLP, and a pruned MLP on the same task.

Reproduces the shape of the companion training experiment (E1): a de-novo
sparse RadiX-Net topology trains to an accuracy comparable with a dense
network of the same layer widths while using a fraction of the parameters.

Run with:  python examples/train_sparse_classifier.py [--quick]
"""

import argparse

from repro.experiments.training import accuracy_vs_density
from repro.viz.report import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller run for smoke-testing")
    parser.add_argument("--dataset", default="gaussian_mixture", help="registered dataset name")
    parser.add_argument("--samples", type=int, default=None, help="number of samples")
    parser.add_argument("--epochs", type=int, default=None, help="training epochs per arm")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    num_samples = args.samples or (320 if args.quick else 800)
    epochs = args.epochs or (6 if args.quick else 25)

    print(f"dataset={args.dataset} samples={num_samples} epochs={epochs}")
    result = accuracy_vs_density(
        dataset=args.dataset,
        num_samples=num_samples,
        num_classes=4,
        layer_widths=(16, 32, 32, 8),
        epochs=epochs,
        seed=args.seed,
    )

    rows = [
        [arm.name, f"{arm.density:.3f}", arm.parameter_count, f"{arm.val_accuracy:.3f}", f"{arm.train_loss:.3f}"]
        for arm in result.arms
    ]
    print()
    print(format_table(["arm", "density", "parameters", "val accuracy", "train loss"], rows))
    print()
    gap = result.accuracy_gap("radix-net")
    print(f"dense - radix-net accuracy gap: {gap:+.3f}")
    print(
        "interpretation: the de-novo sparse RadiX-Net reaches accuracy in the same "
        "range as the dense reference at a fraction of the parameters, matching the "
        "shape of the sparse-training results the paper builds on."
    )


if __name__ == "__main__":
    main()
