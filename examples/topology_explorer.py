#!/usr/bin/env python3
"""Explore the RadiX-Net design space: diversity, density surface, and family comparison.

Three short studies in one script:

1. the Figure-7 density surface over (mu, d), rendered as a text heatmap;
2. the structural diversity of RadiX-Nets vs explicit (Cayley) X-Nets at
   matched layer width;
3. a side-by-side property report (density, symmetry, path counts, spectral
   gap) for a RadiX-Net, a random X-Net, an explicit X-Net, and a dense
   network at comparable size.

Run with:  python examples/topology_explorer.py
"""

from repro.analysis.compare import compare_topologies
from repro.baselines.dense import dense_fnnt
from repro.baselines.xnet import explicit_xnet, random_xnet
from repro.core.radixnet import generate_radixnet
from repro.experiments.figures import figure7_density_surface
from repro.experiments.scaling import diversity_table
from repro.viz.ascii import heatmap
from repro.viz.report import format_report_rows, format_table


def density_surface_study() -> None:
    print("== 1. Density surface (paper Figure 7) ==")
    data = figure7_density_surface(mus=(2, 3, 4, 5, 6, 8, 10), depths=(1, 2, 3, 4, 5))
    print(
        heatmap(
            data.formula_surface,
            row_labels=[f"d={d}" for d in data.depths],
            col_labels=[str(m) for m in data.mus],
            log_scale=True,
        )
    )
    print(f"max |constructed - formula| / formula: {data.max_relative_error:.2e}")
    print()


def diversity_study() -> None:
    print("== 2. Structural diversity vs explicit X-Nets ==")
    rows = diversity_table(n_primes=(8, 12, 16, 24, 36, 48, 64))
    print(
        format_table(
            ["layer width N'", "RadiX-Net configs", "explicit X-Net configs", "ratio"],
            [[int(r["n_prime"]), int(r["radixnet_configurations"]), int(r["explicit_xnet_configurations"]), f"{r['ratio']:.1f}"] for r in rows],
        )
    )
    print()


def family_comparison_study() -> None:
    print("== 3. Family comparison at matched size ==")
    radix = generate_radixnet([(4, 4), (16,)], [1, 1, 1, 1], name="radix-net")
    random_net = random_xnet(radix.layer_sizes, 4, seed=0, name="random-xnet")
    cayley = explicit_xnet(radix.layer_sizes[0], len(radix.submatrices), 4, name="explicit-xnet")
    dense = dense_fnnt(radix.layer_sizes, name="dense")
    reports = compare_topologies([radix, random_net, cayley, dense])
    print(format_report_rows([r.as_row() for r in reports]))
    print(
        "\nthe RadiX-Net and the dense reference are symmetric (uniform path counts); "
        "the random X-Net and the low-degree explicit X-Net are not, and at this depth "
        "and degree they are not even fully path-connected -- the deterministic "
        "guarantee RadiX-Net provides without restricting layer widths."
    )


def main() -> None:
    density_surface_study()
    diversity_study()
    family_comparison_study()


if __name__ == "__main__":
    main()
