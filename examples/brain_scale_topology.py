#!/usr/bin/env python3
"""Size a RadiX-Net to brain-like neuron/synapse budgets and instantiate a scaled copy.

The paper's conclusion points to a companion effort that uses RadiX-Net to
"construct a neural net simulating the size and sparsity of the human
brain".  This example reproduces the sizing arithmetic for mouse- and
human-brain targets, reports the chosen RadiX-Net parameters and their
error against the targets, and builds a scaled-down instance whose degree
structure can actually be inspected in memory.

Run with:  python examples/brain_scale_topology.py
"""

from repro.brain.sizing import HUMAN_BRAIN, MOUSE_BRAIN, instantiate_scaled, size_radixnet_for_target
from repro.topology.properties import degree_statistics
from repro.viz.report import format_table


def main() -> None:
    rows = []
    for target in (MOUSE_BRAIN, HUMAN_BRAIN):
        sizing = size_radixnet_for_target(target)
        rows.append(
            [
                target.name,
                f"{target.neurons:.2e}",
                f"{target.synapses:.2e}",
                f"{target.synapses_per_neuron:.0f}",
                sizing.radix,
                f"{sizing.neurons_per_layer:,}",
                sizing.layers,
                f"{sizing.neuron_error:.1e}",
                f"{sizing.synapse_error:.2f}",
            ]
        )
    print("== Brain-scale RadiX-Net sizing ==")
    print(
        format_table(
            ["target", "neurons", "synapses", "syn/neuron", "degree", "neurons/layer", "layers", "neuron err", "synapse err"],
            rows,
        )
    )
    print()

    print("== Scaled-down instantiation (human target) ==")
    sizing = size_radixnet_for_target(HUMAN_BRAIN)
    topology = instantiate_scaled(sizing, scale=2e-6, max_layers=4)
    stats = degree_statistics(topology)
    print(f"layer sizes: {topology.layer_sizes}")
    print(f"edges:       {topology.num_edges:,}")
    print(f"density:     {topology.density():.4f}")
    print(f"per-layer degree: {stats[0].out_degree_min} (regular: {all(s.out_regular for s in stats)})")
    print(
        "\nthe scaled copy preserves the design's regular, extremely sparse degree "
        "structure; the full-size parameters above are what the RadiX-Net generator "
        "would be run with on a machine that can hold ~1e14 synapses."
    )


if __name__ == "__main__":
    main()
