"""Property-based tests (hypothesis) for the paper's structural invariants.

Randomized mixed-radix systems, dense-width lists, permutations, and
challenge-network parameters drive the generators, the sparse column
permutation kernel, and the challenge IO layer through their invariants:

* **generation** -- RadiX-Nets match the closed-form layer sizes
  (``expanded_layer_sizes``), the closed-form edge count
  (``radixnet_edge_count``), are degree-regular per layer, and satisfy
  Theorem 1's path-count symmetry; challenge networks keep exact
  connections/neuron under per-layer shuffling.
* **permutation** -- ``permute_columns`` agrees with the dense
  ``to_dense()[:, p]`` oracle on every backend, inverts exactly,
  composes, fixes the identity, preserves per-row degrees and the
  column-degree multiset (nnz "row-stochasticity"), and equals an
  actual SpGEMM with the permutation matrix.
* **IO** -- save/load round-trips arbitrary generated networks exactly
  (cached and TSV paths), the TSV parser coalesces shuffled/duplicated
  COO lines, and the streaming save path is byte-identical to the
  materialized one.

Sizes are kept tiny so hypothesis can explore many cases; the scale
story is covered by the ``slow``-marked smoke tests elsewhere.
"""

import math

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.backends as backends
from repro.challenge.generator import (
    generate_challenge_network,
    iter_generate_challenge_layers,
)
from repro.challenge.io import (
    _parse_layer_tsv,
    load_challenge_network,
    save_challenge_layers,
    save_challenge_network,
)
from repro.core.kronecker import expanded_layer_sizes
from repro.core.permutation import (
    column_permutation_matrix,
    invert_permutation,
    permute_csr_columns,
)
from repro.core.radixnet import RadixNetSpec, generate_from_spec, radixnet_edge_count
from repro.core.theory import predicted_radixnet_path_count
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import permute_columns, sparse_layer_step, spgemm
from repro.testing import random_csr

ALL_BACKENDS = backends.available_backends()

settings.register_profile(
    "repro-properties",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro-properties")


# --------------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------------- #
@st.composite
def radixnet_specs(draw):
    """Admissible (systems, widths) pairs with small N'.

    All systems but the last must share the product N' (paper constraint
    1) -- generated as permutations of one radix list -- and the last
    system's product must divide N' (constraint 2).
    """
    base = draw(st.lists(st.integers(2, 4), min_size=1, max_size=3))
    systems = [tuple(base)]
    if draw(st.booleans()):
        systems.append(tuple(draw(st.permutations(base))))
    if draw(st.booleans()):
        n_prime = math.prod(base)
        divisors = [d for d in range(2, n_prime + 1) if n_prime % d == 0]
        systems.append((draw(st.sampled_from(divisors)),))
    total = sum(len(s) for s in systems)
    widths = draw(
        st.lists(st.integers(1, 3), min_size=total + 1, max_size=total + 1)
    )
    return systems, widths


@st.composite
def csr_with_permutation(draw):
    """A random nonzero-valued CSR matrix and a permutation of its columns."""
    rows = draw(st.integers(1, 10))
    cols = draw(st.integers(1, 10))
    density = draw(st.floats(0.0, 1.0))
    seed = draw(st.integers(0, 2**31 - 1))
    matrix, _ = random_csr((rows, cols), density, seed)
    permutation = np.array(draw(st.permutations(range(cols))), dtype=np.int64)
    return matrix, permutation


@st.composite
def challenge_params(draw):
    """Valid (neurons, layers, connections, seed) for the challenge generator."""
    connections = draw(st.integers(2, 4))
    neurons = connections * draw(st.integers(1, 6))
    if neurons < 2:
        neurons = connections
    layers = draw(st.integers(1, 4))
    seed = draw(st.integers(0, 2**31 - 1))
    return neurons, layers, connections, seed


# --------------------------------------------------------------------------- #
# generation invariants
# --------------------------------------------------------------------------- #
class TestGenerationProperties:
    @given(spec_args=radixnet_specs())
    def test_layer_sizes_match_expanded_layer_sizes(self, spec_args):
        systems, widths = spec_args
        spec = RadixNetSpec(systems, widths)
        net = generate_from_spec(spec)
        assert net.layer_sizes == expanded_layer_sizes(widths, spec.n_prime)
        assert net.layer_sizes == spec.layer_sizes

    @given(spec_args=radixnet_specs())
    def test_edge_count_matches_closed_form(self, spec_args):
        systems, widths = spec_args
        spec = RadixNetSpec(systems, widths)
        net = generate_from_spec(spec)
        assert net.num_edges == radixnet_edge_count(spec)

    @given(spec_args=radixnet_specs())
    def test_per_layer_degrees_are_constant(self, spec_args):
        # layer i's submatrix is (all-ones D_i x D_{i+1}) (x) (mixed-radix
        # W with per-row and per-column nnz = radix), so every node of a
        # layer shares one out-degree and every node of the next one
        # in-degree
        systems, widths = spec_args
        spec = RadixNetSpec(systems, widths)
        net = generate_from_spec(spec)
        radices = spec.flattened_radices
        for i, submatrix in enumerate(net.submatrices):
            assert np.all(submatrix.row_degrees() == widths[i + 1] * radices[i])
            assert np.all(submatrix.col_degrees() == widths[i] * radices[i])

    @given(spec_args=radixnet_specs())
    def test_theorem_1_symmetry(self, spec_args):
        systems, widths = spec_args
        spec = RadixNetSpec(systems, widths)
        counts = generate_from_spec(spec).path_count_matrix().to_dense()
        predicted = predicted_radixnet_path_count(spec)
        assert counts.min() == counts.max() == predicted

    @given(params=challenge_params())
    def test_challenge_network_edge_accounting_exact(self, params):
        neurons, layers, connections, seed = params
        network = generate_challenge_network(
            neurons, layers, connections=connections, seed=seed
        )
        assert network.topology.num_edges == neurons * connections * layers
        assert network.connections_per_neuron == float(connections)

    @given(params=challenge_params())
    def test_challenge_layers_degree_regular_after_shuffle(self, params):
        # column permutations preserve row degrees exactly and permute
        # column degrees, so every shuffled layer stays bi-regular
        neurons, layers, connections, seed = params
        network = generate_challenge_network(
            neurons, layers, connections=connections, seed=seed
        )
        for weight in network.weights:
            assert np.all(weight.row_degrees() == connections)
            assert np.all(weight.col_degrees() == connections)

    @given(params=challenge_params())
    def test_streaming_generator_matches_materialized(self, params):
        neurons, layers, connections, seed = params
        network = generate_challenge_network(
            neurons, layers, connections=connections, seed=seed
        )
        streamed = list(
            iter_generate_challenge_layers(
                neurons, layers, connections=connections, seed=seed
            )
        )
        assert len(streamed) == network.num_layers
        for (weight, bias), expected_w, expected_b in zip(
            streamed, network.weights, network.biases
        ):
            assert weight.same_pattern(expected_w)
            assert np.array_equal(weight.data, expected_w.data)
            assert np.array_equal(bias, expected_b)


# --------------------------------------------------------------------------- #
# sparse column permutation invariants (all backends)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestPermutationProperties:
    @given(case=csr_with_permutation())
    def test_matches_dense_oracle(self, backend, case):
        # the exact old generation path: to_dense()[:, p] re-sparsified
        matrix, permutation = case
        expected = CSRMatrix.from_dense(matrix.to_dense()[:, permutation])
        got = permute_columns(matrix, permutation, backend=backend)
        assert got.same_pattern(expected)
        assert np.array_equal(got.data, expected.data)

    @given(case=csr_with_permutation())
    def test_inverse_round_trips_exactly(self, backend, case):
        matrix, permutation = case
        forward = permute_columns(matrix, permutation, backend=backend)
        back = permute_columns(forward, invert_permutation(permutation), backend=backend)
        assert back.same_pattern(matrix)
        assert np.array_equal(back.data, matrix.data)

    @given(case=csr_with_permutation(), data=st.data())
    def test_composition_law(self, backend, case, data):
        matrix, p = case
        q = np.array(
            data.draw(st.permutations(range(matrix.shape[1]))), dtype=np.int64
        )
        two_step = permute_columns(
            permute_columns(matrix, p, backend=backend), q, backend=backend
        )
        one_step = permute_columns(matrix, p[q], backend=backend)
        assert two_step.same_pattern(one_step)
        assert np.array_equal(two_step.data, one_step.data)

    @given(case=csr_with_permutation())
    def test_identity_is_noop(self, backend, case):
        matrix, _ = case
        identity = np.arange(matrix.shape[1], dtype=np.int64)
        got = permute_columns(matrix, identity, backend=backend)
        assert got.same_pattern(matrix)
        assert np.array_equal(got.data, matrix.data)

    @given(case=csr_with_permutation())
    def test_degrees_preserved(self, backend, case):
        # "row-stochastic in nnz": per-row degrees invariant, column
        # degrees carried along the permutation
        matrix, permutation = case
        got = permute_columns(matrix, permutation, backend=backend)
        np.testing.assert_array_equal(got.row_degrees(), matrix.row_degrees())
        np.testing.assert_array_equal(
            got.col_degrees(), matrix.col_degrees()[permutation]
        )
        assert got.nnz == matrix.nnz

    @given(case=csr_with_permutation())
    def test_result_is_canonical_csr(self, backend, case):
        matrix, permutation = case
        got = permute_columns(matrix, permutation, backend=backend)
        for i in range(got.shape[0]):
            cols, _ = got.row(i)
            assert np.all(np.diff(cols) > 0)

    @given(case=csr_with_permutation())
    def test_equals_spgemm_with_permutation_matrix(self, backend, case):
        matrix, permutation = case
        via_matmul = spgemm(
            matrix, column_permutation_matrix(permutation), backend=backend
        )
        got = permute_columns(matrix, permutation, backend=backend)
        np.testing.assert_allclose(got.to_dense(), via_matmul.to_dense(), atol=1e-12)


# --------------------------------------------------------------------------- #
# fused layer step invariants (every backend, numba included when present)
# --------------------------------------------------------------------------- #
@st.composite
def fused_step_case(draw):
    """Random (y, w, bias, threshold) for the fused Graph Challenge step.

    Activations are non-negative (post-ReLU batches always are), the
    bias is element-wise non-positive (the dispatch-layer precondition),
    and the threshold is a positive clamp.
    """
    batch = draw(st.integers(1, 6))
    neurons = draw(st.integers(1, 8))
    outputs = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 2**31 - 1))
    y, _ = random_csr((batch, neurons), draw(st.floats(0.0, 1.0)), seed)
    y = CSRMatrix(y.shape, y.indptr, y.indices, np.abs(y.data))
    w, _ = random_csr((neurons, outputs), draw(st.floats(0.0, 1.0)), seed + 1)
    bias_scale = draw(st.floats(0.0, 2.0))
    bias = -np.random.default_rng(seed + 2).random(outputs) * bias_scale
    threshold = draw(st.floats(0.25, 4.0))
    return y, w, bias, threshold


def _fused_dense_oracle(y, w, bias, threshold):
    """The recurrence in dense arithmetic with the stored-entry bias rule."""
    dy, dw = y.to_dense(), w.to_dense()
    z = dy @ dw
    z[dy.sum(axis=1) > 0] += bias
    return np.clip(z, 0.0, threshold)


@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestFusedLayerStepProperties:
    @given(case=fused_step_case())
    def test_matches_dense_oracle(self, backend, case):
        y, w, bias, threshold = case
        got = sparse_layer_step(y, w, bias, threshold, backend=backend)
        np.testing.assert_allclose(
            got.to_dense(), _fused_dense_oracle(y, w, bias, threshold), atol=1e-12
        )
        # the stored entries are already filtered and clamped
        if got.nnz:
            assert got.data.min() > 0.0
            assert got.data.max() <= threshold

    @given(case=fused_step_case())
    def test_result_is_canonical_csr(self, backend, case):
        y, w, bias, threshold = case
        got = sparse_layer_step(y, w, bias, threshold, backend=backend)
        for i in range(got.shape[0]):
            cols, _ = got.row(i)
            assert np.all(np.diff(cols) > 0)

    # -- pinned edge cases (the hypothesis strategy rarely lands on these
    # exactly, and the numba kernel inherits them via the parametrize) -- #
    def test_empty_weight_layer(self, backend):
        y, _ = random_csr((3, 5), 0.6, seed=1)
        y = CSRMatrix(y.shape, y.indptr, y.indices, np.abs(y.data))
        empty = CSRMatrix.zeros((5, 4))
        got = sparse_layer_step(y, empty, np.zeros(4), 2.0, backend=backend)
        assert got.shape == (3, 4)
        assert got.nnz == 0

    def test_empty_activation_batch(self, backend):
        w, _ = random_csr((5, 4), 0.6, seed=2)
        got = sparse_layer_step(
            CSRMatrix.zeros((3, 5)), w, np.zeros(4), 2.0, backend=backend
        )
        assert got.shape == (3, 4)
        assert got.nnz == 0

    def test_all_rows_clamped_to_zero(self, backend):
        # a bias more negative than any achievable product zeroes every row
        y = CSRMatrix.ones((3, 4))
        w = CSRMatrix.ones((4, 4))
        bias = np.full(4, -100.0)
        got = sparse_layer_step(y, w, bias, 2.0, backend=backend)
        assert got.nnz == 0
        np.testing.assert_array_equal(got.to_dense(), np.zeros((3, 4)))

    def test_threshold_exactly_at_cap(self, backend):
        # one product lands exactly on the threshold (stored, == cap) and
        # one overshoots (stored, clamped to the cap): both must be kept
        # and equal to the threshold bit-for-bit
        threshold = 1.75
        y = CSRMatrix((1, 1), [0, 1], [0], [1.0])
        w = CSRMatrix((1, 2), [0, 2], [0, 1], [threshold, 2 * threshold])
        got = sparse_layer_step(y, w, np.zeros(2), threshold, backend=backend)
        assert got.nnz == 2
        np.testing.assert_array_equal(got.data, [threshold, threshold])

    def test_exact_zero_after_bias_is_dropped(self, backend):
        # y @ w == 0.5, bias == -0.5: the sum is exactly 0.0, which the
        # strictly-positive filter must drop (ReLU keeps nothing at 0)
        y = CSRMatrix((1, 1), [0, 1], [0], [1.0])
        w = CSRMatrix((1, 1), [0, 1], [0], [0.5])
        got = sparse_layer_step(y, w, np.array([-0.5]), 2.0, backend=backend)
        assert got.nnz == 0

    @given(case=fused_step_case())
    def test_single_row_batch(self, backend, case):
        # a batch of one row follows the same oracle (the row-parallel
        # kernels must handle a single prange iteration)
        y, w, bias, threshold = case
        one = CSRMatrix(
            (1, y.shape[1]),
            np.array([0, y.indptr[1]], dtype=np.int64),
            y.indices[: y.indptr[1]],
            y.data[: y.indptr[1]],
        )
        got = sparse_layer_step(one, w, bias, threshold, backend=backend)
        np.testing.assert_allclose(
            got.to_dense(), _fused_dense_oracle(one, w, bias, threshold), atol=1e-12
        )


class TestPermutationHelpers:
    @given(permutation=st.permutations(range(12)))
    def test_invert_permutation_is_involutive(self, permutation):
        perm = np.array(permutation, dtype=np.int64)
        inverse = invert_permutation(perm)
        np.testing.assert_array_equal(perm[inverse], np.arange(perm.size))
        np.testing.assert_array_equal(inverse[perm], np.arange(perm.size))
        np.testing.assert_array_equal(invert_permutation(inverse), perm)

    @given(case=csr_with_permutation())
    def test_pure_numpy_primitive_matches_dispatch(self, case):
        matrix, permutation = case
        via_dispatch = permute_columns(matrix, permutation)
        direct = permute_csr_columns(matrix, permutation)
        assert direct.same_pattern(via_dispatch)
        assert np.array_equal(direct.data, via_dispatch.data)


# --------------------------------------------------------------------------- #
# IO invariants
# --------------------------------------------------------------------------- #
class TestIOProperties:
    @given(params=challenge_params(), use_cache=st.booleans())
    def test_save_load_round_trip_exact(self, tmp_path_factory, params, use_cache):
        neurons, layers, connections, seed = params
        directory = tmp_path_factory.mktemp("roundtrip")
        network = generate_challenge_network(
            neurons, layers, connections=connections, seed=seed
        )
        save_challenge_network(network, directory)
        loaded = load_challenge_network(directory, neurons, use_cache=use_cache)
        assert loaded.num_layers == network.num_layers
        assert loaded.threshold == network.threshold
        assert loaded.topology.same_topology(network.topology)
        for a, b in zip(loaded.weights, network.weights):
            assert a.same_pattern(b)
            np.testing.assert_array_equal(np.asarray(a.data), np.asarray(b.data))
        for a, b in zip(loaded.biases, network.biases):
            np.testing.assert_array_equal(a, b)

    @given(params=challenge_params())
    def test_streaming_save_byte_identical_to_materialized(
        self, tmp_path_factory, params
    ):
        neurons, layers, connections, seed = params
        network = generate_challenge_network(
            neurons, layers, connections=connections, seed=seed
        )
        materialized = tmp_path_factory.mktemp("materialized")
        streamed = tmp_path_factory.mktemp("streamed")
        save_challenge_network(network, materialized, write_sidecar=False)
        save_challenge_layers(
            streamed,
            iter_generate_challenge_layers(
                neurons, layers, connections=connections, seed=seed
            ),
            neurons=neurons,
            num_layers=layers,
            threshold=network.threshold,
            write_sidecar=False,
        )
        for path in sorted(materialized.glob("*.tsv")):
            assert (streamed / path.name).read_bytes() == path.read_bytes()

    @given(
        rows=st.integers(1, 8),
        density=st.floats(0.1, 1.0),
        seed=st.integers(0, 2**31 - 1),
        data=st.data(),
    )
    def test_tsv_parser_coalesces_any_line_order(
        self, tmp_path_factory, rows, density, seed, data
    ):
        # the official COO convention: lines in any order, duplicate
        # (row, col) pairs summed
        matrix, dense = random_csr((rows, rows), density, seed)
        coo = matrix.to_coo()
        lines = [
            f"{r + 1}\t{c + 1}\t{v:.17g}"
            for r, c, v in zip(coo.rows, coo.cols, coo.values)
        ]
        # duplicate a prefix of entries: the parse must sum them
        duplicates = data.draw(st.integers(0, len(lines)))
        expected = dense.copy()
        for line in lines[:duplicates]:
            r, c, v = line.split("\t")
            expected[int(r) - 1, int(c) - 1] += float(v)
        shuffled = data.draw(st.permutations(lines + lines[:duplicates]))
        path = tmp_path_factory.mktemp("tsv") / f"neuron{rows}-l1.tsv"
        path.write_text("\n".join(shuffled) + ("\n" if shuffled else ""), encoding="utf-8")
        parsed = _parse_layer_tsv(path, rows)
        np.testing.assert_allclose(parsed.to_dense(), expected, atol=1e-12)
