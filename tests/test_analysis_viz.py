"""Tests for repro.analysis and repro.viz."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.analysis.compare import compare_topologies, density_matched, topology_report
from repro.analysis.connectivity import (
    connectivity_fraction,
    degree_regularity,
    isolated_output_fraction,
    path_count_dispersion,
)
from repro.analysis.diversity import (
    count_explicit_xnet_configurations,
    count_radixnet_configurations,
    diversity_ratio,
    log_diversity,
)
from repro.baselines.dense import dense_fnnt
from repro.baselines.xnet import random_xnet
from repro.core.permutation import cyclic_permutation_matrix
from repro.core.radixnet import generate_radixnet
from repro.topology.fnnt import FNNT
from repro.viz.ascii import heatmap, render_adjacency, render_topology
from repro.viz.report import format_report_rows, format_table


class TestTopologyReport:
    def test_radixnet_report(self, small_radixnet):
        report = topology_report(small_radixnet)
        assert report.symmetric
        assert report.path_connected
        assert report.disconnected_pairs == 0
        assert report.path_count_min == report.path_count_max == 32
        assert report.out_regular
        assert report.density == pytest.approx(0.5)

    def test_dense_report(self):
        report = topology_report(dense_fnnt([4, 4, 4]))
        assert report.density == 1.0
        assert report.symmetric
        assert report.worst_spectral_gap == pytest.approx(1.0)

    def test_random_report_usually_not_symmetric(self):
        report = topology_report(random_xnet([16, 16, 16], 2, seed=0))
        assert not report.symmetric

    def test_compare_preserves_order_and_names(self, small_radixnet):
        reports = compare_topologies([small_radixnet, dense_fnnt([4, 4], name="ref")])
        assert [r.name for r in reports] == [small_radixnet.name, "ref"]

    def test_as_row_keys(self, small_radixnet):
        row = topology_report(small_radixnet).as_row()
        assert {"name", "edges", "density", "symmetric"}.issubset(row.keys())

    def test_density_matched(self):
        a = topology_report(random_xnet([20, 20], 5, seed=1))
        b = topology_report(random_xnet([20, 20], 5, seed=2))
        c = topology_report(dense_fnnt([20, 20]))
        assert density_matched([a, b])
        assert not density_matched([a, c])
        assert density_matched([])


class TestDiversity:
    def test_radixnet_count_small_case(self):
        # N' = 8 with one system: radix lists (8), (2,4), (4,2), (2,2,2) -> 4
        assert count_radixnet_configurations(8, 1) == 4

    def test_two_systems_multiply(self):
        one = count_radixnet_configurations(8, 1, include_divisor_last_system=False)
        two = count_radixnet_configurations(8, 2, include_divisor_last_system=False)
        assert two == one * one

    def test_divisor_last_system_increases_count(self):
        strict = count_radixnet_configurations(8, 2, include_divisor_last_system=False)
        relaxed = count_radixnet_configurations(8, 2, include_divisor_last_system=True)
        assert relaxed > strict

    def test_explicit_xnet_count_linear_in_width(self):
        assert count_explicit_xnet_configurations(10) == 9
        assert count_explicit_xnet_configurations(10, max_degree=4) == 4

    def test_diversity_ratio_grows_with_divisor_structure(self):
        assert diversity_ratio(36) > diversity_ratio(37)  # 37 is prime

    def test_log_diversity(self):
        assert log_diversity(8) == pytest.approx(np.log(count_radixnet_configurations(8, 2)))

    def test_validation(self):
        with pytest.raises(ValidationError):
            count_radixnet_configurations(1, 1)
        with pytest.raises(ValidationError):
            count_explicit_xnet_configurations(2, max_degree=0)


class TestConnectivity:
    def test_connectivity_fraction_bounds(self, small_radixnet):
        assert connectivity_fraction(small_radixnet) == 1.0
        sparse_random = random_xnet([20, 20, 20, 20], 1, seed=0)
        assert connectivity_fraction(sparse_random) < 1.0

    def test_isolated_output_fraction(self):
        identity_chain = FNNT([np.eye(4), np.eye(4)], validate=False)
        assert isolated_output_fraction(identity_chain) == 0.0
        assert connectivity_fraction(identity_chain) == pytest.approx(0.25)

    def test_degree_regularity(self, small_radixnet):
        assert degree_regularity(small_radixnet) == 1.0
        irregular = FNNT([np.array([[1.0, 1.0, 1.0], [1.0, 0.0, 0.0], [0.0, 1.0, 1.0]])])
        assert degree_regularity(irregular) < 1.0

    def test_path_count_dispersion(self, small_radixnet):
        assert path_count_dispersion(small_radixnet) == 0.0
        assert path_count_dispersion(random_xnet([16, 16, 16], 2, seed=3)) > 0.0


class TestAsciiViz:
    def test_render_adjacency(self):
        text = render_adjacency(cyclic_permutation_matrix(3))
        assert text == ".#.\n..#\n#.."

    def test_render_adjacency_accepts_dense(self):
        assert render_adjacency(np.eye(2)) == "#.\n.#"

    def test_render_adjacency_rejects_1d(self):
        with pytest.raises(ValidationError):
            render_adjacency(np.zeros(3))

    def test_render_topology_small(self):
        net = FNNT([np.eye(2) + np.roll(np.eye(2), 1, axis=1)], name="tiny")
        text = render_topology(net)
        assert "tiny" in text
        assert "0 -> 0,1" in text

    def test_render_topology_summarizes_large_layers(self, small_radixnet):
        text = render_topology(small_radixnet, max_nodes_per_layer=4)
        assert "edges" in text

    def test_heatmap_shapes_and_labels(self):
        values = np.array([[1.0, 0.5], [0.25, 0.125]])
        text = heatmap(values, row_labels=["d=1", "d=2"], col_labels=["2", "4"])
        assert "d=1" in text and "d=2" in text
        assert len(text.splitlines()) == 3

    def test_heatmap_log_scale_handles_wide_range(self):
        values = np.array([[1.0, 1e-6]])
        assert heatmap(values, log_scale=True)

    def test_heatmap_rejects_1d(self):
        with pytest.raises(ValidationError):
            heatmap(np.zeros(4))


class TestReportTables:
    def test_format_table_basic(self):
        text = format_table(["a", "b"], [[1, 2.5], ["x", "y"]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_validation(self):
        with pytest.raises(ValidationError):
            format_table([], [])
        with pytest.raises(ValidationError):
            format_table(["a"], [[1, 2]])

    def test_format_report_rows(self, small_radixnet):
        rows = [topology_report(small_radixnet).as_row()]
        text = format_report_rows(rows)
        assert "density" in text
        with pytest.raises(ValidationError):
            format_report_rows([])
