"""Tests for repro.baselines: dense, Cayley/X-Net, pruning, expander metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.baselines.cayley import cayley_graph_submatrix, cayley_xnet, symmetric_generator_set
from repro.baselines.dense import dense_edge_count, dense_fnnt, dense_parameter_count
from repro.baselines.expander import ExpansionSummary, expansion_summary, singular_values, spectral_gap
from repro.baselines.pruning import (
    magnitude_prune_mask,
    prune_model_to_topology,
    prune_weights,
    pruned_density,
)
from repro.baselines.xnet import explicit_xnet, random_xnet, xnet_density
from repro.core.mixed_radix_topology import mixed_radix_submatrix
from repro.topology.properties import degree_statistics, is_path_connected


class TestDense:
    def test_dense_fnnt_edges(self):
        net = dense_fnnt([3, 5, 2])
        assert net.num_edges == 25
        assert net.density() == 1.0

    def test_dense_edge_count(self):
        assert dense_edge_count([3, 5, 2]) == 25
        assert dense_edge_count([10, 10]) == 100

    def test_dense_parameter_count_with_biases(self):
        assert dense_parameter_count([3, 5, 2]) == 25 + 5 + 2
        assert dense_parameter_count([3, 5, 2], include_biases=False) == 25

    def test_rejects_single_layer(self):
        with pytest.raises(ValidationError):
            dense_fnnt([4])

    def test_rejects_zero_width(self):
        with pytest.raises(ValidationError):
            dense_edge_count([4, 0])


class TestCayley:
    def test_generator_set_is_symmetric(self):
        gens = symmetric_generator_set(10, 4)
        assert len(gens) == 4
        for g in gens:
            assert (10 - g) % 10 in gens or 2 * g % 10 == 0

    def test_generator_set_excludes_identity(self):
        assert 0 not in symmetric_generator_set(8, 3)

    def test_generator_set_degree_too_large(self):
        with pytest.raises(ValidationError):
            symmetric_generator_set(4, 4)

    def test_cayley_submatrix_is_circulant_and_regular(self):
        w = cayley_graph_submatrix(8, [1, 7, 2])
        np.testing.assert_array_equal(w.row_degrees(), np.full(8, 3))
        np.testing.assert_array_equal(w.col_degrees(), np.full(8, 3))
        dense = w.to_dense()
        # circulant: row j is row 0 rotated by j
        for j in range(8):
            np.testing.assert_array_equal(dense[j], np.roll(dense[0], j))

    def test_cayley_rejects_identity_generator(self):
        with pytest.raises(ValidationError):
            cayley_graph_submatrix(6, [0, 1])

    def test_cayley_rejects_empty_generators(self):
        with pytest.raises(ValidationError):
            cayley_graph_submatrix(6, [])

    def test_cayley_relation_to_mixed_radix(self):
        # a mixed-radix level-0 submatrix with radix k is the Cayley layer
        # of Z_n with generators {0..k-1} plus the identity offset 0 --
        # they share the circulant structure (offsets {1..k-1} vs {0..k-1}).
        mixed = mixed_radix_submatrix((2, 4), 0).to_dense()
        cayley = cayley_graph_submatrix(8, [1]).to_dense()
        np.testing.assert_array_equal(mixed, np.eye(8) + cayley)

    def test_cayley_xnet_structure(self):
        net = cayley_xnet(12, depth=3, degree=4)
        assert net.layer_sizes == (12, 12, 12, 12)
        assert is_path_connected(net)
        for stat in degree_statistics(net):
            assert stat.out_regular

    def test_explicit_xnet_is_cayley_xnet(self):
        assert explicit_xnet(10, 2, 3).same_topology(cayley_xnet(10, 2, 3))


class TestRandomXnet:
    def test_shape_and_validity(self):
        net = random_xnet([16, 24, 8], 3, seed=0)
        net.validate()
        assert net.layer_sizes == (16, 24, 8)

    def test_out_degree_on_smaller_side(self):
        net = random_xnet([8, 32], 4, seed=1)
        degrees = net.submatrix(0).row_degrees()
        assert degrees.min() >= 4

    def test_determinism(self):
        assert random_xnet([8, 8], 2, seed=3).same_topology(random_xnet([8, 8], 2, seed=3))

    def test_rejects_single_layer(self):
        with pytest.raises(ValidationError):
            random_xnet([8], 2)

    def test_expected_density_formula(self):
        assert xnet_density([10, 10], 3) == pytest.approx(30 / 100)
        assert xnet_density([4, 8], 2) == pytest.approx(8 / 32)

    @given(st.integers(4, 16), st.integers(4, 16), st.integers(1, 4), st.integers(0, 50))
    @settings(max_examples=25, deadline=None)
    def test_always_valid_property(self, a, b, degree, seed):
        random_xnet([a, b], degree, seed=seed).validate()


class TestPruning:
    def test_mask_keeps_requested_fraction(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(size=(20, 20))
        mask = magnitude_prune_mask(weights, 0.25)
        # the row/column repair can only add entries
        assert 0.25 <= mask.mean() <= 0.35

    def test_mask_keeps_largest_magnitudes(self):
        weights = np.array([[0.1, 5.0], [0.2, -4.0]])
        mask = magnitude_prune_mask(weights, 0.5)
        assert mask[0, 1] and mask[1, 1]

    def test_mask_never_empties_rows_or_columns(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(size=(10, 7))
        mask = magnitude_prune_mask(weights, 0.05)
        assert mask.sum(axis=1).min() >= 1
        assert mask.sum(axis=0).min() >= 1

    def test_prune_weights_zeroes_dropped_entries(self):
        weights = np.array([[1.0, 0.01], [0.02, 2.0]])
        pruned = prune_weights(weights, 0.5)
        assert pruned[0, 1] == 0.0 or pruned[1, 0] == 0.0
        assert pruned[0, 0] == 1.0 and pruned[1, 1] == 2.0

    def test_prune_model_to_topology_is_valid_fnnt(self):
        rng = np.random.default_rng(2)
        weight_matrices = [rng.normal(size=(8, 12)), rng.normal(size=(12, 4))]
        topo = prune_model_to_topology(weight_matrices, 0.3)
        topo.validate()
        assert topo.layer_sizes == (8, 12, 4)

    def test_pruned_density_at_least_target(self):
        rng = np.random.default_rng(3)
        weight_matrices = [rng.normal(size=(10, 10))]
        assert pruned_density(weight_matrices, 0.2) >= 0.2 - 1e-9

    def test_rejects_non_2d(self):
        with pytest.raises(ValidationError):
            magnitude_prune_mask(np.zeros(5), 0.5)

    def test_rejects_empty_model(self):
        with pytest.raises(ValidationError):
            prune_model_to_topology([], 0.5)


class TestExpanderMetrics:
    def test_singular_values_descending(self):
        sigma = singular_values(np.ones((4, 4)))
        assert np.all(np.diff(sigma) <= 1e-12)

    def test_complete_bipartite_is_perfect_expander(self):
        assert spectral_gap(np.ones((6, 6))) == pytest.approx(1.0)

    def test_identity_has_zero_gap(self):
        assert spectral_gap(np.eye(5)) == pytest.approx(0.0)

    def test_unnormalized_gap(self):
        gap = spectral_gap(np.ones((3, 3)), normalized=False)
        assert gap == pytest.approx(3.0)

    def test_zero_matrix_rejected(self):
        with pytest.raises(ValidationError):
            spectral_gap(np.zeros((3, 3)))

    def test_mixed_radix_layer_has_positive_gap(self):
        w = mixed_radix_submatrix((4, 4), 0)
        assert spectral_gap(w) > 0.0

    def test_expansion_summary(self, small_radixnet):
        summary = expansion_summary(small_radixnet)
        assert isinstance(summary, ExpansionSummary)
        assert len(summary.per_layer_gap) == len(small_radixnet.submatrices)
        assert 0.0 <= summary.worst_gap <= summary.mean_gap <= 1.0
