"""CLI error-path coverage: exit codes and stderr messages, not tracebacks.

The CLI contract (see :mod:`repro.cli`): argument errors exit 2 (the
argparse convention), library errors exit 1 with a single ``error: ...``
line on stderr -- never a traceback.  These tests pin that contract for
the failure modes an operator actually hits with ``repro challenge
run`` / ``serve`` / ``bench-serve``: missing directories, wrong
``--neurons``, corrupt checkpoints, unreachable servers.
"""

import numpy as np
import pytest

from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
)
from repro.challenge.io import save_challenge_network
from repro.challenge.pipeline import checkpoint_path, run_challenge_pipeline
from repro.cli import main

NEURONS = 32
LAYERS = 4


@pytest.fixture(scope="module")
def net_dir(tmp_path_factory):
    network = generate_challenge_network(NEURONS, LAYERS, connections=8, seed=5)
    directory = tmp_path_factory.mktemp("cli-errors") / "net"
    save_challenge_network(network, directory)
    return directory


def _run(argv, capsys):
    """Invoke the CLI; return (exit_code, stdout, stderr)."""
    code = main(argv)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def _assert_clean_error(err: str, *needles: str) -> None:
    """One `error:` line, the expected message, and no traceback."""
    assert "error:" in err
    assert "Traceback" not in err
    for needle in needles:
        assert needle in err, f"{needle!r} not in stderr: {err!r}"


# --------------------------------------------------------------------------- #
# repro challenge run
# --------------------------------------------------------------------------- #
class TestChallengeRunErrors:
    def test_missing_network_directory(self, tmp_path, capsys):
        code, _, err = _run(
            ["challenge", "run", "--dir", str(tmp_path / "nope"),
             "--neurons", str(NEURONS)],
            capsys,
        )
        assert code == 1
        _assert_clean_error(err, "metadata file not found")

    def test_wrong_neurons_for_saved_network(self, net_dir, capsys):
        code, _, err = _run(
            ["challenge", "run", "--dir", str(net_dir), "--neurons", "999"],
            capsys,
        )
        assert code == 1
        _assert_clean_error(err, "neuron999")

    def test_non_integer_neurons_is_an_argparse_error(self, net_dir, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["challenge", "run", "--dir", str(net_dir), "--neurons", "many"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "invalid int value" in err
        assert "Traceback" not in err

    def test_resume_missing_checkpoint(self, tmp_path, capsys):
        code, _, err = _run(
            ["challenge", "run", "--resume", str(tmp_path / "no-ckpt")], capsys
        )
        assert code == 1
        _assert_clean_error(err, "no pipeline checkpoint")

    def test_resume_corrupt_checkpoint(self, tmp_path, net_dir, capsys):
        batch = challenge_input_batch(NEURONS, 4, seed=1)
        run_challenge_pipeline(
            net_dir, NEURONS, batch,
            checkpoint_dir=tmp_path / "ck", checkpoint_every=2, stop_after=2,
        )
        checkpoint_path(tmp_path / "ck").write_bytes(b"scrambled")
        code, _, err = _run(
            ["challenge", "run", "--resume", str(tmp_path / "ck")], capsys
        )
        assert code == 1
        _assert_clean_error(err, "malformed checkpoint")

    def test_resume_checkpoint_with_gutted_context(self, tmp_path, net_dir, capsys):
        """A checkpoint whose recorded network directory vanished."""
        batch = challenge_input_batch(NEURONS, 4, seed=1)
        moved = tmp_path / "moved-net"
        save_challenge_network(
            generate_challenge_network(NEURONS, LAYERS, connections=8, seed=5), moved
        )
        run_challenge_pipeline(
            moved, NEURONS, batch,
            checkpoint_dir=tmp_path / "ck2", checkpoint_every=2, stop_after=2,
        )
        import shutil

        shutil.rmtree(moved)
        code, _, err = _run(
            ["challenge", "run", "--resume", str(tmp_path / "ck2")], capsys
        )
        assert code == 1
        _assert_clean_error(err)

    def test_stop_after_out_of_range(self, net_dir, tmp_path, capsys):
        code, _, err = _run(
            ["challenge", "run", "--dir", str(net_dir), "--neurons", str(NEURONS),
             "--checkpoint", str(tmp_path / "ck"), "--stop-after", "99"],
            capsys,
        )
        assert code == 1
        _assert_clean_error(err, "stop_after")


# --------------------------------------------------------------------------- #
# repro challenge serve
# --------------------------------------------------------------------------- #
class TestChallengeServeErrors:
    def test_serve_needs_dir_or_warm_start(self, capsys):
        code, _, err = _run(["challenge", "serve"], capsys)
        assert code == 1
        _assert_clean_error(err, "needs --dir")

    def test_serve_dir_requires_neurons(self, net_dir, capsys):
        code, _, err = _run(["challenge", "serve", "--dir", str(net_dir)], capsys)
        assert code == 1
        _assert_clean_error(err, "--neurons is required")

    def test_serve_missing_network_directory(self, tmp_path, capsys):
        code, _, err = _run(
            ["challenge", "serve", "--dir", str(tmp_path / "ghost"),
             "--neurons", str(NEURONS)],
            capsys,
        )
        assert code == 1
        _assert_clean_error(err, "metadata file not found")

    def test_serve_warm_start_and_dir_conflict(self, net_dir, tmp_path, capsys):
        code, _, err = _run(
            ["challenge", "serve", "--dir", str(net_dir),
             "--warm-start", str(tmp_path / "ck")],
            capsys,
        )
        assert code == 1
        _assert_clean_error(err, "mutually exclusive")

    def test_serve_warm_start_missing_checkpoint(self, tmp_path, capsys):
        code, _, err = _run(
            ["challenge", "serve", "--warm-start", str(tmp_path / "no-ckpt")],
            capsys,
        )
        assert code == 1
        _assert_clean_error(err, "no pipeline checkpoint")

    def test_serve_corrupt_warm_start_checkpoint(self, tmp_path, capsys):
        directory = tmp_path / "ck"
        directory.mkdir()
        checkpoint_path(directory).write_bytes(b"\x00\x01 definitely not a checkpoint")
        code, _, err = _run(
            ["challenge", "serve", "--warm-start", str(directory)], capsys
        )
        assert code == 1
        _assert_clean_error(err, "malformed checkpoint")

    def test_serve_invalid_batch_limits(self, net_dir, capsys):
        code, _, err = _run(
            ["challenge", "serve", "--dir", str(net_dir),
             "--neurons", str(NEURONS), "--max-batch", "0"],
            capsys,
        )
        assert code == 1
        _assert_clean_error(err, "max_batch")


# --------------------------------------------------------------------------- #
# resilience flags (PR 8): bad values are argument errors -- exit 2
# --------------------------------------------------------------------------- #
class TestResilienceFlagErrors:
    SERVE = ["challenge", "serve", "--dir", "ignored", "--neurons", str(NEURONS)]

    def _assert_argparse_error(self, argv, capsys, *needles):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err
        for needle in needles:
            assert needle in err, f"{needle!r} not in stderr: {err!r}"

    def test_health_interval_must_be_positive(self, capsys):
        self._assert_argparse_error(
            self.SERVE + ["--health-interval-ms", "0"], capsys,
            "--health-interval-ms", "must be > 0",
        )

    def test_health_interval_must_be_a_number(self, capsys):
        self._assert_argparse_error(
            self.SERVE + ["--health-interval-ms", "soon"], capsys,
            "--health-interval-ms", "invalid float value",
        )

    def test_max_restarts_must_be_nonnegative(self, capsys):
        self._assert_argparse_error(
            self.SERVE + ["--max-restarts", "-1"], capsys,
            "--max-restarts", "must be >= 0",
        )

    def test_max_restarts_must_be_an_integer(self, capsys):
        self._assert_argparse_error(
            self.SERVE + ["--max-restarts", "lots"], capsys,
            "--max-restarts", "invalid int value",
        )

    def test_bench_serve_timeout_must_be_positive(self, capsys):
        self._assert_argparse_error(
            ["challenge", "bench-serve", "--port", "1", "--timeout-s", "-3"],
            capsys, "--timeout-s", "must be > 0",
        )

    def test_valid_resilience_flags_reach_the_library_layer(self, tmp_path, capsys):
        """Good flag values parse; the missing directory is the error."""
        code, _, err = _run(
            ["challenge", "serve", "--dir", str(tmp_path / "ghost"),
             "--neurons", str(NEURONS), "--replicas", "2",
             "--health-interval-ms", "250", "--max-restarts", "3"],
            capsys,
        )
        assert code == 1
        _assert_clean_error(err)


# --------------------------------------------------------------------------- #
# shard flags (PR 9): bad values are argument errors -- exit 2
# --------------------------------------------------------------------------- #
class TestShardFlagErrors:
    """``--shards`` validation: exit 2 with one ``error:`` line.

    Non-positive values die in argparse; a count above the network's
    neuron count (where some shard would own zero columns *and* the
    layout constructor rejects it) dies in the command handler with the
    same exit code, for both ``run`` and ``serve``.
    """

    def _assert_argparse_error(self, argv, capsys, *needles):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err
        for needle in needles:
            assert needle in err, f"{needle!r} not in stderr: {err!r}"

    def test_run_shards_zero_is_an_argparse_error(self, net_dir, capsys):
        self._assert_argparse_error(
            ["challenge", "run", "--dir", str(net_dir),
             "--neurons", str(NEURONS), "--shards", "0"],
            capsys, "--shards", "must be >= 1",
        )

    def test_run_shards_negative_is_an_argparse_error(self, net_dir, capsys):
        self._assert_argparse_error(
            ["challenge", "run", "--dir", str(net_dir),
             "--neurons", str(NEURONS), "--shards", "-2"],
            capsys, "--shards", "must be >= 1",
        )

    def test_run_shards_must_be_an_integer(self, net_dir, capsys):
        self._assert_argparse_error(
            ["challenge", "run", "--dir", str(net_dir),
             "--neurons", str(NEURONS), "--shards", "half"],
            capsys, "--shards", "invalid",
        )

    def test_run_shards_above_neuron_count_exits_2(self, net_dir, capsys):
        code, _, err = _run(
            ["challenge", "run", "--dir", str(net_dir),
             "--neurons", str(NEURONS), "--shards", str(NEURONS + 1)],
            capsys,
        )
        assert code == 2
        _assert_clean_error(err, f"--shards must be in 1..{NEURONS}")

    def test_serve_shards_above_neuron_count_exits_2(self, net_dir, capsys):
        code, _, err = _run(
            ["challenge", "serve", "--dir", str(net_dir),
             "--neurons", str(NEURONS), "--shards", str(NEURONS * 2)],
            capsys,
        )
        assert code == 2
        _assert_clean_error(err, f"--shards must be in 1..{NEURONS}")

    def test_serve_shards_zero_is_an_argparse_error(self, net_dir, capsys):
        self._assert_argparse_error(
            ["challenge", "serve", "--dir", str(net_dir),
             "--neurons", str(NEURONS), "--shards", "0"],
            capsys, "--shards", "must be >= 1",
        )

    def test_resume_with_mismatched_shards_exits_1(self, net_dir, tmp_path, capsys):
        """A recorded shard layout refuses a *different* explicit --shards."""
        run_challenge_pipeline(
            net_dir, NEURONS, challenge_input_batch(NEURONS, 4, seed=3),
            checkpoint_dir=tmp_path / "ck", checkpoint_every=2, stop_after=2,
            shards=2, shard_transport="serial",
        )
        code, _, err = _run(
            ["challenge", "run", "--resume", str(tmp_path / "ck"),
             "--shards", "3"],
            capsys,
        )
        assert code == 1
        _assert_clean_error(err, "--shards 2", "--shards 1")


# --------------------------------------------------------------------------- #
# backend selection errors (exit 2: argument-error convention)
# --------------------------------------------------------------------------- #
class TestBackendSelectionErrors:
    """A mistyped or not-installed backend name is an *argument* error.

    Both spellings -- ``--backend bogus`` and ``REPRO_BACKEND=bogus`` --
    must exit 2 with one clean ``error:`` line listing
    ``available_backends()``, never a raw ``KeyError`` traceback.
    """

    CHALLENGE = ["challenge", "--neurons", str(NEURONS), "--layers", "2",
                 "--connections", "4", "--batch", "4"]

    def test_unknown_backend_flag_exits_2(self, capsys):
        code, _, err = _run(self.CHALLENGE + ["--backend", "bogus"], capsys)
        assert code == 2
        _assert_clean_error(err, "unknown sparse backend 'bogus'",
                            "available backends:")

    def test_unknown_backend_env_var_exits_2(self, capsys, monkeypatch):
        import repro.backends as backends

        monkeypatch.setenv(backends.DEFAULT_BACKEND_ENV, "bogus")
        # the env default is resolved lazily; clear any already-resolved
        # active backend so this invocation hits the lookup
        monkeypatch.setattr(backends, "_active", None)
        code, _, err = _run(self.CHALLENGE, capsys)
        assert code == 2
        _assert_clean_error(err, "unknown sparse backend 'bogus'",
                            "available backends:")

    def test_known_but_unavailable_backend_names_install_hint(self, capsys):
        import repro.backends as backends

        unavailable = backends.unavailable_backends()
        if not unavailable:
            pytest.skip("every known backend tier is installed here")
        name, reason = next(iter(unavailable.items()))
        code, _, err = _run(self.CHALLENGE + ["--backend", name], capsys)
        assert code == 2
        _assert_clean_error(err, f"sparse backend '{name}' is not available",
                            reason.split(" (")[0], "available backends:")

    def test_verify_subcommand_shares_the_contract(self, capsys):
        code, _, err = _run(
            ["verify", "--systems", "2,2;2,2", "--widths", "1,2,2,2,1",
             "--backend", "bogus"],
            capsys,
        )
        assert code == 2
        _assert_clean_error(err, "unknown sparse backend 'bogus'")

    def test_auto_is_not_an_error(self, capsys):
        code, out, _ = _run(self.CHALLENGE + ["--backend", "auto"], capsys)
        assert code == 0
        assert "backend:" in out


# --------------------------------------------------------------------------- #
# repro challenge bench-serve
# --------------------------------------------------------------------------- #
class TestBenchServeErrors:
    def test_unreachable_server(self, capsys):
        # port 1 is privileged and unbound in every test environment
        code, _, err = _run(
            ["challenge", "bench-serve", "--port", "1", "--requests", "1"], capsys
        )
        assert code == 1
        _assert_clean_error(err, "cannot connect")

    def test_port_is_required(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["challenge", "bench-serve"])
        assert excinfo.value.code == 2
        assert "--port" in capsys.readouterr().err

    def test_invalid_request_count(self, capsys):
        code, _, err = _run(
            ["challenge", "bench-serve", "--port", "1", "--requests", "0"], capsys
        )
        assert code == 1
        _assert_clean_error(err, "requests must be >= 1")
