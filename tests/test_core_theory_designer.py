"""Tests for repro.core.theory (Lemma 1/2, Theorem 1) and repro.core.designer."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing import ADMISSIBLE_SPECS
from repro.errors import ValidationError
from repro.core.density import exact_density
from repro.core.designer import DesignResult, design_for_density, design_for_widths
from repro.core.radixnet import RadixNetSpec, generate_from_spec
from repro.core.theory import (
    path_count_spectrum,
    predicted_emr_path_count,
    predicted_mixed_radix_path_count,
    predicted_radixnet_path_count,
    verify_lemma_1,
    verify_lemma_2,
    verify_theorem_1,
)
from repro.topology.random_graphs import erdos_renyi_fnnt


class TestLemma1:
    @pytest.mark.parametrize("radices", [(2, 2), (3, 4), (2, 3, 2), (6,), (5, 5)])
    def test_exactly_one_path(self, radices):
        check = verify_lemma_1(radices)
        assert check.symmetric
        assert check.measured_paths == 1
        assert check.matches_prediction

    def test_prediction_constant(self):
        assert predicted_mixed_radix_path_count() == 1


class TestLemma2:
    def test_two_full_systems(self):
        check = verify_lemma_2([(2, 2), (2, 2)])
        assert check.predicted_paths == 4
        assert check.matches_prediction

    def test_three_full_systems(self):
        check = verify_lemma_2([(2, 3), (6,), (3, 2)])
        assert check.predicted_paths == 36
        assert check.matches_prediction

    def test_divisor_last_system_generalization(self):
        # N' = 6, last product 3: prediction 6^(2-2) * 3 = 3
        check = verify_lemma_2([(2, 3), (3,)])
        assert check.predicted_paths == 3
        assert check.matches_prediction

    def test_paper_constant_recovered_when_products_equal(self):
        # paper formula (N')^(M-1) for M systems with equal products
        systems = [(2, 2), (4,), (2, 2)]
        assert predicted_emr_path_count(systems) == 4 ** (len(systems) - 1)

    def test_single_system_prediction_is_one(self):
        assert predicted_emr_path_count([(3, 4)]) == 1


class TestTheorem1:
    @pytest.mark.parametrize("systems,widths", ADMISSIBLE_SPECS)
    def test_panel(self, systems, widths):
        check = verify_theorem_1(RadixNetSpec(systems, widths))
        assert check.symmetric
        assert check.matches_prediction

    def test_prediction_formula_interior_widths_only(self):
        # (N')^(M-1) * prod interior D
        spec = RadixNetSpec([(2, 2), (2, 2)], [3, 2, 5, 2, 7])
        # N' = 4, M = 2, interior widths (2, 5, 2)
        assert predicted_radixnet_path_count(spec) == 4 * 2 * 5 * 2

    def test_prediction_reduces_to_lemma2_for_unit_widths(self):
        spec = RadixNetSpec([(2, 3), (6,)], [1, 1, 1, 1])
        assert predicted_radixnet_path_count(spec) == predicted_emr_path_count(spec.systems)

    def test_check_uses_supplied_topology(self, small_spec, small_radixnet):
        check = verify_theorem_1(small_spec, topology=small_radixnet)
        assert check.matches_prediction

    def test_path_count_spectrum_of_symmetric_net(self, small_radixnet):
        spectrum = path_count_spectrum(small_radixnet)
        assert len(spectrum) == 1
        (count,) = spectrum.keys()
        assert count == 32

    def test_path_count_spectrum_of_random_net_is_spread(self):
        net = erdos_renyi_fnnt([12, 12, 12, 12], 0.2, seed=0)
        spectrum = path_count_spectrum(net)
        assert len(spectrum) > 1


class TestDesignForWidths:
    def test_exact_match(self):
        result = design_for_widths([32, 64, 64, 16])
        assert result.error == 0.0
        assert result.achieved == (32, 64, 64, 16)
        net = generate_from_spec(result.spec)
        assert net.layer_sizes == (32, 64, 64, 16)

    def test_result_is_sparse(self):
        result = design_for_widths([32, 64, 64, 16])
        assert exact_density(result.spec) < 1.0

    def test_max_n_prime_respected(self):
        result = design_for_widths([32, 64, 32], max_n_prime=8)
        assert result.spec.n_prime <= 8

    def test_coprime_widths_rejected(self):
        with pytest.raises(ValidationError):
            design_for_widths([7, 9, 16])

    def test_too_few_widths_rejected(self):
        with pytest.raises(ValidationError):
            design_for_widths([8])

    def test_radices_per_system_controls_depth(self):
        result = design_for_widths([16, 16, 16, 16, 16], radices_per_system=2)
        assert all(len(s.radices) <= 2 for s in result.spec.systems)

    def test_repr(self):
        result = design_for_widths([8, 8])
        assert "DesignResult" in repr(result)
        assert isinstance(result, DesignResult)


class TestDesignForDensity:
    def test_hits_reachable_density(self):
        result = design_for_density(0.25, 2, max_n_prime=32)
        assert result.error <= 0.05

    def test_achieved_matches_spec(self):
        result = design_for_density(0.1, 3, max_n_prime=48)
        assert result.achieved == pytest.approx(exact_density(result.spec))

    def test_invalid_target_rejected(self):
        with pytest.raises(ValidationError):
            design_for_density(0.0, 2)
        with pytest.raises(ValidationError):
            design_for_density(1.5, 2)

    def test_spec_has_requested_depth(self):
        result = design_for_density(0.3, 2, max_n_prime=24)
        assert result.spec.total_radices == 2

    @given(st.floats(0.05, 0.9), st.integers(1, 3))
    @settings(max_examples=15, deadline=None)
    def test_always_returns_admissible_spec(self, target, depth):
        result = design_for_density(target, depth, max_n_prime=36)
        # constructing the topology must not raise and density must match
        net = generate_from_spec(result.spec)
        assert net.density() == pytest.approx(result.achieved)
