"""Fault-injection helpers for the serve resilience suite.

:class:`FaultProxy` is a line-oriented TCP shim that sits between the
load balancer and one backend server, pretending to *be* that backend
(the balancer is pointed at the proxy's address).  Tests script faults
against it mid-run:

* ``set_refusing`` -- new connections are accepted and immediately
  closed (the backend looks dead to dial attempts and health pings);
* ``sever_now`` / ``sever_after_responses`` -- cut live connections,
  either immediately or right before the Nth-next response line would
  be forwarded (the nastiest loss: the backend already did the work,
  the caller never hears back);
* ``set_blackhole`` -- swallow request lines (the request vanishes and
  the caller is left waiting: the timeout fault);
* ``set_delay`` -- per-response latency injection;
* ``fail`` / ``heal`` -- full outage on, everything back to clean
  pass-through.

Because the serve protocol is newline-delimited JSON, the proxy pumps
whole lines, so every fault lands on a request/response *boundary* --
the schedule is deterministic with respect to protocol traffic, not a
byte-level race.

:func:`kill_replica` is the process-level fault: SIGKILL, no warning,
no cleanup -- exactly what the fleet supervisor must recover from.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time


def kill_replica(pid: int) -> None:
    """SIGKILL a replica subprocess (the supervisor reaps and restarts it)."""
    os.kill(pid, signal.SIGKILL)


def wait_until(predicate, timeout_s: float = 30.0, interval_s: float = 0.02) -> None:
    """Poll ``predicate`` until truthy; AssertionError on timeout."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError(f"condition not reached within {timeout_s}s: {predicate}")


class FaultProxy:
    """A fault-injecting TCP relay in front of one newline-JSON backend."""

    def __init__(self, backend_host: str, backend_port: int, *, host: str = "127.0.0.1") -> None:
        self.backend = (backend_host, int(backend_port))
        self._listener = socket.create_server((host, 0))
        self._listener.settimeout(0.2)  # the accept loop polls the closed flag
        name = self._listener.getsockname()
        self.address: tuple[str, int] = (str(name[0]), int(name[1]))
        self._lock = threading.Lock()
        self._pairs: set[tuple[socket.socket, socket.socket]] = set()
        self._closed = False
        self._refusing = False
        self._blackhole = False
        self._delay_s = 0.0
        self._sever_at: int | None = None  # responses_forwarded watermark
        self.connections = 0
        self.requests_forwarded = 0
        self.responses_forwarded = 0
        self.severed = 0
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name=f"fault-proxy-{self.address[1]}"
        )
        self._accept_thread.start()

    # ------------------------------------------------------------------ #
    # the fault schedule (all callable mid-run, thread-safe)
    # ------------------------------------------------------------------ #
    def set_refusing(self, refusing: bool = True) -> None:
        with self._lock:
            self._refusing = refusing

    def set_blackhole(self, blackhole: bool = True) -> None:
        with self._lock:
            self._blackhole = blackhole

    def set_delay(self, delay_s: float) -> None:
        with self._lock:
            self._delay_s = float(delay_s)

    def sever_after_responses(self, n: int) -> None:
        """Cut the connection instead of forwarding the (n+1)th-next response.

        ``n=0`` severs right before the very next response line -- the
        backend has processed the request, the caller sees a dead socket.
        One-shot: the schedule disarms after firing.
        """
        with self._lock:
            self._sever_at = self.responses_forwarded + max(0, int(n))

    def sever_now(self) -> None:
        """Cut every live connection immediately."""
        with self._lock:
            pairs = list(self._pairs)
            self.severed += len(pairs)
        for pair in pairs:
            self._close_pair(pair)

    def fail(self) -> None:
        """Full outage: refuse new connections and cut the live ones."""
        self.set_refusing(True)
        self.sever_now()

    def heal(self) -> None:
        """Back to clean pass-through (existing severed connections stay dead)."""
        with self._lock:
            self._refusing = False
            self._blackhole = False
            self._delay_s = 0.0
            self._sever_at = None

    # ------------------------------------------------------------------ #
    def _accept_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    return
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                refusing = self._refusing or self._closed
            if refusing:
                conn.close()
                continue
            try:
                upstream = socket.create_connection(self.backend, timeout=10.0)
            except OSError:
                conn.close()
                continue
            pair = (conn, upstream)
            with self._lock:
                self.connections += 1
                self._pairs.add(pair)
            for src, dst, direction in (
                (conn, upstream, "request"),
                (upstream, conn, "response"),
            ):
                threading.Thread(
                    target=self._pump,
                    args=(pair, src, dst, direction),
                    daemon=True,
                ).start()

    def _pump(self, pair, src: socket.socket, dst: socket.socket, direction: str) -> None:
        try:
            src_file = src.makefile("rb")
            for line in src_file:
                with self._lock:
                    blackhole = self._blackhole and direction == "request"
                    delay = self._delay_s if direction == "response" else 0.0
                    sever = (
                        direction == "response"
                        and self._sever_at is not None
                        and self.responses_forwarded >= self._sever_at
                    )
                    if sever:
                        self._sever_at = None
                        self.severed += 1
                if sever:
                    self._close_pair(pair)
                    return
                if blackhole:
                    continue  # the request vanishes in flight
                if delay:
                    time.sleep(delay)
                try:
                    dst.sendall(line)
                except OSError:
                    break
                with self._lock:
                    if direction == "request":
                        self.requests_forwarded += 1
                    else:
                        self.responses_forwarded += 1
        except (OSError, ValueError):  # pragma: no cover - racing teardown
            pass
        finally:
            self._close_pair(pair)

    def _close_pair(self, pair) -> None:
        with self._lock:
            if pair not in self._pairs:
                return
            self._pairs.discard(pair)
        for sock in pair:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        with self._lock:
            self._closed = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
        self.sever_now()
        self._accept_thread.join(timeout=5.0)

    def __enter__(self) -> "FaultProxy":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
