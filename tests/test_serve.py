"""Unit tests for the serving subsystem (:mod:`repro.serve`).

The batching logic is tested deterministically: a
:class:`repro.utils.clock.FakeClock` replaces every timed wait, and the
tests drive :meth:`MicroBatcher.run_once` directly (no worker thread, no
sleeps), asserting on exact batch compositions.  The TCP layer is tested
against a real in-process server via :func:`serve_in_background`.
"""

import json
import threading

import numpy as np
import pytest

from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
)
from repro.challenge.inference import InferenceEngine
from repro.challenge.pipeline import run_challenge_pipeline
from repro.challenge.io import save_challenge_network
from repro.errors import SerializationError, ServeError, ShapeError, ValidationError
from repro.serve import (
    EngineStep,
    MicroBatcher,
    RequestQueue,
    ServeClient,
    ServingEngine,
    bench_serve,
    serve_in_background,
)
from repro.serve import protocol
from repro.serve.batcher import PendingRequest
from repro.utils.clock import FakeClock, SystemClock

NEURONS = 64
LAYERS = 6
BATCH = 8


@pytest.fixture(scope="module")
def network():
    return generate_challenge_network(NEURONS, LAYERS, connections=8, seed=3)


@pytest.fixture(scope="module")
def batch():
    return challenge_input_batch(NEURONS, BATCH, seed=4)


@pytest.fixture(scope="module")
def net_dir(tmp_path_factory, network):
    directory = tmp_path_factory.mktemp("serve") / "net"
    save_challenge_network(network, directory)
    return directory


def _echo_step(rows: np.ndarray) -> EngineStep:
    """A trivial engine: identity activations (row identity is visible)."""
    return EngineStep(activations=np.asarray(rows, dtype=np.float64), layer_modes=["dense"])


def _rows(*values: float) -> np.ndarray:
    """One-row-per-value matrices with recognizable content."""
    return np.asarray([[v, v + 0.5] for v in values], dtype=np.float64)


# --------------------------------------------------------------------------- #
# clock
# --------------------------------------------------------------------------- #
class TestFakeClock:
    def test_wait_observes_set_event_without_advancing(self):
        clock = FakeClock()
        event = threading.Event()
        event.set()
        assert clock.wait(event, 5.0)
        assert clock.monotonic() == 0.0

    def test_wait_timeout_advances_virtual_time(self):
        clock = FakeClock(start=10.0)
        assert not clock.wait(threading.Event(), 2.5)
        assert clock.monotonic() == 12.5
        assert clock.waits == [2.5]

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            FakeClock().advance(-1.0)

    def test_system_clock_wait_is_event_wait(self):
        event = threading.Event()
        event.set()
        assert SystemClock().wait(event, 0.0)
        assert SystemClock().monotonic() > 0


# --------------------------------------------------------------------------- #
# request queue
# --------------------------------------------------------------------------- #
class TestRequestQueue:
    def _pending(self, rows=1):
        return PendingRequest(np.zeros((rows, 2)), None, 0.0)

    def test_fifo_order_and_available_event(self):
        queue = RequestQueue()
        assert queue.pop() is None
        assert not queue.available.is_set()
        a, b = self._pending(), self._pending()
        queue.put(a)
        queue.put(b)
        assert queue.available.is_set()
        assert queue.pop() is a
        assert queue.available.is_set()  # b still waiting
        assert queue.pop() is b
        assert not queue.available.is_set()

    def test_push_back_goes_to_front(self):
        queue = RequestQueue()
        a, b, c = self._pending(), self._pending(), self._pending()
        queue.put(a)
        queue.put(b)
        popped = queue.pop()
        assert popped is a
        queue.push_back(popped)
        queue.put(c)
        assert [queue.pop(), queue.pop(), queue.pop()] == [a, b, c]

    def test_close_refuses_new_work_but_keeps_queued(self):
        queue = RequestQueue()
        a = self._pending()
        queue.put(a)
        queue.close()
        assert queue.closed
        assert queue.available.is_set()  # parked workers must wake
        with pytest.raises(ServeError, match="closed"):
            queue.put(self._pending())
        assert queue.pop() is a


# --------------------------------------------------------------------------- #
# micro-batcher (deterministic: FakeClock + run_once, no threads)
# --------------------------------------------------------------------------- #
class TestMicroBatcher:
    def test_validation(self):
        with pytest.raises(ValidationError):
            MicroBatcher(_echo_step, max_batch=0)
        with pytest.raises(ValidationError):
            MicroBatcher(_echo_step, max_wait_ms=-1)
        with pytest.raises(ValidationError):
            MicroBatcher(_echo_step, idle_wait_s=0)
        batcher = MicroBatcher(_echo_step)
        with pytest.raises(ValidationError):
            batcher.submit(np.zeros(3))  # 1-D
        with pytest.raises(ValidationError):
            batcher.submit(np.zeros((0, 3)))  # empty

    def test_run_once_without_requests_returns_false(self):
        batcher = MicroBatcher(_echo_step, clock=FakeClock())
        assert not batcher.run_once(wait=False)

    def test_coalesces_waiting_requests_into_one_batch(self):
        calls = []

        def step(rows):
            calls.append(rows.copy())
            return _echo_step(rows)

        batcher = MicroBatcher(step, max_batch=8, max_wait_ms=5.0, clock=FakeClock())
        pendings = [batcher.submit(_rows(float(i))) for i in range(3)]
        assert batcher.run_once(wait=False)
        assert len(calls) == 1 and calls[0].shape == (3, 2)
        for i, pending in enumerate(pendings):
            result = pending.result(timeout=0)
            assert (result.activations == _rows(float(i))).all()
            assert result.stats.batch_rows == 3
            assert result.stats.batch_requests == 3
            assert result.stats.layer_modes == ["dense"]

    def test_row_budget_closes_batch_and_preserves_order(self):
        sizes = []
        batcher = MicroBatcher(
            lambda rows: (sizes.append(rows.shape[0]), _echo_step(rows))[1],
            max_batch=4,
            max_wait_ms=0.0,
            clock=FakeClock(),
        )
        submitted = [batcher.submit(_rows(*[float(10 * i + j) for j in range(3)]))
                     for i in range(3)]  # 3 requests x 3 rows, budget 4
        while batcher.run_once(wait=False):
            pass
        # 3 batches of one request each: 3 rows + the next 3 would overflow 4
        assert sizes == [3, 3, 3]
        for i, pending in enumerate(submitted):
            expected = _rows(*[float(10 * i + j) for j in range(3)])
            assert (pending.result(timeout=0).activations == expected).all()

    def test_oversized_request_runs_alone(self):
        sizes = []
        batcher = MicroBatcher(
            lambda rows: (sizes.append(rows.shape[0]), _echo_step(rows))[1],
            max_batch=2,
            clock=FakeClock(),
        )
        big = batcher.submit(np.ones((5, 2)))
        small = batcher.submit(np.zeros((1, 2)))
        while batcher.run_once(wait=False):
            pass
        assert sizes == [5, 1]  # never split, never merged past the budget
        assert big.result(timeout=0).stats.batch_rows == 5
        assert small.result(timeout=0).stats.batch_rows == 1

    def test_open_batch_waits_out_the_window_not_longer(self):
        clock = FakeClock()
        batcher = MicroBatcher(_echo_step, max_batch=100, max_wait_ms=4.0, clock=clock)
        batcher.submit(_rows(1.0))
        assert batcher.run_once(wait=False)
        # one request, room in the budget: the batcher waited for more
        # work, but only until the batch window closed (virtual time
        # advanced by exactly the window)
        assert clock.monotonic() == pytest.approx(0.004)
        assert clock.waits == [0.004]

    def test_zero_wait_takes_whatever_is_queued(self):
        clock = FakeClock()
        batcher = MicroBatcher(_echo_step, max_batch=100, max_wait_ms=0.0, clock=clock)
        batcher.submit(_rows(1.0))
        assert batcher.run_once(wait=False)
        assert clock.waits == []  # no coalescing wait at all

    def test_queue_wait_and_service_seconds_use_the_clock(self):
        clock = FakeClock()
        def slow_step(rows):
            clock.advance(0.25)
            return _echo_step(rows)

        batcher = MicroBatcher(slow_step, max_batch=8, max_wait_ms=0.0, clock=clock)
        pending = batcher.submit(_rows(1.0))
        clock.advance(1.5)  # request sat queued for 1.5 virtual seconds
        assert batcher.run_once(wait=False)
        stats = pending.result(timeout=0).stats
        assert stats.queue_wait_s == pytest.approx(1.5)
        assert stats.service_s == pytest.approx(0.25)

    def test_mismatched_row_widths_fail_the_batch_not_the_worker(self):
        # stacking happens under the failure guard: a width mismatch
        # inside one coalesced batch fails those requests but the batcher
        # keeps serving (regression: np.concatenate outside the guard
        # killed the worker thread)
        batcher = MicroBatcher(_echo_step, max_batch=8, max_wait_ms=0.0, clock=FakeClock())
        narrow = batcher.submit(np.ones((1, 2)))
        wide = batcher.submit(np.ones((1, 5)))
        assert batcher.run_once(wait=False)
        for pending in (narrow, wide):
            with pytest.raises(ValueError):
                pending.result(timeout=0)
        assert batcher.stats.failures == 2
        survivor = batcher.submit(_rows(3.0))
        assert batcher.run_once(wait=False)
        assert (survivor.result(timeout=0).activations == _rows(3.0)).all()

    def test_done_callback_fires_on_completion_or_immediately(self):
        batcher = MicroBatcher(_echo_step, max_batch=4, max_wait_ms=0.0, clock=FakeClock())
        observed = []
        early = batcher.submit(_rows(1.0))
        early.add_done_callback(lambda p: observed.append(("early", p.request_id)))
        assert observed == []  # not completed yet
        assert batcher.run_once(wait=False)
        assert observed == [("early", early.request_id)]
        # already-done: the callback runs immediately on the caller
        early.add_done_callback(lambda p: observed.append(("late", p.request_id)))
        assert observed[-1] == ("late", early.request_id)

    def test_stats_dict_snapshot_matches_counters(self):
        batcher = MicroBatcher(_echo_step, max_batch=4, max_wait_ms=0.0, clock=FakeClock())
        batcher.submit(_rows(1.0))
        batcher.run_once(wait=False)
        snapshot = batcher.stats_dict()
        # counter snapshot matches, plus the configuration/telemetry keys
        for key, value in batcher.stats.as_dict().items():
            assert snapshot[key] == value
        assert snapshot["workers"] == 1
        assert snapshot["max_batch"] == 4
        assert snapshot["max_wait_ms"] == 0.0
        assert snapshot["recent"]["batches"] == 1
        assert snapshot["recent"]["mean_batch_rows"] == 1.0

    def test_step_error_fails_every_request_in_the_batch(self):
        def exploding(rows):
            raise RuntimeError("kernel exploded")

        batcher = MicroBatcher(exploding, max_batch=8, clock=FakeClock())
        pendings = [batcher.submit(_rows(float(i))) for i in range(2)]
        assert batcher.run_once(wait=False)
        for pending in pendings:
            with pytest.raises(RuntimeError, match="kernel exploded"):
                pending.result(timeout=0)
        assert batcher.stats.failures == 2
        assert batcher.stats.requests == 0

    def test_result_timeout(self):
        batcher = MicroBatcher(_echo_step, clock=FakeClock())
        pending = batcher.submit(_rows(1.0))
        with pytest.raises(ServeError, match="not completed"):
            pending.result(timeout=0.0)

    def test_close_without_worker_drains_inline(self):
        batcher = MicroBatcher(_echo_step, max_batch=4, clock=FakeClock())
        pendings = [batcher.submit(_rows(float(i))) for i in range(6)]
        batcher.close()
        assert all(p.done() for p in pendings)
        assert batcher.stats.requests == 6
        with pytest.raises(ServeError, match="closed"):
            batcher.submit(_rows(9.0))

    def test_close_no_drain_fails_queued_requests(self):
        batcher = MicroBatcher(_echo_step, clock=FakeClock())
        pending = batcher.submit(_rows(1.0))
        batcher.close(drain=False)
        with pytest.raises(ServeError, match="shut down"):
            pending.result(timeout=0)

    def test_worker_thread_serves_and_close_drains(self):
        # the one threaded batcher test: real clock, but entirely
        # event-driven -- close() is the synchronization point
        batcher = MicroBatcher(_echo_step, max_batch=4, max_wait_ms=1.0).start()
        with pytest.raises(ServeError, match="already started"):
            batcher.start()
        pendings = [batcher.submit(_rows(float(i))) for i in range(10)]
        batcher.close()  # drains: every accepted request completes
        for i, pending in enumerate(pendings):
            assert (pending.result(timeout=0).activations == _rows(float(i))).all()
        assert batcher.stats.requests == 10
        assert batcher.stats.rows == 10

    def test_stats_aggregate(self):
        batcher = MicroBatcher(_echo_step, max_batch=3, max_wait_ms=0.0, clock=FakeClock())
        for i in range(5):
            batcher.submit(_rows(float(i)))
        while batcher.run_once(wait=False):
            pass
        stats = batcher.stats.as_dict()
        assert stats["requests"] == 5
        assert stats["rows"] == 5
        assert stats["batches"] == 2  # 3 + 2
        assert stats["max_batch_rows"] == 3
        assert stats["mean_batch_rows"] == pytest.approx(2.5)


# --------------------------------------------------------------------------- #
# serving engine
# --------------------------------------------------------------------------- #
class TestServingEngine:
    @pytest.mark.parametrize("policy", ["dense", "sparse"])
    def test_from_network_step_matches_inference_engine(self, network, batch, policy):
        serving = ServingEngine.from_network(network, activations=policy)
        expected = InferenceEngine(network, activations=policy).run(
            batch, record_timing=False
        )
        outcome = serving.step(batch)
        assert (outcome.activations == expected.activations).all()
        assert outcome.layer_modes == [policy] * LAYERS

    def test_from_directory_matches_in_memory(self, net_dir, network, batch):
        serving = ServingEngine.from_directory(net_dir, NEURONS)
        expected = ServingEngine.from_network(network).step(batch)
        outcome = serving.step(batch)
        assert (outcome.activations == expected.activations).all()
        assert serving.num_layers == LAYERS
        assert serving.edges_per_sample == sum(w.nnz for w in network.weights)

    def test_from_checkpoint_warm_restart(self, tmp_path, net_dir, network, batch):
        run_challenge_pipeline(
            net_dir, NEURONS, batch, activations="dense",
            checkpoint_dir=tmp_path / "ck", checkpoint_every=2,
        )
        serving = ServingEngine.from_checkpoint(tmp_path / "ck")
        assert serving.neurons == NEURONS
        assert serving.num_layers == LAYERS
        assert serving.policy.mode == "dense"  # recovered from the checkpoint
        expected = InferenceEngine(network, activations="dense").run(
            batch, record_timing=False
        )
        assert (serving.step(batch).activations == expected.activations).all()

    def test_from_checkpoint_missing(self, tmp_path):
        with pytest.raises(SerializationError):
            ServingEngine.from_checkpoint(tmp_path)

    def test_step_shape_validation(self, network):
        serving = ServingEngine.from_network(network)
        with pytest.raises(ShapeError):
            serving.step(np.ones((2, NEURONS + 1)))
        with pytest.raises(ShapeError):
            serving.step(np.ones(NEURONS))

    def test_describe(self, network):
        serving = ServingEngine.from_network(network, activations="dense")
        meta = serving.describe()
        assert meta["neurons"] == NEURONS
        assert meta["layers"] == LAYERS
        assert meta["activations"] == "dense"
        assert meta["threshold"] == network.threshold


# --------------------------------------------------------------------------- #
# wire protocol
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "infer", "id": "x", "rows": [[0.0, 1.5]]}
        assert protocol.decode(protocol.encode(message).rstrip(b"\n")) == message

    def test_decode_rejects_garbage(self):
        with pytest.raises(ServeError, match="malformed"):
            protocol.decode(b"not json")
        with pytest.raises(ServeError, match="objects"):
            protocol.decode(b"[1,2]")

    @pytest.mark.parametrize("encoding", ["dense", "sparse"])
    def test_rows_wire_round_trip_is_bit_exact(self, encoding, batch):
        wire = protocol.rows_to_wire(batch, encoding=encoding)
        # through actual JSON text, as the socket would carry it
        payload = json.loads(json.dumps(wire))
        decoded = protocol.rows_from_wire(payload, neurons=NEURONS)
        assert decoded.dtype == np.float64
        assert (decoded == batch).all()

    def test_unknown_encoding(self, batch):
        with pytest.raises(ServeError, match="encoding"):
            protocol.rows_to_wire(batch, encoding="morse")

    def test_rows_from_wire_validation(self):
        with pytest.raises(ServeError, match="non-empty"):
            protocol.rows_from_wire([], neurons=4)
        with pytest.raises(ServeError, match=r"shape \(k, 4\)"):
            protocol.rows_from_wire([[1.0, 2.0]], neurons=4)
        with pytest.raises(ServeError, match="malformed dense"):
            protocol.rows_from_wire([["a", "b", "c", "d"]], neurons=4)
        with pytest.raises(ServeError, match="equal length"):
            protocol.rows_from_wire({"cols": [[0]], "vals": []}, neurons=4)
        with pytest.raises(ServeError, match="server expects 4"):
            protocol.rows_from_wire(
                {"neurons": 8, "cols": [[0]], "vals": [[1.0]]}, neurons=4
            )
        with pytest.raises(ServeError, match="must be an integer"):
            protocol.rows_from_wire(
                {"neurons": "abc", "cols": [[0]], "vals": [[1.0]]}, neurons=4
            )
        with pytest.raises(ServeError, match="must be an integer"):
            protocol.rows_from_wire(
                {"neurons": None, "cols": [[0]], "vals": [[1.0]]}, neurons=4
            )
        with pytest.raises(ServeError, match="out of range"):
            protocol.rows_from_wire({"cols": [[4]], "vals": [[1.0]]}, neurons=4)
        with pytest.raises(ServeError, match="at least one row"):
            protocol.rows_from_wire({"cols": [], "vals": []}, neurons=4)


# --------------------------------------------------------------------------- #
# the live TCP server
# --------------------------------------------------------------------------- #
class TestServeApp:
    @pytest.fixture()
    def server(self, network):
        engine = ServingEngine.from_network(network, activations="dense")
        with serve_in_background(engine, max_batch=16, max_wait_ms=1.0) as handle:
            yield handle

    def test_ping_meta_stats(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            assert client.ping()["op"] == "pong"
            meta = client.meta()
            assert meta["neurons"] == NEURONS
            assert meta["layers"] == LAYERS
            assert meta["max_batch"] == 16
            stats = client.stats()
            assert stats["requests"] == 0
            assert stats["connections_opened"] >= 1

    @pytest.mark.parametrize("encoding", ["dense", "sparse"])
    def test_infer_parity_with_single_shot(self, server, network, batch, encoding):
        expected = InferenceEngine(network, activations="dense").run(
            batch, record_timing=False
        )
        host, port = server.address
        with ServeClient(host, port) as client:
            response = client.infer(
                batch, request_id="r1", want_activations=True, encoding=encoding
            )
        assert response["id"] == "r1"
        assert (np.asarray(response["activations"]) == expected.activations).all()
        assert response["categories"] == [int(c) for c in expected.categories]
        assert response["stats"]["batch_rows"] >= BATCH

    def test_error_response_keeps_connection_usable(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            response = client.request({"op": "frobnicate", "id": 7})
            assert response["ok"] is False
            assert "unknown op" in response["error"]
            assert response["id"] == 7
            response = client.request({"op": "infer", "rows": [[1.0]]})
            assert response["ok"] is False and "shape" in response["error"]
            assert client.ping()["op"] == "pong"  # connection survived
            assert client.stats()["protocol_errors"] == 2

    def test_malformed_sparse_neurons_gets_error_response(self, server):
        # a non-integer client-supplied 'neurons' must produce an error
        # response, not an unhandled exception that drops the connection
        host, port = server.address
        with ServeClient(host, port) as client:
            response = client.request(
                {"op": "infer", "id": "bad",
                 "rows": {"neurons": "abc", "cols": [[0]], "vals": [[1.0]]}}
            )
            assert response["ok"] is False
            assert "integer" in response["error"]
            assert client.ping()["op"] == "pong"  # connection survived

    def test_malformed_json_line_gets_error_response(self, server):
        host, port = server.address
        with ServeClient(host, port) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            line = client._file.readline()
            response = protocol.decode(line)
            assert response["ok"] is False
            assert "malformed" in response["error"]
            assert client.ping()["op"] == "pong"

    def test_shutdown_op_stops_the_server(self, network):
        engine = ServingEngine.from_network(network)
        handle = serve_in_background(engine)
        host, port = handle.address
        with ServeClient(host, port) as client:
            assert client.shutdown()["ok"]
        handle._thread.join(timeout=10)
        assert not handle._thread.is_alive()
        with pytest.raises(ServeError, match="cannot connect"):
            ServeClient(host, port, connect_timeout_s=2.0)
        handle.stop()  # idempotent after self-shutdown

    def test_bench_serve_aggregates(self, server):
        host, port = server.address
        report = bench_serve(
            host, port, requests=12, clients=3, rows_per_request=2, seed=5
        )
        assert report["completed"] == 12
        assert report["errors"] == 0
        assert report["requests_per_second"] > 0
        assert report["latency_p99_ms"] >= report["latency_p50_ms"] >= 0
        assert report["server_stats"]["requests"] == 12
        assert report["server_stats"]["rows"] == 24
        assert report["server"]["neurons"] == NEURONS

    def test_bench_serve_validation(self, server):
        host, port = server.address
        with pytest.raises(ValidationError):
            bench_serve(host, port, requests=0)
        with pytest.raises(ValidationError):
            bench_serve(host, port, clients=0)
        with pytest.raises(ValidationError):
            bench_serve(host, port, rows_per_request=0)


# --------------------------------------------------------------------------- #
# CLI round trip
# --------------------------------------------------------------------------- #
class TestServeCLI:
    def _serve_in_thread(self, argv):
        from repro.cli import main

        codes = []
        thread = threading.Thread(target=lambda: codes.append(main(argv)), daemon=True)
        thread.start()
        return thread, codes

    def test_serve_and_bench_serve_round_trip(self, tmp_path, net_dir, capsys):
        from repro.cli import main

        port_file = tmp_path / "port.txt"
        thread, codes = self._serve_in_thread(
            ["challenge", "serve", "--dir", str(net_dir), "--neurons", str(NEURONS),
             "--port", "0", "--port-file", str(port_file),
             "--max-batch", "8", "--max-wait-ms", "1"]
        )
        pause = threading.Event()
        for _ in range(200):
            if port_file.exists():
                break
            pause.wait(0.05)
        assert port_file.exists(), "server never wrote its port file"
        _, port = port_file.read_text().split()
        json_path = tmp_path / "bench.json"
        code = main(["challenge", "bench-serve", "--port", port,
                     "--requests", "10", "--clients", "2", "--rows", "2",
                     "--json", str(json_path), "--shutdown"])
        assert code == 0
        thread.join(timeout=15)
        assert not thread.is_alive()
        assert codes == [0]
        out = capsys.readouterr().out
        assert "requests/s" in out
        assert "p99" in out
        report = json.loads(json_path.read_text())
        assert report["completed"] == 10 and report["errors"] == 0
        assert report["shutdown_ok"] is True

    def test_warm_start_serves_from_checkpoint(self, tmp_path, net_dir, batch, capsys):
        from repro.cli import main

        run_challenge_pipeline(
            net_dir, NEURONS, batch,
            checkpoint_dir=tmp_path / "ck", checkpoint_every=2,
        )
        port_file = tmp_path / "port.txt"
        thread, codes = self._serve_in_thread(
            ["challenge", "serve", "--warm-start", str(tmp_path / "ck"),
             "--port", "0", "--port-file", str(port_file)]
        )
        for _ in range(200):
            if port_file.exists():
                break
            threading.Event().wait(0.05)
        assert port_file.exists()
        _, port = port_file.read_text().split()
        with ServeClient("127.0.0.1", int(port)) as client:
            meta = client.meta()
            assert meta["neurons"] == NEURONS
            assert meta["layers"] == LAYERS
            client.shutdown()
        thread.join(timeout=15)
        assert codes == [0]
