"""Tests for repro.numeral.factorization."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.numeral.factorization import (
    balanced_radix_list,
    divisors,
    factorizations_with_length,
    prime_factorization,
    radix_lists_with_product,
)


class TestPrimeFactorization:
    def test_small_values(self):
        assert prime_factorization(1) == {}
        assert prime_factorization(2) == {2: 1}
        assert prime_factorization(12) == {2: 2, 3: 1}
        assert prime_factorization(360) == {2: 3, 3: 2, 5: 1}

    def test_prime(self):
        assert prime_factorization(97) == {97: 1}

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            prime_factorization(0)

    @given(st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=100, deadline=None)
    def test_product_of_factors_recovers_n(self, n):
        factors = prime_factorization(n)
        product = math.prod(p**e for p, e in factors.items())
        assert product == n


class TestDivisors:
    def test_known_values(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(13) == [1, 13]

    def test_proper_excludes_self(self):
        assert divisors(12, proper=True) == [1, 2, 3, 4, 6]
        assert divisors(1, proper=True) == [1]

    @given(st.integers(min_value=1, max_value=5000))
    @settings(max_examples=100, deadline=None)
    def test_all_entries_divide(self, n):
        for d in divisors(n):
            assert n % d == 0

    @given(st.integers(min_value=1, max_value=2000))
    @settings(max_examples=50, deadline=None)
    def test_sorted_and_unique(self, n):
        ds = divisors(n)
        assert ds == sorted(set(ds))


class TestFactorizationsWithLength:
    def test_known_values(self):
        assert sorted(factorizations_with_length(12, 2)) == [(2, 6), (3, 4), (4, 3), (6, 2)]
        assert list(factorizations_with_length(8, 1)) == [(8,)]

    def test_length_three(self):
        result = sorted(factorizations_with_length(8, 3))
        assert result == [(2, 2, 2)]

    def test_impossible_length_gives_nothing(self):
        assert list(factorizations_with_length(6, 3)) == []

    def test_min_factor_filter(self):
        result = list(factorizations_with_length(12, 2, min_factor=3))
        assert sorted(result) == [(3, 4), (4, 3)]

    @given(st.integers(min_value=4, max_value=200), st.integers(min_value=1, max_value=4))
    @settings(max_examples=60, deadline=None)
    def test_products_match(self, n, length):
        for factors in factorizations_with_length(n, length):
            assert math.prod(factors) == n
            assert len(factors) == length
            assert all(f >= 2 for f in factors)


class TestRadixListsWithProduct:
    def test_known_count(self):
        # 8 = (8), (2,4), (4,2), (2,2,2)
        assert len(radix_lists_with_product(8)) == 4

    def test_max_length_limits(self):
        assert len(radix_lists_with_product(8, max_length=1)) == 1
        assert len(radix_lists_with_product(8, max_length=2)) == 3

    def test_prime_has_single_list(self):
        assert radix_lists_with_product(7) == [(7,)]

    def test_rejects_one(self):
        with pytest.raises(ValidationError):
            radix_lists_with_product(1)

    @given(st.integers(min_value=2, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_all_lists_valid(self, n):
        for radices in radix_lists_with_product(n):
            assert math.prod(radices) == n
            assert all(r >= 2 for r in radices)


class TestBalancedRadixList:
    def test_perfect_square(self):
        assert balanced_radix_list(36, 2) == (6, 6)

    def test_perfect_cube(self):
        assert balanced_radix_list(27, 3) == (3, 3, 3)

    def test_non_square_picks_low_variance(self):
        result = balanced_radix_list(12, 2)
        assert sorted(result) == [3, 4]

    def test_length_one(self):
        assert balanced_radix_list(10, 1) == (10,)

    def test_impossible_raises(self):
        with pytest.raises(ValidationError):
            balanced_radix_list(6, 3)

    @given(st.integers(min_value=4, max_value=256), st.integers(min_value=1, max_value=3))
    @settings(max_examples=50, deadline=None)
    def test_product_preserved_when_possible(self, n, length):
        try:
            result = balanced_radix_list(n, length)
        except ValidationError:
            return
        assert math.prod(result) == n
        assert len(result) == length
