"""Streaming challenge generation: parity, IO, scale smoke, accounting.

The generation path is fully sparse as of the streaming-generator
refactor -- per-layer neuron shuffles are CSR column permutations
(O(nnz)), never a dense ``N x N`` round-trip -- and
:func:`iter_generate_challenge_layers` +
:func:`save_challenge_layers` /
:func:`streaming_inference` run generate -> disk / generate -> infer
with only one layer resident.  This module pins:

* the streaming generator against the materialized one, bit for bit;
* the streaming save against the materialized save, byte for byte;
* the stream-description validation of ``save_challenge_layers``
  (including partial-sidecar cleanup on error);
* edge accounting (``edges_traversed``, ``connections_per_neuron``)
  staying exact for permuted networks -- the regression guard for the
  accounting fixed in the backend-engine PR;
* the official 16384-neuron scale (marked ``slow``): generation in
  memory bounded by a small multiple of a single layer's CSR footprint,
  and the ``repro challenge generate`` CLI completing end to end.
"""

import tracemalloc

import numpy as np
import pytest

from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
    iter_generate_challenge_layers,
)
from repro.challenge.inference import InferenceEngine, streaming_inference
from repro.challenge.io import (
    cache_path,
    iter_challenge_layers,
    load_challenge_network,
    save_challenge_layers,
    save_challenge_network,
)
from repro.cli import main
from repro.errors import SerializationError, ValidationError


def _tsv_and_meta_bytes(directory):
    return {
        path.name: path.read_bytes()
        for path in sorted(directory.glob("*.tsv"))
    }


class TestStreamingGenerator:
    def test_matches_materialized_generator_bit_for_bit(self):
        network = generate_challenge_network(64, 5, connections=8, seed=11)
        layers = list(
            iter_generate_challenge_layers(64, 5, connections=8, seed=11)
        )
        assert len(layers) == network.num_layers
        for (weight, bias), expected_w, expected_b in zip(
            layers, network.weights, network.biases
        ):
            assert weight.same_pattern(expected_w)
            assert np.array_equal(weight.data, expected_w.data)
            assert np.array_equal(bias, expected_b)

    def test_generator_is_lazy(self):
        # nothing is built until the first layer is pulled, and argument
        # validation still happens eagerly at iteration time
        iterator = iter_generate_challenge_layers(16, 1000000, connections=4)
        weight, bias = next(iterator)
        assert weight.shape == (16, 16)
        assert bias.shape == (16,)

    def test_validation_matches_generate_and_is_eager(self):
        # bad arguments fail at the call, not on first next(): callers
        # that mkdir/open files before consuming see the error up front
        with pytest.raises(ValidationError, match="divisible"):
            iter_generate_challenge_layers(10, 2, connections=4)
        with pytest.raises(ValidationError):
            iter_generate_challenge_layers(8, 2, connections=2, threshold=0.0)

    def test_unshuffled_layers_all_identical(self):
        layers = list(
            iter_generate_challenge_layers(
                16, 3, connections=4, shuffle_neurons=False
            )
        )
        first = layers[0][0]
        for weight, _ in layers[1:]:
            assert weight.same_pattern(first)

    @pytest.mark.parametrize("backend", ["reference", "vectorized"])
    def test_backend_selection_is_bit_identical(self, backend):
        default = list(iter_generate_challenge_layers(32, 3, connections=4, seed=2))
        picked = list(
            iter_generate_challenge_layers(32, 3, connections=4, seed=2, backend=backend)
        )
        for (a, _), (b, _) in zip(default, picked):
            assert a.same_pattern(b)
            assert np.array_equal(a.data, b.data)

    def test_generate_stream_infer_without_disk(self):
        network = generate_challenge_network(32, 6, connections=4, seed=21)
        batch = challenge_input_batch(32, 10, seed=22)
        resident = InferenceEngine(network).run(batch, record_timing=False)
        streamed = streaming_inference(
            iter_generate_challenge_layers(32, 6, connections=4, seed=21),
            batch,
            threshold=network.threshold,
        )
        assert list(streamed.categories) == list(resident.categories)
        np.testing.assert_array_equal(streamed.activations, resident.activations)
        assert streamed.edges_traversed == resident.edges_traversed


class TestStreamingSave:
    def test_byte_identical_to_materialized_save(self, tmp_path):
        network = generate_challenge_network(32, 4, connections=8, seed=13)
        materialized = tmp_path / "materialized"
        streamed = tmp_path / "streamed"
        save_challenge_network(network, materialized)
        save_challenge_layers(
            streamed,
            iter_generate_challenge_layers(32, 4, connections=8, seed=13),
            neurons=32,
            num_layers=4,
            threshold=network.threshold,
        )
        assert _tsv_and_meta_bytes(materialized) == _tsv_and_meta_bytes(streamed)

    def test_streamed_sidecar_loads_and_matches(self, tmp_path):
        save_challenge_layers(
            tmp_path,
            iter_generate_challenge_layers(16, 3, connections=4, seed=14),
            neurons=16,
            num_layers=3,
            threshold=32.0,
        )
        assert cache_path(tmp_path, 16).exists()
        cached = load_challenge_network(tmp_path, 16)
        parsed = load_challenge_network(tmp_path, 16, use_cache=False)
        for a, b in zip(cached.weights, parsed.weights):
            assert a.same_pattern(b)
            assert np.array_equal(np.asarray(a.data), np.asarray(b.data))

    def test_failed_save_over_existing_network_fails_loudly_on_load(self, tmp_path):
        # the meta file is the commit record: a save that dies midway over
        # an existing network must not leave a loadable mix of new and old
        # layer TSVs (chimera network) -- the old meta is removed up front
        # and only rewritten once every layer landed
        save_challenge_layers(
            tmp_path,
            iter_generate_challenge_layers(16, 3, connections=4, seed=1),
            neurons=16,
            num_layers=3,
            threshold=32.0,
        )

        def dies_after_two(seed):
            for i, layer in enumerate(
                iter_generate_challenge_layers(16, 3, connections=4, seed=seed)
            ):
                if i == 2:
                    raise RuntimeError("interrupted")
                yield layer

        with pytest.raises(RuntimeError, match="interrupted"):
            save_challenge_layers(
                tmp_path, dies_after_two(2), neurons=16, num_layers=3, threshold=32.0
            )
        with pytest.raises(SerializationError, match="metadata file not found"):
            load_challenge_network(tmp_path, 16)

        # a subsequent successful save fully recovers the directory
        save_challenge_layers(
            tmp_path,
            iter_generate_challenge_layers(16, 3, connections=4, seed=3),
            neurons=16,
            num_layers=3,
            threshold=32.0,
        )
        assert load_challenge_network(tmp_path, 16).num_layers == 3

    def test_too_few_layers_raises_and_discards_sidecar(self, tmp_path):
        with pytest.raises(SerializationError, match="expected 3"):
            save_challenge_layers(
                tmp_path,
                iter_generate_challenge_layers(16, 2, connections=4, seed=0),
                neurons=16,
                num_layers=3,
                threshold=32.0,
            )
        assert not cache_path(tmp_path, 16).exists()
        assert not list(tmp_path.glob("*.tmp.npz"))

    def test_zero_layers_declared_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="num_layers"):
            save_challenge_layers(
                tmp_path, iter([]), neurons=16, num_layers=0, threshold=32.0
            )
        assert not list(tmp_path.glob("*"))

    def test_too_many_layers_raises(self, tmp_path):
        with pytest.raises(SerializationError, match="more than the declared"):
            save_challenge_layers(
                tmp_path,
                iter_generate_challenge_layers(16, 4, connections=4, seed=0),
                neurons=16,
                num_layers=2,
                threshold=32.0,
            )

    def test_wrong_shape_raises(self, tmp_path):
        with pytest.raises(SerializationError, match="shape"):
            save_challenge_layers(
                tmp_path,
                iter_generate_challenge_layers(16, 2, connections=4, seed=0),
                neurons=32,
                num_layers=2,
                threshold=32.0,
            )

    def test_non_constant_bias_raises(self, tmp_path):
        def layers():
            for weight, bias in iter_generate_challenge_layers(
                16, 2, connections=4, seed=0
            ):
                yield weight, np.arange(16, dtype=np.float64) * -1.0

        with pytest.raises(SerializationError, match="constant"):
            save_challenge_layers(
                tmp_path, layers(), neurons=16, num_layers=2, threshold=32.0
            )

    def test_bias_differing_across_layers_raises(self, tmp_path):
        def layers():
            for i, (weight, _) in enumerate(
                iter_generate_challenge_layers(16, 2, connections=4, seed=0)
            ):
                yield weight, np.full(16, -0.1 * (i + 1))

        with pytest.raises(SerializationError, match="differs"):
            save_challenge_layers(
                tmp_path, layers(), neurons=16, num_layers=2, threshold=32.0
            )

    def test_round_trip_through_streaming_reader(self, tmp_path):
        save_challenge_layers(
            tmp_path,
            iter_generate_challenge_layers(32, 5, connections=4, seed=15),
            neurons=32,
            num_layers=5,
            threshold=32.0,
        )
        batch = challenge_input_batch(32, 8, seed=16)
        from_disk = streaming_inference(
            iter_challenge_layers(tmp_path, 32), batch, threshold=32.0
        )
        direct = streaming_inference(
            iter_generate_challenge_layers(32, 5, connections=4, seed=15),
            batch,
            threshold=32.0,
        )
        assert list(from_disk.categories) == list(direct.categories)


class TestEdgeAccounting:
    """Permutation-invariant edge accounting (regression guards)."""

    def test_connections_per_neuron_exact_for_shuffled_networks(self):
        # the per-layer shuffle is a column permutation: nnz-preserving,
        # so the challenge's nominal connections/neuron stays *exact*
        network = generate_challenge_network(48, 7, connections=8, seed=17)
        assert network.connections_per_neuron == 8.0
        assert network.topology.num_edges == 48 * 8 * 7
        for weight in network.weights:
            assert weight.nnz == 48 * 8

    def test_permuted_layer_degrees_are_regular(self):
        network = generate_challenge_network(32, 4, connections=4, seed=18)
        for weight in network.weights:
            assert np.all(weight.row_degrees() == 4)
            assert np.all(weight.col_degrees() == 4)

    def test_edges_traversed_regression(self):
        # the engine refactor fixed edges_traversed to count *stored
        # weight entries x batch rows* on every execution path; pin all
        # four (single-shot, chunked, parallel merge, streaming) to the
        # same number so the accounting cannot silently drift again
        network = generate_challenge_network(32, 5, connections=4, seed=19)
        batch = challenge_input_batch(32, 12, seed=20)
        expected = sum(w.nnz for w in network.weights) * 12
        assert expected == 32 * 4 * 5 * 12
        engine = InferenceEngine(network)
        assert engine.run(batch, record_timing=False).edges_traversed == expected
        assert (
            engine.run(batch, chunk_size=5, record_timing=False).edges_traversed
            == expected
        )
        assert engine.run(batch, workers=2).edges_traversed == expected
        streamed = streaming_inference(
            zip(network.weights, network.biases), batch, threshold=network.threshold
        )
        assert streamed.edges_traversed == expected


@pytest.mark.slow
class TestOfficialScale:
    """16384-neuron generation smoke (the size the dense path could not reach)."""

    NEURONS = 16384
    CONNECTIONS = 32
    LAYERS = 2

    def test_generation_memory_bounded_by_single_layer(self):
        nnz = self.NEURONS * self.CONNECTIONS
        # one layer's CSR footprint: indices + data (8 bytes each) + indptr
        layer_bytes = nnz * 16 + (self.NEURONS + 1) * 8
        dense_layer_bytes = self.NEURONS * self.NEURONS * 8
        tracemalloc.start()
        try:
            total_nnz = 0
            for weight, bias in iter_generate_challenge_layers(
                self.NEURONS, self.LAYERS, connections=self.CONNECTIONS, seed=3
            ):
                total_nnz += weight.nnz
                assert bias.shape == (self.NEURONS,)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert total_nnz == nnz * self.LAYERS
        # bounded by a small multiple of one layer's nnz (measured ~7.5x:
        # base layer + permuted copy + sort temporaries), and far below
        # the 2 GB dense per-layer buffer the old path allocated
        assert peak < 16 * layer_bytes
        assert peak < dense_layer_bytes / 8

    def test_cli_generate_completes_at_official_size(self, tmp_path, capsys):
        code = main(
            [
                "challenge",
                "generate",
                "--neurons",
                str(self.NEURONS),
                "--layers",
                str(self.LAYERS),
                "--connections",
                str(self.CONNECTIONS),
                "--out",
                str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "streaming" in out
        for i in range(1, self.LAYERS + 1):
            assert (tmp_path / f"neuron{self.NEURONS}-l{i}.tsv").exists()
        assert cache_path(tmp_path, self.NEURONS).exists()
        # the saved network streams back with the right per-layer shape/nnz
        layers = iter_challenge_layers(tmp_path, self.NEURONS)
        weight, bias = next(layers)
        assert weight.shape == (self.NEURONS, self.NEURONS)
        assert weight.nnz == self.NEURONS * self.CONNECTIONS
        assert float(bias[0]) == pytest.approx(-0.3)
        layers.close()
