"""Tests for repro.experiments: figure regeneration, training comparison, scaling."""

import numpy as np
import pytest

from repro.experiments.figures import (
    equation4_density_table,
    figure1_mixed_radix_data,
    figure2_emr_data,
    figure3_fnnt_data,
    figure4_adjacency_data,
    figure5_kronecker_data,
    figure6_generator_scaling,
    figure7_density_surface,
    theorem1_path_count_table,
)
from repro.experiments.scaling import (
    brain_sizing_table,
    diversity_table,
    graph_challenge_scaling,
    variance_ablation,
    width_ablation,
)
from repro.experiments.training import accuracy_vs_density, train_topology_on_dataset
from repro.datasets import gaussian_mixture
from repro.topology.random_graphs import erdos_renyi_fnnt


class TestFigureData:
    def test_figure1(self):
        data = figure1_mixed_radix_data()
        assert data.layer_sizes == (8, 8, 8, 8)
        assert data.per_layer_out_degree == (2, 2, 2)
        assert data.symmetric
        # each decision tree's leaves cover all eight output nodes exactly once
        assert all(leaves == tuple(range(8)) for leaves in data.decision_tree_leaf_sets)

    def test_figure2(self):
        data = figure2_emr_data()
        assert data.n_prime == 36
        assert data.symmetric
        assert data.path_count == data.lemma2_prediction

    def test_figure3(self):
        data = figure3_fnnt_data()
        assert data.dense_density == 1.0
        assert data.sparse_edges < data.dense_edges
        assert 0 < data.sparse_density < 1

    def test_figure4(self):
        data = figure4_adjacency_data()
        assert data.block_structure_valid
        assert data.adjacency_nnz == data.topology.num_edges
        assert data.total_nodes == data.topology.num_nodes

    def test_figure5(self):
        data = figure5_kronecker_data()
        assert data.expanded_layer_sizes == tuple(
            w * 4 for w in (3, 5, 4, 2, 2)
        )
        assert data.symmetric
        assert data.path_count == data.predicted_path_count

    def test_figure6_scaling(self):
        rows = figure6_generator_scaling((8, 16, 32))
        assert len(rows) == 3
        for row in rows:
            assert row["edges"] == row["predicted_edges"]
        # larger N' means more edges
        assert rows[-1]["edges"] > rows[0]["edges"]

    def test_figure7_surface(self):
        data = figure7_density_surface(mus=(2, 3, 4), depths=(1, 2, 3))
        assert data.formula_surface.shape == (3, 3)
        assert data.max_relative_error < 1e-9
        # density decreases along depth for fixed mu
        assert np.all(np.diff(data.formula_surface, axis=0) < 0)

    def test_equation4_table(self):
        rows = equation4_density_table()
        assert len(rows) >= 5
        for row in rows:
            assert row["exact_density_eq4"] == pytest.approx(row["measured_density"])
            # eq (5) is within a factor of ~2 of eq (4) for these low-variance specs
            assert row["approx_density_eq5"] == pytest.approx(row["exact_density_eq4"], rel=0.6)

    def test_theorem1_table(self):
        rows = theorem1_path_count_table()
        assert len(rows) >= 4
        assert all(row["matches"] for row in rows)


class TestScalingExperiments:
    def test_graph_challenge_scaling_rows(self):
        rows = graph_challenge_scaling(base_neurons=16, sizes=2, num_layers=4, batch_size=8)
        assert len(rows) == 2
        assert rows[1]["neurons"] == 4 * rows[0]["neurons"]
        assert all(row["verified"] == 1.0 for row in rows)
        assert all(row["edges_per_second"] > 0 for row in rows)

    def test_brain_sizing_table(self):
        rows = brain_sizing_table(scale=1e-5, max_layers=3)
        names = {row["target"] for row in rows}
        assert names == {"mouse", "human"}
        for row in rows:
            assert row["neuron_error"] < 0.01
            assert row["scaled_instance_density"] < 0.5

    def test_width_ablation_density_stable(self):
        rows = width_ablation()
        gaps = [row["relative_gap"] for row in rows]
        # uniform radices: eq (5) exact at every width (the paper's claim)
        assert max(gaps) < 1e-12

    def test_variance_ablation_error_grows(self):
        rows = variance_ablation(n_prime=36, length=3)
        assert len(rows) >= 3
        lowest = rows[0]
        highest = rows[-1]
        assert lowest["variance"] <= highest["variance"]
        assert lowest["relative_error"] <= highest["relative_error"] + 1e-12

    def test_diversity_table_ratio_above_one(self):
        rows = diversity_table(n_primes=(8, 16, 36))
        assert all(row["ratio"] >= 1.0 for row in rows)
        # composite numbers with rich divisor structure dominate
        by_n = {row["n_prime"]: row["radixnet_configurations"] for row in rows}
        assert by_n[36.0] > by_n[8.0]


class TestTrainingExperiments:
    def test_train_topology_on_dataset_single_arm(self):
        features, labels = gaussian_mixture(240, num_classes=4, num_features=12, seed=0)
        topology = erdos_renyi_fnnt([12, 24, 8], 0.5, seed=1)
        arm, weights = train_topology_on_dataset(
            topology, features, labels, num_classes=4, epochs=5, seed=2, name="er"
        )
        assert arm.name == "er"
        assert 0.0 < arm.density < 1.0
        assert arm.val_accuracy > 0.4
        assert len(weights) == 2

    def test_output_width_too_small_rejected(self):
        features, labels = gaussian_mixture(100, num_classes=4, num_features=8, seed=0)
        topology = erdos_renyi_fnnt([8, 8, 2], 0.6, seed=0)
        with pytest.raises(ValueError):
            train_topology_on_dataset(topology, features, labels, num_classes=4, epochs=1)

    def test_accuracy_vs_density_four_arms(self):
        result = accuracy_vs_density(
            num_samples=320, epochs=6, layer_widths=(16, 32, 32, 8), seed=3
        )
        names = {arm.name for arm in result.arms}
        assert names == {"radix-net", "random-xnet", "dense", "pruned"}
        # sparse arms really are sparse, dense arm is dense
        assert result.arm("dense").density == pytest.approx(1.0)
        assert result.arm("radix-net").density < 1.0
        # headline claim shape: the sparse de-novo topology trains to an
        # accuracy in the same range as dense (within 20 points on this task)
        assert result.accuracy_gap("radix-net") < 0.20
        # and all arms learn far better than chance (25%)
        for arm in result.arms:
            assert arm.val_accuracy > 0.5
