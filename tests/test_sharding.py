"""Tensor-parallel sharding: layout laws, CSR slicing, bit-identity.

The sharded recurrence (:mod:`repro.parallel.sharding`) claims *bitwise*
equality with the unsharded pipeline: each output-column block is the
same floating-point summation in the same order as the corresponding
columns of the full layer step, and canonical CSR is unique, so the
all-gathered frontier must match exactly -- not approximately -- for
every backend, every activation policy, and every shard count.  These
tests pin that claim:

* hypothesis property suites for :func:`partition_ranges` /
  :func:`slice_csr_columns` / :func:`hstack_csr` (slice + all-gather is
  the identity on canonical CSR);
* sharded == unsharded bitwise across all registered backends,
  policies, and shard counts (serial transport, in-process);
* the process transport (resident-shard worker pool) against the same
  golden, including checkpoint / kill / resume and the K -> 1 and
  mismatched-K resume semantics;
* a slow-marked official-scale (1024 x 120) smoke asserting the
  resident-shard memory bound: max worker peak RSS stays below a fresh
  unsharded process's peak RSS.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.backends as backends
from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
)
from repro.challenge.inference import sparse_dnn_inference
from repro.challenge.io import save_challenge_network
from repro.challenge.pipeline import (
    resume_challenge_pipeline,
    run_challenge_pipeline,
)
from repro.challenge.verify import category_checksum
from repro.errors import ShapeError, ValidationError
from repro.parallel.partition import partition_batch, partition_ranges
from repro.parallel.sharding import (
    ShardLayout,
    hstack_csr,
    shard_layer,
    slice_csr_columns,
    slice_csr_rows,
)
from repro.serve.engine import ServingEngine
from repro.sparse.csr import CSRMatrix

ALL_BACKENDS = backends.available_backends()

NEURONS = 64
LAYERS = 6


@pytest.fixture(scope="module")
def network():
    return generate_challenge_network(NEURONS, LAYERS, connections=8, seed=11)


@pytest.fixture(scope="module")
def net_dir(network, tmp_path_factory):
    directory = tmp_path_factory.mktemp("sharding") / "net"
    save_challenge_network(network, directory)
    return directory


@pytest.fixture(scope="module")
def batch():
    return challenge_input_batch(NEURONS, 8, seed=12)


def _random_csr(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    dense = rng.random((rows, cols)) * (rng.random((rows, cols)) < density)
    return CSRMatrix.from_dense(dense)


def _assert_same_result(a, b):
    """Bitwise equality of everything a run reports (not just categories)."""
    np.testing.assert_array_equal(a.activations, b.activations)
    np.testing.assert_array_equal(a.categories, b.categories)
    assert a.layer_modes == b.layer_modes
    assert a.layer_density == b.layer_density
    assert a.peak_activation_nnz == b.peak_activation_nnz
    assert a.edges_traversed == b.edges_traversed


# --------------------------------------------------------------------------- #
# partition_ranges: the remainder law (satellite 1)
# --------------------------------------------------------------------------- #
class TestPartitionRanges:
    @given(st.integers(0, 500), st.integers(1, 40))
    @settings(max_examples=120, deadline=None)
    def test_ranges_tile_the_interval_without_gaps(self, total, parts):
        ranges = partition_ranges(total, parts)
        assert all(start < stop for start, stop in ranges)  # never empty
        flat = [i for start, stop in ranges for i in range(start, stop)]
        assert flat == list(range(total))

    @given(st.integers(0, 500), st.integers(1, 40))
    @settings(max_examples=120, deadline=None)
    def test_ranges_are_balanced_with_remainder_leading(self, total, parts):
        ranges = partition_ranges(total, parts)
        widths = [stop - start for start, stop in ranges]
        assert len(ranges) == min(parts, total) if total else len(ranges) == 0
        if widths:
            assert max(widths) - min(widths) <= 1
            # the larger parts come first (leading-parts remainder rule)
            assert widths == sorted(widths, reverse=True)

    def test_no_empty_trailing_shard(self):
        assert partition_ranges(2, 4) == [(0, 1), (1, 2)]
        assert partition_ranges(0, 3) == []
        assert partition_ranges(7, 3) == [(0, 3), (3, 5), (5, 7)]

    @given(st.integers(0, 200), st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_partition_batch_reuses_the_same_ranges(self, total, parts):
        arr = np.arange(total * 2, dtype=np.float64).reshape(total, 2)
        chunks = partition_batch(arr, parts)
        assert all(len(c) for c in chunks)
        if total:
            np.testing.assert_array_equal(np.concatenate(chunks), arr)
        assert [len(c) for c in chunks] == [
            stop - start for start, stop in partition_ranges(total, parts)
        ]


# --------------------------------------------------------------------------- #
# CSR slicing + all-gather: slice-then-hstack is the identity
# --------------------------------------------------------------------------- #
class TestCSRSlicing:
    @given(
        st.integers(1, 12),
        st.integers(1, 24),
        st.integers(1, 24),
        st.integers(0, 10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_slice_hstack_roundtrip_is_bitwise(self, rows, cols, shards, seed):
        matrix = _random_csr(rows, cols, 0.4, seed)
        layout = ShardLayout.balanced(cols, min(shards, cols))
        blocks = [slice_csr_columns(matrix, lo, hi) for lo, hi in layout.ranges]
        gathered = hstack_csr(blocks)
        assert gathered.shape == matrix.shape
        np.testing.assert_array_equal(gathered.indptr, matrix.indptr)
        np.testing.assert_array_equal(gathered.indices, matrix.indices)
        np.testing.assert_array_equal(gathered.data, matrix.data)

    @given(st.integers(2, 12), st.integers(2, 20), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_transpose_of_column_slice_is_row_slice_of_transpose(
        self, rows, cols, seed
    ):
        """The worker-side identity: workers transpose their own slice."""
        from repro.sparse.ops import sparse_transpose

        matrix = _random_csr(rows, cols, 0.5, seed)
        lo, hi = cols // 3, max(cols // 3 + 1, 2 * cols // 3)
        via_slice = sparse_transpose(slice_csr_columns(matrix, lo, hi))
        via_transpose = slice_csr_rows(sparse_transpose(matrix), lo, hi)
        np.testing.assert_array_equal(via_slice.indptr, via_transpose.indptr)
        np.testing.assert_array_equal(via_slice.indices, via_transpose.indices)
        np.testing.assert_array_equal(via_slice.data, via_transpose.data)
        # column indices in the slice are rebased to the slice origin
        if via_slice.nnz:
            assert via_slice.indices.max() < rows

    def test_bad_ranges_rejected(self):
        matrix = _random_csr(3, 6, 0.5, 1)
        with pytest.raises(ValidationError):
            slice_csr_columns(matrix, 4, 2)
        with pytest.raises(ValidationError):
            slice_csr_columns(matrix, 0, 7)
        with pytest.raises(ValidationError):
            slice_csr_rows(matrix, -1, 2)

    def test_hstack_rejects_mismatched_rows(self):
        with pytest.raises(ShapeError):
            hstack_csr([_random_csr(3, 2, 0.5, 1), _random_csr(4, 2, 0.5, 2)])

    def test_hstack_requires_blocks(self):
        with pytest.raises(ValidationError):
            hstack_csr([])


# --------------------------------------------------------------------------- #
# shard layouts
# --------------------------------------------------------------------------- #
class TestShardLayout:
    def test_balanced_widths_cover_neurons(self):
        layout = ShardLayout.balanced(10, 3)
        assert layout.widths == [4, 3, 3]
        assert sum(layout.widths) == layout.neurons == 10

    @pytest.mark.parametrize("bad", [0, -1, NEURONS + 1])
    def test_out_of_range_counts_rejected(self, bad):
        with pytest.raises(ValidationError, match="shards must be in"):
            ShardLayout.balanced(NEURONS, bad)

    def test_shard_layer_validates_geometry(self, network):
        layout = ShardLayout.balanced(NEURONS, 4)
        weight, bias = network.weights[0], network.biases[0]
        sharded = shard_layer(weight, None, bias, layout)
        assert len(sharded.shards) == 4
        assert sharded.nnz == weight.nnz
        with pytest.raises(ShapeError):
            shard_layer(weight, None, bias[:-1], layout)
        with pytest.raises(ShapeError):
            shard_layer(weight, None, bias, ShardLayout.balanced(NEURONS * 2, 2))


# --------------------------------------------------------------------------- #
# bit-identity: sharded == unsharded on every backend / policy / K
# --------------------------------------------------------------------------- #
class TestShardedBitIdentity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("policy", ["auto", "dense", "sparse"])
    def test_all_backends_and_policies(self, network, batch, backend, policy):
        base = sparse_dnn_inference(
            network, batch, backend=backend, activations=policy,
            record_timing=False,
        )
        for shards in (1, 2, 3, NEURONS):
            sharded = sparse_dnn_inference(
                network, batch, backend=backend, activations=policy,
                record_timing=False, shards=shards,
            )
            _assert_same_result(sharded, base)

    @given(st.integers(1, NEURONS), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_arbitrary_shard_counts(self, network, batch, shards, seed):
        rng = np.random.default_rng(seed)
        rows = (rng.random((4, NEURONS)) < 0.3).astype(np.float64)
        base = sparse_dnn_inference(network, rows, record_timing=False)
        sharded = sparse_dnn_inference(
            network, rows, record_timing=False, shards=shards
        )
        _assert_same_result(sharded, base)

    def test_shards_do_not_compose_with_batch_parallelism(self, network, batch):
        with pytest.raises(ValidationError, match="does not compose"):
            sparse_dnn_inference(network, batch, shards=2, chunk_size=4)
        with pytest.raises(ValidationError, match="does not compose"):
            sparse_dnn_inference(network, batch, shards=2, workers=2)


# --------------------------------------------------------------------------- #
# the process transport (resident-shard worker pool)
# --------------------------------------------------------------------------- #
class TestProcessTransport:
    def test_matches_unsharded_golden(self, net_dir, batch):
        golden = run_challenge_pipeline(net_dir, NEURONS, batch)
        for transport in ("process", "serial"):
            outcome = run_challenge_pipeline(
                net_dir, NEURONS, batch, shards=2, shard_transport=transport
            )
            assert outcome.completed
            assert outcome.shards == 2
            _assert_same_result(outcome.result, golden.result)
            assert category_checksum(outcome.result.categories) == (
                category_checksum(golden.result.categories)
            )
        # worker RSS readings only exist on the process transport, and
        # only when the pool actually spawned (restricted sandboxes fall
        # back to serial and report shards without readings)

    def test_unknown_transport_rejected(self, net_dir, batch):
        with pytest.raises(ValidationError, match="shard_transport"):
            run_challenge_pipeline(
                net_dir, NEURONS, batch, shards=2, shard_transport="carrier-pigeon"
            )


# --------------------------------------------------------------------------- #
# checkpoint semantics (satellite 3)
# --------------------------------------------------------------------------- #
class TestShardedCheckpointResume:
    def _staged(self, net_dir, batch, tmp_path, name, **kwargs):
        ckpt = tmp_path / name
        partial = run_challenge_pipeline(
            net_dir, NEURONS, batch,
            checkpoint_dir=ckpt, checkpoint_every=2, stop_after=3, **kwargs,
        )
        assert not partial.completed and partial.layers_done == 3
        return ckpt

    def test_resume_reuses_recorded_layout_bit_identically(
        self, net_dir, batch, tmp_path
    ):
        golden = run_challenge_pipeline(net_dir, NEURONS, batch)
        ckpt = self._staged(net_dir, batch, tmp_path, "ck-default", shards=2)
        resumed = resume_challenge_pipeline(ckpt)
        assert resumed.completed and resumed.shards == 2
        assert resumed.resumed_from == 3
        _assert_same_result(resumed.result, golden.result)

    def test_resume_to_unsharded_is_always_safe(self, net_dir, batch, tmp_path):
        golden = run_challenge_pipeline(net_dir, NEURONS, batch)
        ckpt = self._staged(net_dir, batch, tmp_path, "ck-downshift", shards=2)
        resumed = resume_challenge_pipeline(ckpt, shards=1)
        assert resumed.completed
        _assert_same_result(resumed.result, golden.result)

    def test_resume_with_other_layout_refused(self, net_dir, batch, tmp_path):
        ckpt = self._staged(net_dir, batch, tmp_path, "ck-mismatch", shards=2)
        with pytest.raises(ValidationError, match="--shards 2"):
            resume_challenge_pipeline(ckpt, shards=3)

    def test_unsharded_checkpoint_refuses_sharded_resume(
        self, net_dir, batch, tmp_path
    ):
        ckpt = self._staged(net_dir, batch, tmp_path, "ck-unsharded")
        with pytest.raises(ValidationError, match="--shards 1"):
            resume_challenge_pipeline(ckpt, shards=2)


# --------------------------------------------------------------------------- #
# the sharded serving engine
# --------------------------------------------------------------------------- #
class TestShardedServingEngine:
    def test_step_matches_unsharded_engine(self, network, batch):
        plain = ServingEngine.from_network(network)
        sharded = ServingEngine.from_network(network, shards=4)
        a = plain.step(batch)
        b = sharded.step(batch)
        np.testing.assert_array_equal(a.activations, b.activations)
        assert a.layer_modes == b.layer_modes

    def test_shards_surface_in_metadata(self, network):
        sharded = ServingEngine.from_network(network, shards=2)
        plain = ServingEngine.from_network(network)
        assert sharded.shards == 2 and plain.shards == 1
        assert sharded.describe()["shards"] == 2
        # slicing preserves the edge count exactly
        assert sharded.edges_per_sample == plain.edges_per_sample
        assert sharded.num_layers == plain.num_layers

    def test_full_weights_are_not_resident(self, network):
        sharded = ServingEngine.from_network(network, shards=2)
        assert sharded.layers == ()
        assert len(sharded.shard_layers) == LAYERS
        for layer in sharded.shard_layers:
            widths = [w.shape[1] for w, _, _ in layer.shards]
            assert widths == ShardLayout.balanced(NEURONS, 2).widths

    def test_warm_start_recovers_shard_count(self, net_dir, batch, tmp_path):
        run_challenge_pipeline(
            net_dir, NEURONS, batch,
            checkpoint_dir=tmp_path / "ck", checkpoint_every=2, shards=2,
        )
        engine = ServingEngine.from_checkpoint(tmp_path / "ck")
        assert engine.shards == 2


# --------------------------------------------------------------------------- #
# CLI happy path
# --------------------------------------------------------------------------- #
class TestShardedCLI:
    def test_run_with_shards_reports_layout_and_matches(self, net_dir, capsys):
        from repro.cli import main

        assert main(["challenge", "run", "--dir", str(net_dir),
                     "--neurons", str(NEURONS)]) == 0
        base = capsys.readouterr().out
        assert main(["challenge", "run", "--dir", str(net_dir),
                     "--neurons", str(NEURONS), "--shards", "2"]) == 0
        sharded = capsys.readouterr().out
        assert "shards: 2" in sharded

        def checksum(out):
            return next(l for l in out.splitlines() if "checksum" in l)

        assert checksum(sharded) == checksum(base)


# --------------------------------------------------------------------------- #
# official-scale smoke: the resident-shard memory bound (satellite 4)
# --------------------------------------------------------------------------- #
_RSS_PROBE = """
import json, sys
import numpy as np
from repro.challenge.generator import challenge_input_batch
from repro.challenge.pipeline import run_challenge_pipeline
from repro.challenge.verify import category_checksum
from repro.utils import peak_rss_mb

directory, neurons, shards = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
batch = challenge_input_batch(neurons, 16, active_fraction=0.28, seed=43)
kwargs = {} if shards == 0 else {"shards": shards}
outcome = run_challenge_pipeline(directory, neurons, batch, **kwargs)
assert outcome.completed
print(json.dumps({
    "checksum": category_checksum(outcome.result.categories),
    "rss_mb": peak_rss_mb(),
    "worker_rss_mb": outcome.shard_worker_rss_mb,
}))
"""


@pytest.mark.slow
class TestOfficialScaleShardSmoke:
    def test_1024_neuron_120_layer_rss_bound(self, tmp_path):
        """1024 x 120 official size: sharded workers stay under the
        unsharded process's peak RSS, categories byte-identical.

        Both runs execute in fresh subprocesses so fork-time RSS
        inheritance from the (large) test process cannot flatter or
        penalize either side.
        """
        network = generate_challenge_network(1024, 120, connections=32, seed=42)
        directory = tmp_path / "official"
        save_challenge_network(network, directory)

        def probe(shards):
            src = Path(__file__).resolve().parent.parent / "src"
            out = subprocess.run(
                [sys.executable, "-c", _RSS_PROBE,
                 str(directory), "1024", str(shards)],
                capture_output=True, text=True, check=True,
                env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin:/usr/local/bin"},
            )
            return json.loads(out.stdout.strip().splitlines()[-1])

        base = probe(0)
        sharded = probe(4)
        assert sharded["checksum"] == base["checksum"]
        assert base["rss_mb"] is not None
        worker_rss = sharded["worker_rss_mb"]
        if worker_rss and all(r is not None for r in worker_rss):
            assert len(worker_rss) == 4
            # each resident-shard worker holds ~1/4 of the model; it must
            # undercut the unsharded process's peak
            assert max(worker_rss) < base["rss_mb"]
