"""Golden-file regression tests for the Graph Challenge interchange format.

``tests/data/golden-challenge-8x3/`` holds a canonical saved network
(8 neurons x 3 layers, 2 connections/neuron, unshuffled -- fully
deterministic, no RNG involved) checked in byte for byte.  These tests
pin the on-disk format in both directions:

* **write**: saving the same network today must reproduce the golden
  bytes exactly (both the materialized and the streaming save paths) --
  any drift in index base, field order, separators, or float formatting
  breaks compatibility with the official Graph Challenge files;
* **read**: loading the golden directory must recover the exact
  structure (the known circulant layers, threshold, bias).
"""

from pathlib import Path

import numpy as np
import pytest

from repro.challenge.generator import (
    generate_challenge_network,
    iter_generate_challenge_layers,
)
from repro.challenge.io import (
    load_challenge_network,
    save_challenge_layers,
    save_challenge_network,
)

GOLDEN_DIR = Path(__file__).parent / "data" / "golden-challenge-8x3"
GOLDEN_FILES = (
    "neuron8-l1.tsv",
    "neuron8-l2.tsv",
    "neuron8-l3.tsv",
    "neuron8-meta.tsv",
)


def golden_network():
    """The network the fixtures were generated from (no RNG anywhere)."""
    return generate_challenge_network(8, 3, connections=2, shuffle_neurons=False)


class TestGoldenWrite:
    def test_fixture_files_exist(self):
        for name in GOLDEN_FILES:
            assert (GOLDEN_DIR / name).is_file(), name

    def test_materialized_save_is_byte_stable(self, tmp_path):
        save_challenge_network(golden_network(), tmp_path, write_sidecar=False)
        for name in GOLDEN_FILES:
            assert (tmp_path / name).read_bytes() == (GOLDEN_DIR / name).read_bytes(), (
                f"{name}: save output drifted from the golden fixture -- the "
                "on-disk challenge format must stay byte-stable"
            )

    def test_streaming_save_is_byte_stable(self, tmp_path):
        save_challenge_layers(
            tmp_path,
            iter_generate_challenge_layers(8, 3, connections=2, shuffle_neurons=False),
            neurons=8,
            num_layers=3,
            threshold=32.0,
            write_sidecar=False,
        )
        for name in GOLDEN_FILES:
            assert (tmp_path / name).read_bytes() == (GOLDEN_DIR / name).read_bytes(), name

    def test_no_extra_files_written(self, tmp_path):
        save_challenge_network(golden_network(), tmp_path, write_sidecar=False)
        assert sorted(p.name for p in tmp_path.iterdir()) == sorted(GOLDEN_FILES)


class TestGoldenRead:
    def test_load_recovers_exact_structure(self):
        # use_cache=False: never write a sidecar into the checked-in tree
        network = load_challenge_network(GOLDEN_DIR, 8, use_cache=False)
        assert network.neurons == 8
        assert network.num_layers == 3
        assert network.threshold == 32.0
        # the unshuffled challenge layer is the mixed-radix circulant:
        # row j connects to columns j and (j + 1) mod 8
        expected_cols = np.sort(
            np.stack([np.arange(8), (np.arange(8) + 1) % 8], axis=1), axis=1
        ).ravel()
        for weight in network.weights:
            assert weight.nnz == 16
            np.testing.assert_array_equal(weight.indices, expected_cols)
            np.testing.assert_allclose(np.asarray(weight.data), 1.0)
        for bias in network.biases:
            np.testing.assert_allclose(bias, -0.3)

    def test_load_matches_regenerated_network(self):
        network = load_challenge_network(GOLDEN_DIR, 8, use_cache=False)
        regenerated = golden_network()
        assert network.topology.same_topology(regenerated.topology)
        for a, b in zip(network.weights, regenerated.weights):
            assert a.allclose(b)

    def test_golden_tsv_is_one_based_and_tab_separated(self):
        lines = (GOLDEN_DIR / "neuron8-l1.tsv").read_text().strip().split("\n")
        assert len(lines) == 16
        for line in lines:
            row, col, value = line.split("\t")
            assert 1 <= int(row) <= 8
            assert 1 <= int(col) <= 8
            assert float(value) == 1.0

    def test_golden_meta_fields(self):
        fields = (GOLDEN_DIR / "neuron8-meta.tsv").read_text().strip().split("\t")
        assert [int(fields[0]), int(fields[1])] == [8, 3]
        assert float(fields[2]) == 32.0
        assert float(fields[3]) == pytest.approx(-0.3)

    def test_golden_dir_untouched_by_loads(self):
        before = sorted(p.name for p in GOLDEN_DIR.iterdir())
        load_challenge_network(GOLDEN_DIR, 8, use_cache=False)
        assert sorted(p.name for p in GOLDEN_DIR.iterdir()) == before
