"""Tests for repro.datasets."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.datasets import (
    DATASETS,
    GLYPH_STROKES,
    gaussian_mixture,
    load_dataset,
    render_glyph,
    synthetic_mnist,
    teacher_student,
    two_spirals,
)
from repro.nn.builder import dense_model
from repro.nn.data import one_hot
from repro.nn.optimizers import Adam
from repro.nn.train import Trainer


class TestSyntheticMnist:
    def test_shapes_flattened(self):
        x, y = synthetic_mnist(40, seed=0)
        assert x.shape == (40, 784)
        assert y.shape == (40,)

    def test_shapes_unflattened(self):
        x, _ = synthetic_mnist(10, seed=0, flatten=False)
        assert x.shape == (10, 28, 28)

    def test_pixel_range(self):
        x, _ = synthetic_mnist(20, seed=1)
        assert x.min() >= 0.0 and x.max() <= 1.0

    def test_balanced_classes(self):
        _, y = synthetic_mnist(100, seed=2)
        counts = np.bincount(y, minlength=10)
        assert counts.min() == counts.max() == 10

    def test_determinism(self):
        a, ya = synthetic_mnist(15, seed=3)
        b, yb = synthetic_mnist(15, seed=3)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(ya, yb)

    def test_all_ten_glyphs_defined(self):
        assert set(GLYPH_STROKES) == set(range(10))
        assert all(len(strokes) >= 2 for strokes in GLYPH_STROKES.values())

    def test_render_glyph_shape_and_content(self):
        image = render_glyph(3, seed=0)
        assert image.shape == (28, 28)
        assert image.sum() > 10  # strokes actually drawn

    def test_render_glyph_validation(self):
        with pytest.raises(ValidationError):
            render_glyph(11)
        with pytest.raises(ValidationError):
            render_glyph(0, image_size=4)

    def test_rejects_non_positive_samples(self):
        with pytest.raises(ValidationError):
            synthetic_mnist(0)

    def test_classes_are_distinguishable_by_mean_image(self):
        # class-mean images should differ clearly between distinct digits
        x, y = synthetic_mnist(200, seed=4, noise=0.02)
        means = np.stack([x[y == c].mean(axis=0) for c in range(10)])
        distances = np.linalg.norm(means[:, None, :] - means[None, :, :], axis=2)
        off_diagonal = distances[~np.eye(10, dtype=bool)]
        assert off_diagonal.min() > 1.0


class TestGaussianMixture:
    def test_shapes(self):
        x, y = gaussian_mixture(60, num_classes=3, num_features=5, seed=0)
        assert x.shape == (60, 5)
        assert set(np.unique(y)) == {0, 1, 2}

    def test_separation_controls_difficulty(self):
        x_easy, y_easy = gaussian_mixture(300, class_separation=8.0, noise=0.5, seed=1)
        x_hard, y_hard = gaussian_mixture(300, class_separation=0.1, noise=2.0, seed=1)
        # nearest-class-mean classifier accuracy should differ dramatically
        def nearest_mean_accuracy(x, y):
            means = np.stack([x[y == c].mean(axis=0) for c in np.unique(y)])
            predictions = np.argmin(
                np.linalg.norm(x[:, None, :] - means[None, :, :], axis=2), axis=1
            )
            return (predictions == y).mean()

        assert nearest_mean_accuracy(x_easy, y_easy) > 0.95
        assert nearest_mean_accuracy(x_hard, y_hard) < 0.7

    def test_validation(self):
        with pytest.raises(ValidationError):
            gaussian_mixture(10, num_classes=1)
        with pytest.raises(ValidationError):
            gaussian_mixture(10, noise=0.0)
        with pytest.raises(ValidationError):
            gaussian_mixture(0)


class TestTwoSpirals:
    def test_shapes_and_labels(self):
        x, y = two_spirals(100, seed=0)
        assert x.shape == (100, 2)
        assert set(np.unique(y)) == {0, 1}

    def test_embedding_dimension(self):
        x, _ = two_spirals(50, embed_dim=10, seed=1)
        assert x.shape == (50, 10)

    def test_validation(self):
        with pytest.raises(ValidationError):
            two_spirals(1)
        with pytest.raises(ValidationError):
            two_spirals(10, noise=-1.0)
        with pytest.raises(ValidationError):
            two_spirals(10, embed_dim=1)

    def test_classes_roughly_balanced(self):
        _, y = two_spirals(101, seed=2)
        assert abs(int(np.sum(y == 0)) - int(np.sum(y == 1))) <= 1


class TestTeacherStudent:
    def test_shapes(self):
        x, y = teacher_student(50, input_dim=8, hidden_dim=16, output_dim=2, seed=0)
        assert x.shape == (50, 8)
        assert y.shape == (50, 2)

    def test_same_seed_same_teacher(self):
        x1, y1 = teacher_student(30, seed=5)
        x2, y2 = teacher_student(30, seed=5)
        np.testing.assert_array_equal(y1, y2)

    def test_targets_bounded_by_tanh_structure(self):
        _, y = teacher_student(200, hidden_dim=4, seed=1)
        # outputs are a linear map of tanh activations, hence bounded
        assert np.all(np.abs(y) < 10)

    def test_validation(self):
        with pytest.raises(ValidationError):
            teacher_student(0)
        with pytest.raises(ValidationError):
            teacher_student(10, input_dim=0)
        with pytest.raises(ValidationError):
            teacher_student(10, input_scale=0.0)


class TestRegistry:
    def test_all_registered_datasets_load(self):
        for name in DATASETS:
            x, y = load_dataset(name, 16, seed=0)
            assert x.shape[0] == 16
            assert y.shape[0] == 16

    def test_unknown_dataset(self):
        with pytest.raises(ValidationError, match="unknown dataset"):
            load_dataset("imagenet", 10)

    def test_kwargs_forwarded(self):
        x, _ = load_dataset("gaussian_mixture", 8, seed=0, num_features=3)
        assert x.shape[1] == 3


class TestLearnability:
    def test_dense_mlp_learns_synthetic_mnist(self):
        # the central substitution requirement: a dense MLP must be able to
        # learn the synthetic digits well above chance, quickly.
        x, y = synthetic_mnist(300, seed=0, noise=0.03)
        targets = one_hot(y, 10)
        model = dense_model([784, 64, 10], seed=1)
        trainer = Trainer(model, Adam(0.002), batch_size=32, seed=2)
        history = trainer.fit(x[:240], targets[:240], epochs=15, val_x=x[240:], val_y=targets[240:])
        assert history.best_val_accuracy > 0.6
