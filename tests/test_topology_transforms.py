"""Tests for repro.topology.transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TopologyError, ValidationError
from repro.core.radixnet import generate_radixnet
from repro.topology.fnnt import FNNT
from repro.topology.properties import is_symmetric, uniform_path_count
from repro.topology.random_graphs import erdos_renyi_fnnt
from repro.topology.transforms import (
    edge_overlap,
    from_weight_matrices,
    intersection,
    permute_layer,
    shuffle_all_layers,
    slice_layers,
    union,
)


class TestPermuteLayer:
    def test_preserves_symmetry_and_path_count(self, small_radixnet):
        permuted = permute_layer(small_radixnet, 2, np.random.default_rng(0).permutation(8))
        assert is_symmetric(permuted)
        assert uniform_path_count(permuted) == uniform_path_count(small_radixnet)

    def test_preserves_density_and_edge_count(self, small_radixnet):
        permuted = permute_layer(small_radixnet, 1, np.roll(np.arange(8), 3))
        assert permuted.num_edges == small_radixnet.num_edges
        assert permuted.density() == pytest.approx(small_radixnet.density())

    def test_identity_permutation_is_noop(self, small_radixnet):
        permuted = permute_layer(small_radixnet, 1, np.arange(8))
        assert permuted.same_topology(small_radixnet)

    def test_input_layer_permutation_moves_rows(self):
        net = FNNT([np.array([[1.0, 1.0], [1.0, 0.0]]), np.ones((2, 2))], validate=False)
        permuted = permute_layer(net, 0, [1, 0])
        np.testing.assert_array_equal(
            permuted.submatrix(0).to_dense(), np.array([[1.0, 0.0], [1.0, 1.0]])
        )

    def test_invalid_layer_index(self, small_radixnet):
        with pytest.raises(ValidationError):
            permute_layer(small_radixnet, 99, [0])

    def test_invalid_permutation(self, small_radixnet):
        with pytest.raises(ValidationError):
            permute_layer(small_radixnet, 1, [0, 0, 1, 2, 3, 4, 5, 6])

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_random_interior_permutations_preserve_theory(self, seed):
        net = generate_radixnet([(2, 2), (4,)], [1, 2, 2, 1])
        rng = np.random.default_rng(seed)
        layer = int(rng.integers(1, net.num_layers - 1))
        permuted = permute_layer(net, layer, rng.permutation(net.layer_sizes[layer]))
        assert uniform_path_count(permuted) == uniform_path_count(net)


class TestShuffleAllLayers:
    def test_preserves_structure_metrics(self, small_radixnet):
        shuffled = shuffle_all_layers(small_radixnet, seed=0)
        assert shuffled.layer_sizes == small_radixnet.layer_sizes
        assert shuffled.num_edges == small_radixnet.num_edges
        assert is_symmetric(shuffled)

    def test_boundaries_fixed_by_default(self, small_radixnet):
        shuffled = shuffle_all_layers(small_radixnet, seed=1)
        # input layer rows keep their original out-neighbour count pattern:
        np.testing.assert_array_equal(
            shuffled.submatrix(0).row_degrees(), small_radixnet.submatrix(0).row_degrees()
        )

    def test_deterministic_given_seed(self, small_radixnet):
        a = shuffle_all_layers(small_radixnet, seed=5)
        b = shuffle_all_layers(small_radixnet, seed=5)
        assert a.same_topology(b)

    def test_permute_boundaries_flag(self, small_radixnet):
        shuffled = shuffle_all_layers(small_radixnet, seed=2, permute_boundaries=True)
        assert shuffled.num_edges == small_radixnet.num_edges


class TestSliceLayers:
    def test_slice_shapes(self, small_radixnet):
        piece = slice_layers(small_radixnet, 1, 3)
        assert piece.layer_sizes == small_radixnet.layer_sizes[1:4]
        assert len(piece.submatrices) == 2

    def test_slice_submatrices_identical(self, small_radixnet):
        piece = slice_layers(small_radixnet, 0, 2)
        for a, b in zip(piece.submatrices, small_radixnet.submatrices[:2]):
            assert a.same_pattern(b)

    def test_invalid_bounds(self, small_radixnet):
        with pytest.raises(ValidationError):
            slice_layers(small_radixnet, 3, 3)
        with pytest.raises(ValidationError):
            slice_layers(small_radixnet, 0, 99)


class TestSetOperations:
    def test_union_contains_both(self):
        a = erdos_renyi_fnnt([6, 6], 0.3, seed=0)
        b = erdos_renyi_fnnt([6, 6], 0.3, seed=1)
        combined = union(a, b)
        assert combined.num_edges >= max(a.num_edges, b.num_edges)
        dense_a = a.submatrix(0).to_dense() != 0
        dense_u = combined.submatrix(0).to_dense() != 0
        assert np.all(dense_u[dense_a])

    def test_intersection_subset_of_both(self):
        a = erdos_renyi_fnnt([6, 6], 0.5, seed=2)
        b = erdos_renyi_fnnt([6, 6], 0.5, seed=3)
        common = intersection(a, b)
        assert common.num_edges <= min(a.num_edges, b.num_edges)

    def test_self_overlap_is_one(self, small_radixnet):
        assert edge_overlap(small_radixnet, small_radixnet) == 1.0

    def test_overlap_bounds_and_symmetry(self):
        a = erdos_renyi_fnnt([8, 8], 0.4, seed=4)
        b = erdos_renyi_fnnt([8, 8], 0.4, seed=5)
        overlap = edge_overlap(a, b)
        assert 0.0 <= overlap <= 1.0
        assert overlap == pytest.approx(edge_overlap(b, a))

    def test_shape_mismatch_rejected(self, small_radixnet):
        other = erdos_renyi_fnnt([3, 3], 0.5, seed=0)
        with pytest.raises(TopologyError):
            union(small_radixnet, other)
        with pytest.raises(TopologyError):
            edge_overlap(small_radixnet, other)

    def test_union_with_disjoint_circulants_is_sum(self):
        left = FNNT([np.eye(4)], validate=False)
        right = FNNT([np.roll(np.eye(4), 1, axis=1)], validate=False)
        assert union(left, right).num_edges == 8
        assert intersection(left, right).num_edges == 0


class TestFromWeightMatrices:
    def test_recovers_mask_topology(self):
        rng = np.random.default_rng(0)
        mask = (rng.random((5, 4)) < 0.6).astype(float)
        mask[mask.sum(axis=1) == 0, 0] = 1.0
        mask[0, mask.sum(axis=0) == 0] = 1.0
        weights = mask * rng.normal(size=(5, 4))
        topo = from_weight_matrices([weights])
        np.testing.assert_array_equal(topo.submatrix(0).to_dense(), (weights != 0).astype(float))

    def test_tolerance_drops_small_weights(self):
        weights = np.array([[1.0, 1e-9], [1e-9, 1.0]])
        topo = from_weight_matrices([weights], tolerance=1e-6)
        assert topo.num_edges == 2

    def test_dead_neuron_rejected(self):
        weights = np.array([[1.0, 0.0], [1.0, 0.0]])
        with pytest.raises(TopologyError):
            from_weight_matrices([weights])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            from_weight_matrices([])

    def test_round_trip_with_trained_model(self):
        from repro.nn.builder import model_from_topology

        net = generate_radixnet([(2, 2), (2,)], [1, 2, 2, 1])
        model = model_from_topology(net, seed=0)
        recovered = from_weight_matrices(model.weight_matrices())
        assert recovered.same_topology(net)
