"""Backend parity and engine tests.

The contract of :mod:`repro.backends` is that every registered backend
computes the same six kernels; this suite pins that down by comparing
``reference``, ``scipy``, and ``vectorized`` on random matrices and on
actual RadiX-Net adjacency submatrices, and checks that the
:class:`~repro.challenge.inference.InferenceEngine` chunked/parallel
paths are bit-identical to single-shot inference.
"""

import numpy as np
import pytest

import repro.backends as backends
from repro.backends.base import SparseBackend
from repro.challenge.generator import challenge_input_batch, generate_challenge_network
from repro.challenge.inference import (
    InferenceEngine,
    engine_for,
    layer_activation_profile,
    sparse_dnn_inference,
)
from repro.core.radixnet import generate_radixnet
from repro.errors import ValidationError
from repro.nn.layers import CSRSparseLayer, MaskedSparseLayer
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spgemm
from repro.testing import ADMISSIBLE_SPECS, random_csr

ALL_BACKENDS = backends.available_backends()


def radixnet_submatrices():
    """Adjacency submatrices of a small RadiX-Net (real workload matrices)."""
    systems, widths = ADMISSIBLE_SPECS[0]
    return list(generate_radixnet(systems, widths).submatrices)


# --------------------------------------------------------------------------- #
# registry and selection
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_pure_numpy_backends_always_registered(self):
        assert {"reference", "vectorized"} <= set(ALL_BACKENDS)

    def test_scipy_backend_registered_iff_scipy_importable(self):
        from repro.backends.scipy_backend import scipy_available

        assert ("scipy" in ALL_BACKENDS) == scipy_available()

    def test_get_backend_unknown_raises(self):
        with pytest.raises(ValidationError, match="unknown sparse backend"):
            backends.get_backend("no-such-backend")

    def test_backends_satisfy_protocol(self):
        for name in ALL_BACKENDS:
            assert isinstance(backends.get_backend(name), SparseBackend)

    def test_use_is_sticky(self):
        original = backends.active_backend()
        try:
            backends.use("reference")
            assert backends.active_backend().name == "reference"
        finally:
            backends.use(original)

    def test_use_as_context_restores(self):
        original = backends.active_backend()
        with backends.use("vectorized") as chosen:
            assert chosen.name == "vectorized"
            assert backends.active_backend().name == "vectorized"
        assert backends.active_backend() is original

    def test_env_var_sets_initial_default(self, monkeypatch):
        monkeypatch.setenv(backends.DEFAULT_BACKEND_ENV, "vectorized")
        assert backends._initial_backend().name == "vectorized"
        monkeypatch.delenv(backends.DEFAULT_BACKEND_ENV)
        assert backends._initial_backend().name in {"scipy", "vectorized"}

    def test_numba_backend_registered_iff_numba_importable(self):
        from repro.backends.numba_backend import numba_available

        assert ("numba" in ALL_BACKENDS) == numba_available()
        if not numba_available():
            assert "numba" in backends.unavailable_backends()

    def test_unavailable_backend_error_names_the_reason(self):
        """A known-but-missing optional tier gets an install hint, not
        the generic unknown-name message."""
        from repro.backends.numba_backend import numba_available
        from repro.errors import UnknownBackendError

        if numba_available():
            pytest.skip("numba installed: the tier is registered, not missing")
        with pytest.raises(UnknownBackendError, match="not available.*numba"):
            backends.get_backend("numba")

    def test_unknown_backend_error_lists_available(self):
        from repro.errors import UnknownBackendError

        with pytest.raises(UnknownBackendError, match="available backends:"):
            backends.get_backend("no-such-backend")

    def test_unavailable_registry_is_truthful(self):
        # no name appears as both registered and unavailable
        assert not set(backends.unavailable_backends()) & set(ALL_BACKENDS)


# --------------------------------------------------------------------------- #
# kernel parity across backends
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", ALL_BACKENDS)
class TestKernelParity:
    def test_spgemm_random(self, backend):
        impl = backends.get_backend(backend)
        a, da = random_csr((7, 5), 0.4, 1)
        b, db = random_csr((5, 6), 0.4, 2)
        np.testing.assert_allclose(impl.spgemm(a, b).to_dense(), da @ db, atol=1e-12)

    def test_spgemm_radixnet_chain(self, backend):
        impl = backends.get_backend(backend)
        subs = radixnet_submatrices()
        result = subs[0]
        expected = subs[0].to_dense()
        for m in subs[1:]:
            result = impl.spgemm(result, m)
            expected = expected @ m.to_dense()
        np.testing.assert_allclose(result.to_dense(), expected)

    def test_spmm_random_and_radixnet(self, backend):
        impl = backends.get_backend(backend)
        a, da = random_csr((6, 8), 0.5, 3)
        x = np.random.default_rng(4).random((8, 5))
        np.testing.assert_allclose(impl.spmm(a, x), da @ x, atol=1e-12)
        w = radixnet_submatrices()[1]
        y = np.random.default_rng(5).random((w.shape[1], 3))
        np.testing.assert_allclose(impl.spmm(w, y), w.to_dense() @ y, atol=1e-12)

    def test_spmv_random(self, backend):
        impl = backends.get_backend(backend)
        a, da = random_csr((9, 4), 0.5, 6)
        v = np.random.default_rng(7).random(4)
        np.testing.assert_allclose(impl.spmv(a, v), da @ v, atol=1e-12)

    def test_sparse_layer_step_random(self, backend):
        impl = backends.get_backend(backend)
        y, dy = random_csr((6, 8), 0.4, 30)
        w, dw = random_csr((8, 8), 0.4, 31)
        bias = -np.random.default_rng(32).random(8)
        threshold = 0.75
        z = dy @ dw
        z[dy.sum(axis=1) > 0] += bias
        expected = np.clip(z, 0.0, threshold)
        got = impl.sparse_layer_step(y, w, bias, threshold)
        np.testing.assert_allclose(got.to_dense(), expected, atol=1e-12)
        # fused result is already filtered: only strictly positive,
        # clamped entries are stored
        if got.nnz:
            assert got.data.min() > 0.0
            assert got.data.max() <= threshold

    def test_kron_random_and_radixnet(self, backend):
        impl = backends.get_backend(backend)
        a, da = random_csr((3, 2), 0.6, 8)
        b, db = random_csr((2, 4), 0.6, 9)
        np.testing.assert_allclose(impl.kron(a, b).to_dense(), np.kron(da, db), atol=1e-12)
        ones = CSRMatrix.ones((2, 3))
        w = radixnet_submatrices()[0]
        np.testing.assert_allclose(
            impl.kron(ones, w).to_dense(), np.kron(np.ones((2, 3)), w.to_dense())
        )

    def test_transpose_random(self, backend):
        impl = backends.get_backend(backend)
        a, da = random_csr((5, 7), 0.4, 10)
        np.testing.assert_allclose(impl.transpose(a).to_dense(), da.T)

    def test_add_random(self, backend):
        impl = backends.get_backend(backend)
        a, da = random_csr((4, 6), 0.5, 11)
        b, db = random_csr((4, 6), 0.5, 12)
        np.testing.assert_allclose(impl.add(a, b).to_dense(), da + db, atol=1e-12)

    def test_empty_operands(self, backend):
        impl = backends.get_backend(backend)
        zero = CSRMatrix.zeros((3, 4))
        assert impl.spgemm(zero, CSRMatrix.zeros((4, 2))).nnz == 0
        assert impl.kron(zero, CSRMatrix.eye(2)).nnz == 0
        assert impl.transpose(zero).shape == (4, 3)
        np.testing.assert_allclose(impl.spmm(zero, np.ones((4, 2))), np.zeros((3, 2)))

    @pytest.mark.parametrize("size,density", [(16, 0.3), (64, 0.1), (128, 0.05)])
    def test_permute_columns_matches_old_dense_path(self, backend, size, density):
        """The sparse permutation is bit-for-bit the old ``to_dense()[:, p]``.

        The challenge generator used to round-trip every shuffled layer
        through a dense ``N x N`` buffer; the CSR column remap that
        replaced it must agree exactly (pattern and values) at small and
        medium sizes on every backend.
        """
        impl = backends.get_backend(backend)
        a, da = random_csr((size, size), density, size)
        permutation = np.random.default_rng(size + 1).permutation(size)
        old_path = CSRMatrix.from_dense(da[:, permutation])
        got = impl.permute_columns(a, permutation)
        assert got.same_pattern(old_path)
        assert np.array_equal(got.data, old_path.data)

    def test_permute_columns_round_trip(self, backend):
        from repro.core.permutation import invert_permutation
        from repro.sparse.ops import permute_columns

        a, _ = random_csr((12, 9), 0.4, 40)
        permutation = np.random.default_rng(41).permutation(9)
        back = permute_columns(
            permute_columns(a, permutation, backend=backend),
            invert_permutation(permutation),
            backend=backend,
        )
        assert back.same_pattern(a)
        assert np.array_equal(back.data, a.data)

    def test_permute_columns_retains_stored_zeros(self, backend):
        # like transpose, a pure reordering of stored entries
        impl = backends.get_backend(backend)
        m = CSRMatrix((2, 3), [0, 2, 3], [0, 2, 1], [1.0, 0.0, 2.0])
        got = impl.permute_columns(m, np.array([2, 0, 1]))
        assert got.nnz == 3
        np.testing.assert_allclose(got.to_dense(), m.to_dense()[:, [2, 0, 1]])

    def test_results_are_canonical_csr(self, backend):
        impl = backends.get_backend(backend)
        a, _ = random_csr((6, 6), 0.5, 13)
        b, _ = random_csr((6, 6), 0.5, 14)
        permutation = np.random.default_rng(15).permutation(6)
        for result in (
            impl.spgemm(a, b),
            impl.transpose(a),
            impl.add(a, b),
            impl.permute_columns(a, permutation),
        ):
            for i in range(result.shape[0]):
                cols, _ = result.row(i)
                assert np.all(np.diff(cols) > 0), "columns must be strictly increasing"


@pytest.mark.parametrize("backend", ALL_BACKENDS)
def test_transpose_retains_stored_zeros(backend):
    """Explicitly stored zeros survive transpose on every backend.

    (The cross-backend contract for kernel *results* is numerical
    equality; transpose is a pure reordering, so here even the
    structural pattern must agree.)
    """
    m = CSRMatrix((2, 2), [0, 2, 3], [0, 1, 1], [1.0, 0.0, 2.0])
    t = backends.get_backend(backend).transpose(m)
    assert t.nnz == 3
    np.testing.assert_allclose(t.to_dense(), m.to_dense().T)


def test_permute_columns_validates_permutation():
    from repro.errors import ShapeError
    from repro.sparse.ops import permute_columns

    a, _ = random_csr((4, 5), 0.5, 50)
    with pytest.raises(ShapeError, match="length 5"):
        permute_columns(a, np.arange(4))
    with pytest.raises(ValidationError, match="duplicate"):
        permute_columns(a, np.array([0, 1, 2, 3, 3]))
    with pytest.raises(ValidationError, match="in \\[0, cols\\)"):
        permute_columns(a, np.array([0, 1, 2, 3, 5]))


def test_permute_columns_generic_fallback_without_kernel():
    """Backends registered without a permute_columns kernel still dispatch."""
    from repro.sparse.ops import permute_columns

    class Minimal:
        name = "minimal"

        def __getattr__(self, attr):
            if attr == "permute_columns":
                raise AttributeError(attr)
            return getattr(backends.get_backend("reference"), attr)

    a, da = random_csr((6, 6), 0.5, 51)
    permutation = np.random.default_rng(52).permutation(6)
    got = permute_columns(a, permutation, backend=Minimal())
    expected = CSRMatrix.from_dense(da[:, permutation])
    assert got.same_pattern(expected)
    assert np.array_equal(got.data, expected.data)


def test_backends_agree_pairwise_on_spgemm():
    a, _ = random_csr((8, 8), 0.3, 20)
    b, _ = random_csr((8, 8), 0.3, 21)
    results = {name: spgemm(a, b, backend=name).to_dense() for name in ALL_BACKENDS}
    baseline = results["reference"]
    for name, got in results.items():
        np.testing.assert_allclose(got, baseline, atol=1e-12, err_msg=name)


# --------------------------------------------------------------------------- #
# numba backend algorithms (direct instance; runs as pure Python without numba)
# --------------------------------------------------------------------------- #
class TestNumbaBackendAlgorithms:
    """Bit-parity of the numba kernels against the reference oracle.

    The numba module's kernels fall back to plain Python when numba is
    not installed, so the *algorithms* are testable (against the same
    oracle, on the same inputs) in every environment -- only the
    compiled speed needs numba.  Accumulation happens in the same
    ``(k, q)`` order as the reference Gustavson row-merge, so sums must
    be bit-identical, not merely close.
    """

    @pytest.fixture()
    def impl(self):
        from repro.backends.numba_backend import NumbaBackend

        return NumbaBackend()

    @pytest.fixture()
    def oracle(self):
        return backends.get_backend("reference")

    def test_spgemm_bit_identical(self, impl, oracle):
        for seed in range(4):
            a, _ = random_csr((9, 7), 0.4, seed)
            b, _ = random_csr((7, 8), 0.4, seed + 50)
            got, want = impl.spgemm(a, b), oracle.spgemm(a, b)
            assert got.same_pattern(want)
            assert np.array_equal(got.data, want.data)

    def test_fused_layer_step_bit_identical(self, impl, oracle):
        for seed in range(4):
            y, _ = random_csr((6, 10), 0.4, seed + 100)
            y = CSRMatrix(y.shape, y.indptr, y.indices, np.abs(y.data))
            w, _ = random_csr((10, 9), 0.35, seed + 150)
            bias = -np.random.default_rng(seed).random(9) * 0.2
            got = impl.sparse_layer_step(y, w, bias, 1.5)
            want = oracle.sparse_layer_step(y, w, bias, 1.5)
            assert got.same_pattern(want)
            assert np.array_equal(got.data, want.data)

    def test_dense_kernels_bit_identical(self, impl, oracle):
        a, _ = random_csr((8, 6), 0.5, 200)
        dense = np.random.default_rng(201).standard_normal((6, 4))
        assert np.array_equal(impl.spmm(a, dense), oracle.spmm(a, dense))
        vector = np.random.default_rng(202).standard_normal(6)
        assert np.array_equal(impl.spmv(a, vector), oracle.spmv(a, vector))

    def test_structural_kernels_exact(self, impl, oracle):
        a, _ = random_csr((7, 9), 0.4, 210)
        b, _ = random_csr((7, 9), 0.4, 211)
        for got, want in (
            (impl.transpose(a), oracle.transpose(a)),
            (impl.add(a, b), oracle.add(a, b)),
        ):
            np.testing.assert_allclose(got.to_dense(), want.to_dense(), atol=1e-12)
        permutation = np.random.default_rng(212).permutation(9)
        got = impl.permute_columns(a, permutation)
        want = oracle.permute_columns(a, permutation)
        assert got.same_pattern(want)
        assert np.array_equal(got.data, want.data)

    def test_warmup_is_idempotent(self, impl):
        assert not impl.is_warm()
        impl.warmup()
        assert impl.is_warm()
        impl.warmup()  # second call is a no-op
        assert impl.is_warm()

    def test_empty_operands(self, impl):
        zero = CSRMatrix.zeros((3, 4))
        assert impl.spgemm(zero, CSRMatrix.zeros((4, 2))).nnz == 0
        assert impl.sparse_layer_step(
            zero, CSRMatrix.zeros((4, 2)), np.zeros(2), 1.0
        ).nnz == 0
        assert impl.transpose(zero).shape == (4, 3)
        assert impl.add(zero, CSRMatrix.zeros((3, 4))).nnz == 0
        assert impl.permute_columns(zero, np.array([1, 0, 3, 2])).nnz == 0


# --------------------------------------------------------------------------- #
# capability report and auto selection
# --------------------------------------------------------------------------- #
class TestSelection:
    @pytest.fixture(autouse=True)
    def fresh_cache(self):
        from repro.backends import selection

        selection._reset_cache()
        yield
        selection._reset_cache()

    def test_capabilities_cover_registered_and_missing(self):
        caps = backends.capabilities()
        for name in ALL_BACKENDS:
            assert caps[name]["available"] is True
        for name, reason in backends.unavailable_backends().items():
            assert caps[name]["available"] is False
            assert caps[name]["reason"] == reason

    def test_probe_measures_performance_tiers(self):
        timings = backends.probe_backends()
        assert timings, "at least one performance tier must be registered"
        assert all(t > 0 for t in timings.values())
        assert "reference" not in timings  # oracle, not a performance tier
        # default invocation caches
        assert backends.probe_backends() == timings

    def test_auto_backend_is_cached_and_fast_tier(self):
        from repro.backends import selection

        chosen = backends.auto_backend()
        assert chosen.name in selection.AUTO_CANDIDATES
        assert backends.auto_backend() is chosen

    def test_resolve_and_use_accept_auto(self):
        chosen = backends.resolve_backend("auto")
        assert chosen.name in backends.available_backends()
        original = backends.active_backend()
        with backends.use("auto") as active:
            assert backends.active_backend() is active
            assert active.name == chosen.name
        assert backends.active_backend() is original

    def test_env_auto_selects_initial_default(self, monkeypatch):
        monkeypatch.setenv(backends.DEFAULT_BACKEND_ENV, "auto")
        from repro.backends import selection

        assert backends._initial_backend().name in selection.AUTO_CANDIDATES

    def test_capability_report_formats(self):
        report = backends.format_capability_report()
        for name in ALL_BACKENDS:
            assert name in report
        for name in backends.unavailable_backends():
            assert name in report
            assert "missing" in report
        probed = backends.format_capability_report(include_probe=True)
        assert "auto would select:" in probed


# --------------------------------------------------------------------------- #
# inference engine
# --------------------------------------------------------------------------- #
class TestInferenceEngine:
    def network_and_batch(self, neurons=32, layers=6, batch=24, seed=0):
        network = generate_challenge_network(neurons, layers, connections=4, seed=seed)
        inputs = challenge_input_batch(neurons, batch, seed=seed + 1)
        return network, inputs

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_backends_agree_on_inference(self, backend):
        network, inputs = self.network_and_batch()
        expected = InferenceEngine(network, backend="reference").run(inputs)
        result = InferenceEngine(network, backend=backend).run(inputs)
        assert list(result.categories) == list(expected.categories)
        np.testing.assert_allclose(result.activations, expected.activations, atol=1e-9)
        assert result.backend == backend

    @pytest.mark.parametrize("chunk_size", [1, 5, 7, 24, 100])
    def test_chunked_matches_single_shot_bit_identical(self, chunk_size):
        network, inputs = self.network_and_batch()
        engine = InferenceEngine(network)
        single = engine.run(inputs)
        chunked = engine.run(inputs, chunk_size=chunk_size)
        assert (chunked.activations == single.activations).all()
        assert np.array_equal(chunked.categories, single.categories)
        assert chunked.edges_traversed == single.edges_traversed

    def test_chunked_matches_functional_api(self):
        network, inputs = self.network_and_batch()
        single = sparse_dnn_inference(network, inputs)
        chunked = sparse_dnn_inference(network, inputs, chunk_size=6)
        assert (chunked.activations == single.activations).all()
        assert np.array_equal(chunked.categories, single.categories)

    def test_parallel_workers_match_serial(self):
        network, inputs = self.network_and_batch()
        engine = InferenceEngine(network)
        serial = engine.run(inputs)
        parallel = engine.run(inputs, workers=2)
        assert (parallel.activations == serial.activations).all()
        assert np.array_equal(parallel.categories, serial.categories)
        assert parallel.edges_traversed == serial.edges_traversed

    def test_stream_is_chunk_local_with_offsets(self):
        network, inputs = self.network_and_batch(batch=10)
        engine = InferenceEngine(network)
        single = engine.run(inputs)
        merged = []
        for offset, chunk_result in engine.stream(inputs, chunk_size=3):
            assert chunk_result.activations.shape[0] <= 3
            merged.extend(chunk_result.categories + offset)
        assert merged == list(single.categories)

    def test_edges_traversed_accounting(self):
        network, inputs = self.network_and_batch(batch=24)
        nnz_total = sum(w.nnz for w in network.weights)
        result = sparse_dnn_inference(network, inputs)
        assert result.edges_traversed == nnz_total * 24
        chunked = sparse_dnn_inference(network, inputs, chunk_size=7)
        assert chunked.edges_traversed == nnz_total * 24

    def test_chunk_size_validation(self):
        network, inputs = self.network_and_batch()
        with pytest.raises(ValidationError):
            InferenceEngine(network).run(inputs, chunk_size=0)

    def test_engine_cache_reused_per_backend(self):
        network, _ = self.network_and_batch()
        assert engine_for(network) is engine_for(network)
        vec = engine_for(network, "vectorized")
        assert vec is engine_for(network, "vectorized")
        assert vec is not engine_for(network, "reference")

    def test_no_transpose_in_hot_loop(self):
        """Repeated inference and profiling never re-transpose the weights."""

        class CountingBackend:
            name = "counting"

            def __init__(self, inner):
                self.inner = inner
                self.transposes = 0

            def __getattr__(self, attr):
                return getattr(self.inner, attr)

            def transpose(self, a):
                self.transposes += 1
                return self.inner.transpose(a)

        network, inputs = self.network_and_batch()
        counting = CountingBackend(backends.active_backend())
        engine = InferenceEngine(network, backend=counting)
        assert counting.transposes == network.num_layers
        engine.run(inputs)
        engine.run(inputs, chunk_size=4)
        engine.layer_profile(inputs)
        assert counting.transposes == network.num_layers

    def test_layer_profile_matches_functional_wrapper(self):
        network, inputs = self.network_and_batch()
        assert layer_activation_profile(network, inputs) == pytest.approx(
            InferenceEngine(network).layer_profile(inputs)
        )


# --------------------------------------------------------------------------- #
# backend-aware layers
# --------------------------------------------------------------------------- #
class TestBackendAwareLayers:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_csr_layer_forward_parity(self, backend):
        weights, dense = random_csr((6, 4), 0.5, 30)
        layer = CSRSparseLayer(weights, np.arange(4, dtype=float), backend=backend)
        x = np.random.default_rng(31).random((3, 6))
        expected = np.maximum(x @ dense + np.arange(4), 0.0)
        np.testing.assert_allclose(layer.forward(x), expected, atol=1e-12)
        assert layer.backend.name == backend

    def test_masked_layer_deploys_to_csr(self):
        mask = (np.random.default_rng(32).random((5, 3)) < 0.6).astype(float)
        mask[0, 0] = 1.0  # keep at least one connection
        trained = MaskedSparseLayer(mask, activation="relu", seed=33)
        deployed = trained.to_csr_layer()
        x = np.random.default_rng(34).random((4, 5))
        np.testing.assert_allclose(
            deployed.forward(x), trained.forward(x, training=False), atol=1e-12
        )
        assert deployed.weights.nnz == trained.connection_count
