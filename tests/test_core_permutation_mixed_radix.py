"""Tests for repro.core.permutation and repro.core.mixed_radix_topology."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mixed_radix_topology import (
    decision_tree_edges,
    decision_tree_leaves,
    mixed_radix_submatrices,
    mixed_radix_submatrix,
    mixed_radix_topology,
)
from repro.core.permutation import (
    cyclic_permutation_matrix,
    paper_permutation_matrix,
    permutation_power,
)
from repro.numeral.mixed_radix import MixedRadixSystem
from repro.sparse.ops import matrix_power, sparse_add, sparse_transpose
from repro.topology.properties import degree_statistics, uniform_path_count

radix_lists = st.lists(st.integers(min_value=2, max_value=4), min_size=1, max_size=3)


class TestPermutationMatrices:
    def test_unit_shift_structure(self):
        c = cyclic_permutation_matrix(4).to_dense()
        expected = np.zeros((4, 4))
        for j in range(4):
            expected[j, (j + 1) % 4] = 1.0
        np.testing.assert_array_equal(c, expected)

    def test_paper_matrix_matches_equation_2(self):
        # first row (0, ..., 0, 1); identity block below
        p = paper_permutation_matrix(5).to_dense()
        assert p[0, 4] == 1.0
        np.testing.assert_array_equal(p[1:, :4], np.eye(4))
        np.testing.assert_array_equal(p[1:, 4], np.zeros(4))

    def test_paper_matrix_is_transpose_of_unit_shift(self):
        c = cyclic_permutation_matrix(6)
        p = paper_permutation_matrix(6)
        np.testing.assert_array_equal(p.to_dense(), sparse_transpose(c).to_dense())

    def test_every_row_and_column_has_one_entry(self):
        c = cyclic_permutation_matrix(7)
        np.testing.assert_array_equal(c.row_degrees(), np.ones(7))
        np.testing.assert_array_equal(c.col_degrees(), np.ones(7))

    def test_offset_matrix_equals_power(self):
        for k in range(6):
            closed_form = cyclic_permutation_matrix(6, offset=k).to_dense()
            powered = matrix_power(cyclic_permutation_matrix(6), k).to_dense()
            np.testing.assert_array_equal(closed_form, powered)

    def test_permutation_power_wraps_modulo_n(self):
        np.testing.assert_array_equal(
            permutation_power(5, 7).to_dense(), permutation_power(5, 2).to_dense()
        )

    def test_order_of_cyclic_group(self):
        # C^n == I
        n = 6
        np.testing.assert_array_equal(
            matrix_power(cyclic_permutation_matrix(n), n).to_dense(), np.eye(n)
        )

    def test_rejects_non_positive_size(self):
        with pytest.raises(Exception):
            cyclic_permutation_matrix(0)


class TestMixedRadixSubmatrix:
    def test_equation_1_sum_of_permutation_powers(self):
        # W_i = sum_{n=0}^{N_i-1} C^{n * nu_i}
        system = MixedRadixSystem((3, 4))
        n_prime = system.capacity
        for level in range(2):
            radix = system[level]
            place_value = system.place_value(level)
            expected = cyclic_permutation_matrix(n_prime, 0)
            total = None
            for n in range(radix):
                term = cyclic_permutation_matrix(n_prime, n * place_value)
                total = term if total is None else sparse_add(total, term)
            built = mixed_radix_submatrix(system, level)
            np.testing.assert_array_equal(built.to_dense(), total.to_dense())

    def test_textual_edge_rule(self):
        # node j connects to (j + n * nu) mod N'
        system = MixedRadixSystem((2, 3))
        w0 = mixed_radix_submatrix(system, 0).to_dense()
        n_prime = 6
        for j in range(n_prime):
            targets = {(j + n) % n_prime for n in range(2)}
            assert set(np.flatnonzero(w0[j])) == targets

    def test_row_and_column_degrees_equal_radix(self):
        system = MixedRadixSystem((2, 3, 4))
        for level in range(3):
            w = mixed_radix_submatrix(system, level)
            np.testing.assert_array_equal(w.row_degrees(), np.full(24, system[level]))
            np.testing.assert_array_equal(w.col_degrees(), np.full(24, system[level]))

    def test_modulus_override_gives_larger_matrix(self):
        system = MixedRadixSystem((2,))
        w = mixed_radix_submatrix(system, 0, modulus=8)
        assert w.shape == (8, 8)
        np.testing.assert_array_equal(w.row_degrees(), np.full(8, 2))

    def test_submatrices_list_length(self):
        assert len(mixed_radix_submatrices((2, 2, 2))) == 3


class TestMixedRadixTopology:
    def test_figure_1_topology(self):
        # N = (2, 2, 2): 4 layers of 8 nodes, out-degree 2 everywhere
        net = mixed_radix_topology((2, 2, 2))
        assert net.layer_sizes == (8, 8, 8, 8)
        for stat in degree_statistics(net):
            assert stat.out_regular and stat.in_regular
            assert stat.out_degree_min == 2

    def test_lemma_1_exactly_one_path(self):
        for radices in [(2, 2), (3, 4), (2, 3, 2), (5,)]:
            net = mixed_radix_topology(radices)
            assert uniform_path_count(net) == 1

    def test_accepts_system_object(self):
        net = mixed_radix_topology(MixedRadixSystem((2, 5)))
        assert net.layer_sizes == (10, 10, 10)

    def test_name_default(self):
        assert "2x3" in mixed_radix_topology((2, 3)).name

    def test_edge_count_formula(self):
        # each of L layers has N' * N_i edges
        radices = (2, 3, 4)
        net = mixed_radix_topology(radices)
        n_prime = 24
        assert net.num_edges == n_prime * sum(radices)

    @given(radix_lists)
    @settings(max_examples=30, deadline=None)
    def test_symmetry_property(self, radices):
        net = mixed_radix_topology(tuple(radices))
        assert uniform_path_count(net) == 1

    @given(radix_lists)
    @settings(max_examples=30, deadline=None)
    def test_density_property(self, radices):
        # density = mean out-degree / N' per the paper's eq. (4) with D = 1
        net = mixed_radix_topology(tuple(radices))
        n_prime = int(np.prod(radices))
        expected = float(np.mean(radices)) / n_prime
        assert net.density() == pytest.approx(expected)


class TestDecisionTrees:
    def test_tree_edges_count(self):
        # a full tree over (2, 2, 2) has 2 + 4 + 8 = 14 edges
        edges = decision_tree_edges((2, 2, 2), root=0)
        assert len(edges) == 14

    def test_leaves_cover_all_nodes_exactly_once(self):
        for root in range(8):
            leaves = decision_tree_leaves((2, 2, 2), root)
            assert sorted(leaves) == list(range(8))

    def test_leaves_shifted_by_root(self):
        # the leaf multiset is root-independent (mod N'), confirming overlap
        base = sorted(decision_tree_leaves((3, 2), 0))
        shifted = sorted(decision_tree_leaves((3, 2), 4))
        assert base == shifted == list(range(6))

    def test_tree_edges_are_real_topology_edges(self):
        radices = (2, 3)
        net = mixed_radix_topology(radices)
        for level, source, target in decision_tree_edges(radices, root=1):
            assert net.submatrix(level).to_dense()[source, target] == 1.0
