"""Tests for the sparse-activation inference pipeline and streaming I/O.

Covers the :class:`ActivationPolicy` crossover machinery, dense-vs-sparse
activation parity across every registered backend at several input
densities, the fused ``sparse_layer_step`` backend kernel, the binary
``.npz`` sidecar cache (freshness and invalidation), the generator-based
layer loader + :func:`streaming_inference`, and a 1024-neuron / 120-layer
official-scale smoke (marked ``slow``).
"""

import os
import time

import numpy as np
import pytest

import repro.backends as backends
from repro.challenge.generator import challenge_input_batch, generate_challenge_network
from repro.challenge.inference import (
    ActivationPolicy,
    DenseActivations,
    InferenceEngine,
    SparseActivations,
    sparse_dnn_inference,
    streaming_inference,
)
from repro.challenge.io import (
    cache_is_fresh,
    cache_path,
    iter_challenge_layers,
    load_challenge_network,
    save_challenge_network,
    write_cache,
)
from repro.challenge.verify import reference_categories, verify_categories
from repro.errors import SerializationError, ShapeError, ValidationError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import sparse_layer_step

ALL_BACKENDS = backends.available_backends()


# --------------------------------------------------------------------------- #
# activation policy
# --------------------------------------------------------------------------- #
class TestActivationPolicy:
    def test_resolve_forms(self):
        assert ActivationPolicy.resolve(None).mode == "auto"
        assert ActivationPolicy.resolve("sparse").mode == "sparse"
        policy = ActivationPolicy(mode="dense")
        assert ActivationPolicy.resolve(policy) is policy

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValidationError, match="activation mode"):
            ActivationPolicy(mode="csr")

    def test_invalid_crossover_rejected(self):
        with pytest.raises(ValidationError, match="crossover_density"):
            ActivationPolicy(crossover_density=0.0)
        with pytest.raises(ValidationError, match="crossover_density"):
            ActivationPolicy(crossover_density=1.5)

    def test_forced_modes_ignore_density(self):
        assert ActivationPolicy(mode="dense").pick(density=0.0, elements=1 << 30) == "dense"
        assert ActivationPolicy(mode="sparse").pick(density=1.0, elements=1) == "sparse"

    def test_auto_crossover(self):
        policy = ActivationPolicy(crossover_density=0.2, min_sparse_elements=100)
        assert policy.pick(density=0.1, elements=1000) == "sparse"
        assert policy.pick(density=0.3, elements=1000) == "dense"
        # below the size floor, density no longer matters
        assert policy.pick(density=0.01, elements=64) == "dense"


class TestActivationBatches:
    def test_dense_sparse_round_trip(self):
        array = np.array([[0.0, 2.0, 0.0], [0.0, 0.0, 0.0], [1.0, 0.0, 3.0]])
        dense = DenseActivations(array)
        sparse = dense.to_sparse()
        assert isinstance(sparse, SparseActivations)
        assert sparse.nnz() == dense.nnz() == 3
        np.testing.assert_array_equal(sparse.to_dense().array, array)
        np.testing.assert_array_equal(sparse.categories(), dense.categories())

    def test_density_and_elements(self):
        batch = DenseActivations(np.eye(4))
        assert batch.elements == 16
        assert batch.density() == pytest.approx(0.25)
        assert batch.to_sparse().density() == pytest.approx(0.25)


# --------------------------------------------------------------------------- #
# fused backend kernel
# --------------------------------------------------------------------------- #
class TestSparseLayerStep:
    def _random_case(self, seed, density):
        rng = np.random.default_rng(seed)
        y_dense = np.where(rng.random((6, 20)) < density, rng.random((6, 20)) * 3, 0.0)
        y_dense[1] = 0.0  # a fully-inactive sample
        w_dense = np.where(rng.random((20, 20)) < 0.25, rng.random((20, 20)), 0.0)
        bias = -rng.random(20) * 0.5
        threshold = 1.25
        z = y_dense @ w_dense
        z[y_dense.sum(axis=1) > 0] += bias
        expected = np.clip(z, 0.0, threshold)
        return y_dense, w_dense, bias, threshold, expected

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("density", [0.05, 0.3, 0.7])
    def test_matches_dense_recurrence(self, backend, density):
        y_dense, w_dense, bias, threshold, expected = self._random_case(3, density)
        out = sparse_layer_step(
            CSRMatrix.from_dense(y_dense),
            CSRMatrix.from_dense(w_dense),
            bias,
            threshold,
            backend=backend,
        )
        np.testing.assert_allclose(out.to_dense(), expected, atol=1e-12)
        # result stays canonical: strictly positive, clamped, sorted rows
        assert out.data.min() > 0.0
        assert out.data.max() <= threshold

    def test_generic_fallback_without_fused_kernel(self):
        class BareBackend:
            name = "bare"
            spgemm = staticmethod(backends.get_backend("vectorized").spgemm)

        y_dense, w_dense, bias, threshold, expected = self._random_case(4, 0.4)
        out = sparse_layer_step(
            CSRMatrix.from_dense(y_dense),
            CSRMatrix.from_dense(w_dense),
            bias,
            threshold,
            backend=BareBackend(),
        )
        np.testing.assert_allclose(out.to_dense(), expected, atol=1e-12)

    def test_positive_bias_rejected(self):
        y = CSRMatrix.eye(4)
        with pytest.raises(ValidationError, match="non-positive bias"):
            sparse_layer_step(y, y, np.full(4, 0.5), 2.0)

    def test_shape_validation(self):
        y = CSRMatrix.eye(4)
        w = CSRMatrix.eye(5)
        with pytest.raises(ShapeError):
            sparse_layer_step(y, w, np.zeros(5), 2.0)
        with pytest.raises(ShapeError, match="bias"):
            sparse_layer_step(y, y, np.zeros(3), 2.0)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_empty_activations(self, backend):
        y = CSRMatrix.zeros((3, 8))
        w = CSRMatrix.eye(8)
        out = sparse_layer_step(y, w, np.full(8, -0.1), 4.0, backend=backend)
        assert out.nnz == 0
        assert out.shape == (3, 8)


# --------------------------------------------------------------------------- #
# dense-vs-sparse pipeline parity
# --------------------------------------------------------------------------- #
class TestPolicyParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("active_fraction", [0.05, 0.3, 0.6])
    def test_dense_sparse_parity_all_backends(self, backend, active_fraction):
        network = generate_challenge_network(32, 8, connections=4, seed=11)
        batch = challenge_input_batch(32, 10, active_fraction=active_fraction, seed=12)
        engine = InferenceEngine(network, backend=backend)
        dense = engine.run(batch, activations="dense")
        sparse = engine.run(batch, activations="sparse")
        np.testing.assert_array_equal(dense.categories, sparse.categories)
        np.testing.assert_allclose(dense.activations, sparse.activations, atol=1e-9)
        assert dense.layer_modes == ["dense"] * 8
        assert sparse.layer_modes == ["sparse"] * 8
        np.testing.assert_array_equal(
            sparse.categories, reference_categories(network, batch)
        )

    def test_auto_policy_matches_forced_paths(self):
        network = generate_challenge_network(32, 6, connections=4, seed=13)
        batch = challenge_input_batch(32, 8, active_fraction=0.1, seed=14)
        # crossover high enough that auto actually flips to sparse layers
        policy = ActivationPolicy(mode="auto", crossover_density=0.9, min_sparse_elements=0)
        auto = sparse_dnn_inference(network, batch, activations=policy)
        dense = sparse_dnn_inference(network, batch, activations="dense")
        assert "sparse" in auto.layer_modes
        np.testing.assert_array_equal(auto.categories, dense.categories)
        np.testing.assert_allclose(auto.activations, dense.activations, atol=1e-9)

    def test_auto_stays_dense_below_size_floor(self):
        network = generate_challenge_network(16, 3, connections=4, seed=15)
        batch = challenge_input_batch(16, 4, seed=16)
        result = sparse_dnn_inference(
            network, batch,
            activations=ActivationPolicy(min_sparse_elements=1 << 20),
        )
        assert result.layer_modes == ["dense"] * 3

    def test_chunked_and_parallel_sparse_match_single_shot(self):
        network = generate_challenge_network(32, 6, connections=4, seed=17)
        batch = challenge_input_batch(32, 24, seed=18)
        engine = InferenceEngine(network)
        single = engine.run(batch, activations="sparse", record_timing=False)
        chunked = engine.run(batch, chunk_size=5, activations="sparse")
        parallel = engine.run(batch, chunk_size=6, workers=2, activations="sparse")
        np.testing.assert_array_equal(single.categories, chunked.categories)
        np.testing.assert_array_equal(single.categories, parallel.categories)
        np.testing.assert_allclose(single.activations, chunked.activations, atol=1e-9)
        np.testing.assert_allclose(single.activations, parallel.activations, atol=1e-9)
        assert chunked.peak_activation_nnz <= single.peak_activation_nnz

    def test_sparse_policy_rejects_positive_bias(self):
        network = generate_challenge_network(8, 2, connections=2, weight_value=-1.0, seed=19)
        batch = challenge_input_batch(8, 4, seed=20)
        assert any(np.any(b > 0) for b in network.biases)  # precondition
        engine = InferenceEngine(network)
        with pytest.raises(ValidationError, match="non-positive biases"):
            engine.run(batch, activations="sparse")
        # auto silently keeps the dense path instead
        result = engine.run(batch, activations=ActivationPolicy(
            mode="auto", crossover_density=1.0, min_sparse_elements=0))
        assert result.layer_modes == ["dense"] * 2

    def test_result_metadata_recorded(self):
        network = generate_challenge_network(16, 4, connections=4, seed=21)
        batch = challenge_input_batch(16, 6, seed=22)
        result = sparse_dnn_inference(network, batch, activations="sparse")
        assert result.activation_policy == "sparse"
        assert len(result.layer_density) == 4
        assert all(0.0 <= d <= 1.0 for d in result.layer_density)
        assert result.peak_activation_nnz >= int(batch.sum())

    def test_zero_batch_runs_dense(self):
        network = generate_challenge_network(16, 3, connections=4, seed=23)
        result = sparse_dnn_inference(
            network, np.empty((0, 16)), activations="sparse"
        )
        assert result.activations.shape == (0, 16)
        assert result.categories.size == 0

    def test_verify_categories_accepts_policy(self):
        network = generate_challenge_network(16, 4, connections=4, seed=24)
        batch = challenge_input_batch(16, 6, seed=25)
        for name in ALL_BACKENDS:
            assert verify_categories(network, batch, backend=name, activations="sparse")


# --------------------------------------------------------------------------- #
# streaming inference over lazily loaded layers
# --------------------------------------------------------------------------- #
class TestStreamingInference:
    def test_matches_engine_from_directory(self, tmp_path):
        network = generate_challenge_network(32, 6, connections=4, seed=26)
        batch = challenge_input_batch(32, 9, seed=27)
        save_challenge_network(network, tmp_path)
        expected = sparse_dnn_inference(network, batch, record_timing=False)
        for policy in ("dense", "sparse", "auto"):
            result = streaming_inference(
                iter_challenge_layers(tmp_path, 32),
                batch,
                threshold=network.threshold,
                activations=policy,
            )
            np.testing.assert_array_equal(result.categories, expected.categories)
            assert result.edges_traversed == expected.edges_traversed

    def test_layers_consumed_lazily(self):
        network = generate_challenge_network(16, 4, connections=4, seed=28)
        batch = challenge_input_batch(16, 5, seed=29)
        consumed = []

        def layer_gen():
            for i, (w, b) in enumerate(zip(network.weights, network.biases)):
                consumed.append(i)
                yield w, b

        gen = layer_gen()
        result = streaming_inference(gen, batch, threshold=network.threshold)
        assert consumed == [0, 1, 2, 3]
        np.testing.assert_array_equal(
            result.categories, sparse_dnn_inference(network, batch).categories
        )

    def test_shape_mismatch_raises(self):
        network = generate_challenge_network(16, 2, connections=4, seed=30)
        with pytest.raises(ShapeError):
            streaming_inference(
                zip(network.weights, network.biases),
                np.ones((3, 8)),
                threshold=network.threshold,
            )


# --------------------------------------------------------------------------- #
# binary sidecar cache
# --------------------------------------------------------------------------- #
class TestSidecarCache:
    def test_save_writes_fresh_sidecar(self, tmp_path):
        network = generate_challenge_network(16, 3, connections=4, seed=31)
        save_challenge_network(network, tmp_path)
        assert cache_path(tmp_path, 16).exists()
        assert cache_is_fresh(tmp_path, 16, 3)

    def test_cache_consulted_when_fresh(self, tmp_path):
        network = generate_challenge_network(16, 3, connections=4, seed=32)
        save_challenge_network(network, tmp_path)
        # clobber a layer TSV but keep its mtime older than the sidecar:
        # the cached weights must win
        layer = tmp_path / "neuron16-l1.tsv"
        stat = layer.stat()
        layer.write_text("1\t1\t123.0\n", encoding="utf-8")
        os.utime(layer, (stat.st_atime - 100, stat.st_mtime - 100))
        loaded = load_challenge_network(tmp_path, 16)
        assert loaded.weights[0].allclose(network.weights[0])

    def test_stale_sidecar_invalidated_by_newer_tsv(self, tmp_path):
        network = generate_challenge_network(16, 3, connections=4, seed=33)
        save_challenge_network(network, tmp_path)
        # edit a layer TSV and age the sidecar behind it: the edited TSV
        # must win, and the sidecar must be rebuilt from it
        layer = tmp_path / "neuron16-l1.tsv"
        layer.write_text("1\t1\t123.0\n", encoding="utf-8")
        sidecar = cache_path(tmp_path, 16)
        past = time.time() - 100
        os.utime(sidecar, (past, past))
        assert not cache_is_fresh(tmp_path, 16, 3)
        loaded = load_challenge_network(tmp_path, 16)
        assert loaded.weights[0].nnz == 1
        assert loaded.weights[0].data[0] == 123.0
        # the sidecar was rebuilt from the edited TSVs and is fresh again
        assert cache_is_fresh(tmp_path, 16, 3)
        reloaded = load_challenge_network(tmp_path, 16)
        assert reloaded.weights[0].allclose(loaded.weights[0])

    def test_no_cache_forces_tsv_parse(self, tmp_path):
        network = generate_challenge_network(16, 2, connections=4, seed=34)
        save_challenge_network(network, tmp_path, write_sidecar=False)
        assert not cache_path(tmp_path, 16).exists()
        loaded = load_challenge_network(tmp_path, 16, use_cache=False)
        assert not cache_path(tmp_path, 16).exists()
        for a, b in zip(loaded.weights, network.weights):
            assert a.allclose(b)

    def test_load_without_sidecar_writes_one(self, tmp_path):
        network = generate_challenge_network(16, 2, connections=4, seed=35)
        save_challenge_network(network, tmp_path, write_sidecar=False)
        load_challenge_network(tmp_path, 16)
        assert cache_path(tmp_path, 16).exists()

    def test_corrupt_sidecar_falls_back_to_tsv(self, tmp_path):
        network = generate_challenge_network(16, 2, connections=4, seed=36)
        save_challenge_network(network, tmp_path)
        cache_path(tmp_path, 16).write_bytes(b"not a zip archive")
        loaded = load_challenge_network(tmp_path, 16)
        for a, b in zip(loaded.weights, network.weights):
            assert a.allclose(b)

    def test_write_cache_round_trip_values(self, tmp_path):
        network = generate_challenge_network(16, 3, connections=4, seed=37)
        save_challenge_network(network, tmp_path, write_sidecar=False)
        write_cache(network, tmp_path)
        loaded = load_challenge_network(tmp_path, 16)
        for a, b in zip(loaded.weights, network.weights):
            assert a.allclose(b)
        batch = challenge_input_batch(16, 5, seed=38)
        np.testing.assert_array_equal(
            sparse_dnn_inference(loaded, batch).categories,
            sparse_dnn_inference(network, batch).categories,
        )

    def test_empty_layer_round_trips(self, tmp_path):
        network = generate_challenge_network(8, 2, connections=2, seed=39)
        save_challenge_network(network, tmp_path)
        layer = tmp_path / "neuron8-l2.tsv"
        layer.write_text("", encoding="utf-8")
        future = time.time() + 10
        os.utime(layer, (future, future))
        loaded = load_challenge_network(tmp_path, 8)
        assert loaded.weights[1].nnz == 0

    def test_malformed_layer_raises(self, tmp_path):
        network = generate_challenge_network(8, 2, connections=2, seed=40)
        save_challenge_network(network, tmp_path, write_sidecar=False)
        (tmp_path / "neuron8-l1.tsv").write_text("1\tnot-a-number\t0.5\n", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_challenge_network(tmp_path, 8, use_cache=False)

    def test_out_of_range_index_raises(self, tmp_path):
        network = generate_challenge_network(8, 2, connections=2, seed=41)
        save_challenge_network(network, tmp_path, write_sidecar=False)
        (tmp_path / "neuron8-l1.tsv").write_text("9\t1\t0.5\n", encoding="utf-8")
        with pytest.raises(SerializationError, match="out of range"):
            load_challenge_network(tmp_path, 8, use_cache=False)

    def test_non_integer_index_raises(self, tmp_path):
        network = generate_challenge_network(8, 2, connections=2, seed=42)
        save_challenge_network(network, tmp_path, write_sidecar=False)
        (tmp_path / "neuron8-l1.tsv").write_text("1.7\t2\t0.5\n", encoding="utf-8")
        with pytest.raises(SerializationError, match="must be integers"):
            load_challenge_network(tmp_path, 8, use_cache=False)

    def test_cache_rewrite_leaves_live_memmaps_intact(self, tmp_path):
        network = generate_challenge_network(16, 2, connections=4, seed=44)
        save_challenge_network(network, tmp_path)
        first = load_challenge_network(tmp_path, 16)  # weights memmap the sidecar
        # edit a TSV and trigger a cache rebuild via a second load
        layer = tmp_path / "neuron16-l1.tsv"
        layer.write_text("1\t1\t7.0\n", encoding="utf-8")
        sidecar = cache_path(tmp_path, 16)
        past = time.time() - 100
        os.utime(sidecar, (past, past))
        second = load_challenge_network(tmp_path, 16)
        assert second.weights[0].nnz == 1
        # the first network's (mapped) weights still read the old bytes
        assert first.weights[0].allclose(network.weights[0])

    def test_unwritable_sidecar_is_nonfatal(self, tmp_path, monkeypatch):
        # e.g. a network directory on a read-only mount: the cold load
        # must still succeed even though the opportunistic cache write
        # cannot (chmod tricks don't work under root, so fail it directly)
        import repro.challenge.io as challenge_io

        network = generate_challenge_network(16, 2, connections=4, seed=45)
        save_challenge_network(network, tmp_path, write_sidecar=False)

        def denied(*args, **kwargs):
            raise PermissionError("read-only directory")

        monkeypatch.setattr(challenge_io, "write_cache", denied)
        loaded = load_challenge_network(tmp_path, 16)
        for a, b in zip(loaded.weights, network.weights):
            assert a.allclose(b)

    def test_duplicate_entries_coalesce_by_summation(self, tmp_path):
        network = generate_challenge_network(8, 2, connections=2, seed=43)
        save_challenge_network(network, tmp_path, write_sidecar=False)
        (tmp_path / "neuron8-l1.tsv").write_text(
            "1\t1\t2.0\n3\t4\t1.0\n1\t1\t3.0\n", encoding="utf-8"
        )
        loaded = load_challenge_network(tmp_path, 8, use_cache=False)
        weight = loaded.weights[0]
        assert weight.nnz == 2  # canonical CSR: duplicates summed
        dense = weight.to_dense()
        assert dense[0, 0] == 5.0
        assert dense[2, 3] == 1.0


# --------------------------------------------------------------------------- #
# official-scale smoke
# --------------------------------------------------------------------------- #
@pytest.mark.slow
class TestOfficialScaleSmoke:
    def test_1024_neuron_120_layer_sparse_policy(self):
        """Smallest official Graph Challenge size: 1024 neurons, 120 layers.

        The sparse activation policy must complete, agree with the dense
        path on categories, and hold peak activation storage below the
        dense buffer's ``batch * neurons`` elements.  The input fraction
        is chosen so the instance stays *alive* through all 120 layers
        without the early-layer transient saturating to full density
        (the thresholded steady state settles far sparser -- the regime
        the sparse policy exists for).
        """
        network = generate_challenge_network(1024, 120, connections=32, seed=42)
        batch = challenge_input_batch(1024, 16, active_fraction=0.28, seed=43)
        engine = InferenceEngine(network)
        sparse = engine.run(batch, activations="sparse", record_timing=False)
        dense = engine.run(batch, activations="dense", record_timing=False)
        np.testing.assert_array_equal(sparse.categories, dense.categories)
        assert sparse.categories.size > 0  # the instance is alive, not dead
        assert sparse.layer_modes == ["sparse"] * 120
        assert sparse.peak_activation_nnz < batch.size
        # past the transient, thresholding keeps the batch genuinely sparse
        assert sparse.layer_density[-1] < 0.25
