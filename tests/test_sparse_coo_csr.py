"""Tests for repro.sparse.coo and repro.sparse.csr containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ShapeError, ValidationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix

small_dense = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(1, 6), st.integers(1, 6)),
    elements=st.sampled_from([0.0, 0.0, 1.0, 2.0, -1.5]),
)


class TestCOOMatrix:
    def test_basic_construction(self):
        coo = COOMatrix((2, 3), [0, 1], [2, 0], [1.0, 2.0])
        assert coo.shape == (2, 3)
        assert coo.nnz == 2

    def test_default_values_are_ones(self):
        coo = COOMatrix((2, 2), [0, 1], [1, 0])
        np.testing.assert_array_equal(coo.values, [1.0, 1.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ShapeError):
            COOMatrix((2, 2), [0, 1], [0])

    def test_rejects_out_of_bounds_row(self):
        with pytest.raises(ValidationError):
            COOMatrix((2, 2), [2], [0])

    def test_rejects_out_of_bounds_col(self):
        with pytest.raises(ValidationError):
            COOMatrix((2, 2), [0], [5])

    def test_rejects_non_positive_shape(self):
        with pytest.raises(ShapeError):
            COOMatrix((0, 2), [], [])

    def test_to_dense(self):
        coo = COOMatrix((2, 2), [0, 1], [1, 0], [3.0, 4.0])
        np.testing.assert_array_equal(coo.to_dense(), [[0, 3], [4, 0]])

    def test_duplicates_summed_in_dense(self):
        coo = COOMatrix((1, 2), [0, 0], [1, 1], [2.0, 3.0])
        np.testing.assert_array_equal(coo.to_dense(), [[0, 5]])

    def test_coalesce_merges_duplicates(self):
        coo = COOMatrix((2, 2), [0, 0, 1], [1, 1, 0], [1.0, 2.0, 5.0]).coalesce()
        assert coo.nnz == 2
        np.testing.assert_array_equal(coo.to_dense(), [[0, 3], [5, 0]])

    def test_transpose(self):
        coo = COOMatrix((2, 3), [0, 1], [2, 0], [1.0, 2.0])
        transposed = coo.transpose()
        assert transposed.shape == (3, 2)
        np.testing.assert_array_equal(transposed.to_dense(), coo.to_dense().T)

    def test_equality(self):
        a = COOMatrix((2, 2), [0], [1], [2.0])
        b = COOMatrix((2, 2), [0], [1], [2.0])
        c = COOMatrix((2, 2), [1], [0], [2.0])
        assert a == b
        assert a != c

    def test_to_csr_round_trip(self):
        coo = COOMatrix((3, 3), [0, 2, 1], [2, 0, 1], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(coo.to_csr().to_dense(), coo.to_dense())


class TestCSRMatrix:
    def test_from_dense_round_trip(self):
        dense = np.array([[0.0, 1.0, 0.0], [2.0, 0.0, 3.0]])
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.to_dense(), dense)
        assert csr.nnz == 3

    def test_from_dense_tolerance(self):
        dense = np.array([[1e-6, 1.0]])
        assert CSRMatrix.from_dense(dense, tolerance=1e-3).nnz == 1

    def test_eye(self):
        eye = CSRMatrix.eye(4)
        np.testing.assert_array_equal(eye.to_dense(), np.eye(4))

    def test_zeros_and_ones(self):
        assert CSRMatrix.zeros((3, 2)).nnz == 0
        ones = CSRMatrix.ones((2, 3))
        assert ones.nnz == 6
        np.testing.assert_array_equal(ones.to_dense(), np.ones((2, 3)))

    def test_invalid_indptr_rejected(self):
        with pytest.raises(ValidationError):
            CSRMatrix((2, 2), [0, 1, 0], [0], [1.0])

    def test_indptr_wrong_length_rejected(self):
        with pytest.raises(ShapeError):
            CSRMatrix((2, 2), [0, 1], [0], [1.0])

    def test_column_out_of_bounds_rejected(self):
        with pytest.raises(ValidationError):
            CSRMatrix((2, 2), [0, 1, 1], [5], [1.0])

    def test_row_access(self):
        csr = CSRMatrix.from_dense(np.array([[0.0, 2.0], [3.0, 0.0]]))
        cols, vals = csr.row(0)
        np.testing.assert_array_equal(cols, [1])
        np.testing.assert_array_equal(vals, [2.0])

    def test_row_out_of_bounds(self):
        with pytest.raises(ValidationError):
            CSRMatrix.eye(2).row(2)

    def test_degrees(self):
        csr = CSRMatrix.from_dense(np.array([[1.0, 1.0], [1.0, 0.0]]))
        np.testing.assert_array_equal(csr.row_degrees(), [2, 1])
        np.testing.assert_array_equal(csr.col_degrees(), [2, 1])

    def test_density(self):
        csr = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 1.0]]))
        assert csr.density == 0.5

    def test_is_binary(self):
        assert CSRMatrix.eye(3).is_binary()
        assert not CSRMatrix.from_dense(np.array([[2.0]])).is_binary()

    def test_with_data_and_scale(self):
        csr = CSRMatrix.eye(2)
        doubled = csr.scale(2.0)
        np.testing.assert_array_equal(doubled.to_dense(), 2 * np.eye(2))
        assert csr.with_data(np.array([5.0, 5.0])).to_dense()[0, 0] == 5.0

    def test_astype_binary(self):
        csr = CSRMatrix.from_dense(np.array([[0.0, 7.0], [3.0, 0.0]]))
        binary = csr.astype_binary()
        assert binary.is_binary()
        assert binary.same_pattern(csr)

    def test_same_pattern_and_allclose(self):
        a = CSRMatrix.from_dense(np.array([[1.0, 0.0], [0.0, 2.0]]))
        b = CSRMatrix.from_dense(np.array([[3.0, 0.0], [0.0, 4.0]]))
        assert a.same_pattern(b)
        assert not a.allclose(b)
        assert a.allclose(a)

    def test_to_coo_round_trip(self):
        dense = np.array([[0.0, 1.0], [2.0, 0.0]])
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_array_equal(csr.to_coo().to_dense(), dense)

    @given(small_dense)
    @settings(max_examples=80, deadline=None)
    def test_dense_round_trip_property(self, dense):
        csr = CSRMatrix.from_dense(dense)
        np.testing.assert_allclose(csr.to_dense(), dense)
        assert csr.nnz == int(np.count_nonzero(dense))

    @given(small_dense)
    @settings(max_examples=50, deadline=None)
    def test_coo_csr_consistency(self, dense):
        csr = CSRMatrix.from_dense(dense)
        coo = csr.to_coo()
        np.testing.assert_allclose(coo.to_csr().to_dense(), dense)
