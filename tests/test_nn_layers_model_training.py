"""Tests for repro.nn layers, model, trainer, and the topology builder.

Includes numerical gradient checks of the full backpropagation path and the
key sparsity invariant: masked connections stay exactly zero through
training.
"""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.core.radixnet import generate_radixnet
from repro.nn.builder import dense_model, input_adapter_matrix, model_from_topology
from repro.nn.data import one_hot
from repro.nn.layers import CSRSparseLayer, DenseLayer, MaskedSparseLayer
from repro.nn.losses import CrossEntropyLoss, MeanSquaredErrorLoss
from repro.nn.model import FeedforwardNetwork
from repro.nn.optimizers import SGD, Adam
from repro.nn.schedulers import StepDecaySchedule
from repro.nn.train import Trainer
from repro.sparse.csr import CSRMatrix
from repro.topology.random_graphs import erdos_renyi_fnnt


class TestDenseLayer:
    def test_forward_shape(self):
        layer = DenseLayer(4, 3, seed=0)
        out = layer.forward(np.zeros((5, 4)))
        assert out.shape == (5, 3)

    def test_forward_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            DenseLayer(4, 3, seed=0).forward(np.zeros((5, 6)))

    def test_backward_before_forward_rejected(self):
        with pytest.raises(ValidationError):
            DenseLayer(2, 2, seed=0).backward(np.zeros((1, 2)))

    def test_backward_shape_mismatch_rejected(self):
        layer = DenseLayer(2, 2, seed=0)
        layer.forward(np.zeros((3, 2)))
        with pytest.raises(ShapeError):
            layer.backward(np.zeros((2, 2)))

    def test_parameter_count(self):
        assert DenseLayer(4, 3, seed=0).parameter_count == 12 + 3

    def test_glorot_init_option(self):
        layer = DenseLayer(4, 3, seed=0, init="glorot")
        assert np.all(np.abs(layer.weights) <= np.sqrt(6 / 7))

    def test_unknown_init_rejected(self):
        with pytest.raises(ValidationError):
            DenseLayer(2, 2, init="bad")

    def test_inference_mode_does_not_cache(self):
        layer = DenseLayer(2, 2, seed=0)
        layer.forward(np.zeros((1, 2)), training=False)
        with pytest.raises(ValidationError):
            layer.backward(np.zeros((1, 2)))


class TestMaskedSparseLayer:
    def test_weights_respect_mask_at_init(self):
        mask = np.array([[1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        layer = MaskedSparseLayer(mask, seed=0)
        assert np.all(layer.weights[mask == 0] == 0.0)

    def test_accepts_csr_mask(self):
        layer = MaskedSparseLayer(CSRMatrix.eye(3), seed=0)
        assert layer.connection_count == 3

    def test_gradient_respects_mask(self):
        mask = np.array([[1.0, 0.0], [1.0, 1.0]])
        layer = MaskedSparseLayer(mask, seed=0, activation="identity")
        layer.forward(np.random.default_rng(0).normal(size=(4, 2)))
        layer.backward(np.ones((4, 2)))
        assert np.all(layer.weight_gradient[mask == 0] == 0.0)

    def test_masked_weights_stay_zero_through_training(self):
        mask = (np.random.default_rng(1).random((6, 5)) < 0.4).astype(float)
        mask[mask.sum(axis=1) == 0, 0] = 1.0
        mask[0, mask.sum(axis=0) == 0] = 1.0
        layer = MaskedSparseLayer(mask, seed=0)
        model = FeedforwardNetwork([layer, DenseLayer(5, 2, seed=1, activation="identity")])
        optimizer = Adam(0.01)
        rng = np.random.default_rng(2)
        for _ in range(20):
            x = rng.normal(size=(8, 6))
            y = one_hot(rng.integers(0, 2, size=8), 2)
            out = model.forward(x)
            model.backward(CrossEntropyLoss().gradient(out, y))
            optimizer.step(model.parameters(), model.gradients())
        assert np.all(layer.effective_weights()[mask == 0] == 0.0)

    def test_density_and_parameter_count(self):
        mask = np.array([[1.0, 0.0], [1.0, 1.0]])
        layer = MaskedSparseLayer(mask, seed=0)
        assert layer.connection_count == 3
        assert layer.density == pytest.approx(0.75)
        assert layer.parameter_count == 3 + 2

    def test_equivalent_to_dense_when_mask_full(self):
        full = MaskedSparseLayer(np.ones((3, 4)), seed=7, fan_in_correction=False)
        dense = DenseLayer(3, 4, seed=7)
        np.testing.assert_allclose(full.weights, dense.weights)

    def test_fan_in_correction_scales_columns(self):
        mask = np.array([[1.0, 1.0], [0.0, 1.0]])
        corrected = MaskedSparseLayer(mask, seed=3, fan_in_correction=True)
        uncorrected = MaskedSparseLayer(mask, seed=3, fan_in_correction=False)
        ratio = np.abs(corrected.weights[0, 0]) / np.abs(uncorrected.weights[0, 0])
        assert ratio == pytest.approx(np.sqrt(2.0))

    def test_rejects_1d_mask(self):
        with pytest.raises(ShapeError):
            MaskedSparseLayer(np.ones(4))


class TestCSRSparseLayer:
    def test_matches_dense_computation(self):
        rng = np.random.default_rng(0)
        dense_weights = rng.normal(size=(5, 3)) * (rng.random((5, 3)) < 0.6)
        biases = rng.normal(size=3)
        layer = CSRSparseLayer(CSRMatrix.from_dense(dense_weights), biases, activation="relu")
        x = rng.normal(size=(7, 5))
        expected = np.maximum(x @ dense_weights + biases, 0.0)
        np.testing.assert_allclose(layer.forward(x), expected)

    def test_default_bias_is_zero(self):
        layer = CSRSparseLayer(CSRMatrix.eye(3))
        np.testing.assert_array_equal(layer.biases, np.zeros(3))

    def test_validation(self):
        with pytest.raises(ValidationError):
            CSRSparseLayer(np.eye(3))
        with pytest.raises(ShapeError):
            CSRSparseLayer(CSRMatrix.eye(3), np.zeros(2))
        with pytest.raises(ShapeError):
            CSRSparseLayer(CSRMatrix.eye(3)).forward(np.zeros((2, 4)))

    def test_parameter_count(self):
        layer = CSRSparseLayer(CSRMatrix.eye(4))
        assert layer.parameter_count == 4 + 4


class TestGradientChecks:
    def _numeric_gradient(self, model, loss, x, y, param, index, eps=1e-6):
        original = param.flat[index]
        param.flat[index] = original + eps
        plus = loss.value(model.forward(x, training=False), y)
        param.flat[index] = original - eps
        minus = loss.value(model.forward(x, training=False), y)
        param.flat[index] = original
        return (plus - minus) / (2 * eps)

    @pytest.mark.parametrize("loss_cls", [CrossEntropyLoss, MeanSquaredErrorLoss])
    def test_dense_model_gradients(self, loss_cls):
        rng = np.random.default_rng(0)
        model = dense_model([3, 4, 2], hidden_activation="tanh", seed=1)
        loss = loss_cls()
        x = rng.normal(size=(5, 3))
        y = one_hot(rng.integers(0, 2, size=5), 2)
        outputs = model.forward(x)
        model.backward(loss.gradient(outputs, y))
        analytic = model.gradients()
        params = model.parameters()
        rng_idx = np.random.default_rng(2)
        for param, grad in zip(params, analytic):
            for index in rng_idx.choice(param.size, size=min(5, param.size), replace=False):
                numeric = self._numeric_gradient(model, loss, x, y, param, index)
                assert grad.flat[index] == pytest.approx(numeric, abs=1e-5)

    def test_sparse_model_gradients(self):
        rng = np.random.default_rng(3)
        topology = erdos_renyi_fnnt([4, 6, 3], 0.6, seed=4)
        model = model_from_topology(topology, hidden_activation="sigmoid", seed=5)
        loss = CrossEntropyLoss()
        x = rng.normal(size=(6, 4))
        y = one_hot(rng.integers(0, 3, size=6), 3)
        outputs = model.forward(x)
        model.backward(loss.gradient(outputs, y))
        for param, grad in zip(model.parameters(), model.gradients()):
            for index in np.random.default_rng(6).choice(param.size, size=min(4, param.size), replace=False):
                numeric = self._numeric_gradient(model, loss, x, y, param, index)
                assert grad.flat[index] == pytest.approx(numeric, abs=1e-5)


class TestFeedforwardNetwork:
    def test_layer_size_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            FeedforwardNetwork([DenseLayer(2, 3, seed=0), DenseLayer(4, 2, seed=0)])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            FeedforwardNetwork([])

    def test_sizes_and_counts(self):
        model = dense_model([3, 5, 2], seed=0)
        assert model.input_size == 3
        assert model.output_size == 2
        assert model.layer_sizes == (3, 5, 2)
        assert model.parameter_count == (15 + 5) + (10 + 2)
        assert not model.is_sparse()

    def test_predict_classes(self):
        model = dense_model([2, 4, 3], seed=0)
        classes = model.predict_classes(np.zeros((6, 2)))
        assert classes.shape == (6,)
        assert np.all((classes >= 0) & (classes < 3))

    def test_to_sparse_inference_matches_forward(self):
        topology = erdos_renyi_fnnt([5, 7, 3], 0.5, seed=1)
        model = model_from_topology(topology, seed=2)
        x = np.random.default_rng(3).normal(size=(4, 5))
        expected = model.predict(x)
        layers = model.to_sparse_inference()
        out = x
        for layer in layers:
            out = layer.forward(out)
        np.testing.assert_allclose(out, expected, atol=1e-10)

    def test_realized_topology_density(self):
        topology = erdos_renyi_fnnt([10, 10], 0.3, seed=5)
        model = model_from_topology(topology, seed=0)
        assert model.realized_topology_density() == pytest.approx(topology.density(), abs=0.02)


class TestBuilder:
    def test_model_from_radixnet_matches_topology(self):
        net = generate_radixnet([(2, 2), (2, 2)], [1, 2, 2, 2, 1])
        model = model_from_topology(net, seed=0)
        assert model.layer_sizes == net.layer_sizes
        assert model.is_sparse()
        # masked connection pattern equals the topology's submatrices
        for layer, submatrix in zip(model.layers, net.submatrices):
            np.testing.assert_array_equal(
                (layer.effective_weights() != 0).astype(float).sum(axis=1),
                submatrix.row_degrees().astype(float),
            )

    def test_dense_submatrices_become_dense_layers(self):
        from repro.baselines.dense import dense_fnnt

        model = model_from_topology(dense_fnnt([3, 4, 2]), seed=0)
        assert not model.is_sparse()

    def test_force_masked(self):
        from repro.baselines.dense import dense_fnnt

        model = model_from_topology(dense_fnnt([3, 4, 2]), seed=0, force_masked=True)
        assert model.is_sparse()

    def test_dense_model_validation(self):
        with pytest.raises(ValidationError):
            dense_model([5])

    def test_input_adapter_identity_when_sizes_match(self):
        np.testing.assert_array_equal(input_adapter_matrix(4, 4), np.eye(4))

    def test_input_adapter_projection_shape(self):
        adapter = input_adapter_matrix(10, 6, seed=0)
        assert adapter.shape == (10, 6)

    def test_input_adapter_validation(self):
        with pytest.raises(ValidationError):
            input_adapter_matrix(0, 4)


class TestTrainer:
    def _toy_problem(self, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(120, 4))
        labels = (x[:, 0] + x[:, 1] > 0).astype(int)
        return x, one_hot(labels, 2)

    def test_training_reduces_loss(self):
        x, y = self._toy_problem()
        model = dense_model([4, 8, 2], seed=1)
        trainer = Trainer(model, Adam(0.01), batch_size=16, seed=2)
        history = trainer.fit(x, y, epochs=10)
        assert history.train_loss[-1] < history.train_loss[0]
        assert history.epochs_run == 10

    def test_validation_tracking_and_accuracy(self):
        x, y = self._toy_problem()
        model = dense_model([4, 8, 2], seed=1)
        trainer = Trainer(model, Adam(0.01), batch_size=16, seed=2)
        history = trainer.fit(x[:90], y[:90], epochs=12, val_x=x[90:], val_y=y[90:])
        assert len(history.val_accuracy) == history.epochs_run
        assert history.best_val_accuracy > 0.7

    def test_early_stopping(self):
        x, y = self._toy_problem()
        model = dense_model([4, 8, 2], seed=1)
        trainer = Trainer(model, SGD(1e-8), batch_size=16, seed=2)
        history = trainer.fit(
            x[:90], y[:90], epochs=50, val_x=x[90:], val_y=y[90:], early_stopping_patience=3
        )
        assert history.epochs_run < 50

    def test_early_stopping_requires_validation(self):
        model = dense_model([4, 4, 2], seed=0)
        trainer = Trainer(model, SGD(0.1))
        with pytest.raises(ValidationError):
            trainer.fit(np.zeros((8, 4)), one_hot(np.zeros(8, dtype=int), 2), epochs=2, early_stopping_patience=1)

    def test_lr_schedule_applied(self):
        x, y = self._toy_problem()
        model = dense_model([4, 4, 2], seed=1)
        trainer = Trainer(
            model, SGD(1.0), batch_size=32, lr_schedule=StepDecaySchedule(1.0, factor=0.1, step_size=1), seed=3
        )
        history = trainer.fit(x, y, epochs=3)
        assert history.learning_rates == pytest.approx([1.0, 0.1, 0.01])

    def test_gradient_clipping_bounds_norm(self):
        x, y = self._toy_problem()
        model = dense_model([4, 4, 2], seed=1)
        trainer = Trainer(model, SGD(0.1), gradient_clip=0.5, batch_size=32, seed=4)
        trainer.train_epoch(x, y)
        total_norm = np.sqrt(sum(float(np.sum(g * g)) for g in model.gradients()))
        assert total_norm <= 0.5 + 1e-9

    def test_reproducibility_with_seed(self):
        x, y = self._toy_problem()
        results = []
        for _ in range(2):
            model = dense_model([4, 6, 2], seed=9)
            trainer = Trainer(model, Adam(0.01), batch_size=16, seed=11)
            history = trainer.fit(x, y, epochs=3)
            results.append(history.train_loss)
        np.testing.assert_allclose(results[0], results[1])

    def test_invalid_arguments(self):
        model = dense_model([2, 2], seed=0)
        with pytest.raises(ValidationError):
            Trainer(model, SGD(0.1), batch_size=0)
        with pytest.raises(ValidationError):
            Trainer(model, SGD(0.1), gradient_clip=-1.0)
        with pytest.raises(ValidationError):
            Trainer(model, SGD(0.1)).fit(np.zeros((4, 2)), one_hot(np.zeros(4, dtype=int), 2), epochs=0)

    def test_sparse_topology_trains_on_toy_problem(self):
        x, y = self._toy_problem(seed=5)
        net = generate_radixnet([(2, 2), (2,)], [1, 2, 2, 1])
        model = model_from_topology(net, seed=1)
        adapter = input_adapter_matrix(4, model.input_size, seed=2)
        padded_y = np.pad(y, ((0, 0), (0, model.output_size - 2)))
        trainer = Trainer(model, Adam(0.02), batch_size=16, seed=3)
        history = trainer.fit(x @ adapter, padded_y, epochs=15)
        assert history.train_accuracy[-1] > 0.75
