"""Tests for repro.numeral.mixed_radix."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.numeral.mixed_radix import MixedRadixSystem

radix_lists = st.lists(st.integers(min_value=2, max_value=7), min_size=1, max_size=5)


class TestConstruction:
    def test_basic(self):
        mrs = MixedRadixSystem((2, 3, 4))
        assert mrs.radices == (2, 3, 4)
        assert mrs.capacity == 24
        assert mrs.length == 3

    def test_accepts_list(self):
        assert MixedRadixSystem([5, 2]).radices == (5, 2)

    def test_rejects_radix_below_two(self):
        with pytest.raises(ValidationError):
            MixedRadixSystem((2, 1))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            MixedRadixSystem(())

    def test_len_iter_getitem(self):
        mrs = MixedRadixSystem((3, 5))
        assert len(mrs) == 2
        assert list(mrs) == [3, 5]
        assert mrs[1] == 5

    def test_is_frozen(self):
        mrs = MixedRadixSystem((2, 2))
        with pytest.raises((AttributeError, TypeError)):
            mrs.radices = (3, 3)


class TestPlaceValues:
    def test_place_values_match_paper_convention(self):
        # first radix is the least significant digit
        mrs = MixedRadixSystem((3, 3, 4))
        assert mrs.place_values() == (1, 3, 9)

    def test_place_value_out_of_range(self):
        mrs = MixedRadixSystem((2, 2))
        with pytest.raises(ValidationError):
            mrs.place_value(2)
        with pytest.raises(ValidationError):
            mrs.place_value(-1)


class TestEncodeDecode:
    def test_round_trip_small(self):
        mrs = MixedRadixSystem((2, 3))
        for value in range(mrs.capacity):
            assert mrs.encode(mrs.decode(value)) == value

    def test_decode_known_values(self):
        mrs = MixedRadixSystem((2, 3, 4))
        assert mrs.decode(0) == (0, 0, 0)
        assert mrs.decode(1) == (1, 0, 0)
        assert mrs.decode(2) == (0, 1, 0)
        assert mrs.decode(23) == (1, 2, 3)

    def test_encode_rejects_wrong_length(self):
        with pytest.raises(ValidationError):
            MixedRadixSystem((2, 2)).encode((1,))

    def test_encode_rejects_out_of_range_digit(self):
        with pytest.raises(ValidationError):
            MixedRadixSystem((2, 3)).encode((2, 0))

    def test_encode_rejects_float_digit(self):
        with pytest.raises(ValidationError):
            MixedRadixSystem((2, 3)).encode((1.0, 0))

    def test_decode_rejects_out_of_range(self):
        mrs = MixedRadixSystem((2, 2))
        with pytest.raises(ValidationError):
            mrs.decode(4)
        with pytest.raises(ValidationError):
            mrs.decode(-1)

    def test_digit_extraction(self):
        mrs = MixedRadixSystem((2, 3, 4))
        for value in range(mrs.capacity):
            digits = mrs.decode(value)
            for i in range(3):
                assert mrs.digit(value, i) == digits[i]

    def test_enumerate_digits_is_bijection(self):
        mrs = MixedRadixSystem((2, 2, 3))
        all_digits = list(mrs.enumerate_digits())
        assert len(all_digits) == mrs.capacity
        assert len(set(all_digits)) == mrs.capacity

    @given(radix_lists, st.data())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, radices, data):
        mrs = MixedRadixSystem(radices)
        value = data.draw(st.integers(min_value=0, max_value=mrs.capacity - 1))
        assert mrs.encode(mrs.decode(value)) == value

    @given(radix_lists)
    @settings(max_examples=50, deadline=None)
    def test_capacity_is_product(self, radices):
        mrs = MixedRadixSystem(radices)
        assert mrs.capacity == int(np.prod(radices))


class TestVectorized:
    def test_decode_array_matches_scalar(self):
        mrs = MixedRadixSystem((3, 4))
        values = np.arange(mrs.capacity)
        digits = mrs.decode_array(values)
        for v in values:
            np.testing.assert_array_equal(digits[v], mrs.decode(int(v)))

    def test_encode_array_round_trip(self):
        mrs = MixedRadixSystem((2, 5, 3))
        values = np.arange(mrs.capacity)
        digits = mrs.decode_array(values)
        np.testing.assert_array_equal(mrs.encode_array(digits), values)

    def test_decode_array_rejects_2d(self):
        with pytest.raises(ValidationError):
            MixedRadixSystem((2, 2)).decode_array(np.zeros((2, 2), dtype=int))

    def test_decode_array_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            MixedRadixSystem((2, 2)).decode_array([0, 4])

    def test_encode_array_rejects_bad_shape(self):
        with pytest.raises(ValidationError):
            MixedRadixSystem((2, 2)).encode_array(np.zeros((3, 3), dtype=int))

    def test_encode_array_rejects_digit_out_of_range(self):
        with pytest.raises(ValidationError):
            MixedRadixSystem((2, 2)).encode_array(np.array([[0, 2]]))


class TestStatistics:
    def test_mean_and_variance(self):
        mrs = MixedRadixSystem((2, 4))
        assert mrs.mean_radix == 3.0
        assert mrs.radix_variance == 1.0

    def test_uniform_detection(self):
        assert MixedRadixSystem((3, 3, 3)).is_uniform()
        assert not MixedRadixSystem((2, 3)).is_uniform()

    def test_compatibility(self):
        assert MixedRadixSystem((2, 6)).compatible_with(MixedRadixSystem((3, 4)))
        assert not MixedRadixSystem((2, 2)).compatible_with(MixedRadixSystem((3, 3)))
