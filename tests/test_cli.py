"""Tests for the repro.cli command-line interface."""

import argparse

import pytest

from repro.cli import build_parser, main, parse_systems, parse_widths


class TestParsers:
    def test_parse_systems(self):
        assert parse_systems("2,2;2,2") == [(2, 2), (2, 2)]
        assert parse_systems("3,3,4") == [(3, 3, 4)]
        assert parse_systems("2, 6; 12") == [(2, 6), (12,)]

    def test_parse_systems_invalid(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_systems("a,b")
        with pytest.raises(argparse.ArgumentTypeError):
            parse_systems(";")

    def test_parse_widths(self):
        assert parse_widths("1,2,2,2,1") == [1, 2, 2, 2, 1]

    def test_parse_widths_invalid(self):
        with pytest.raises(argparse.ArgumentTypeError):
            parse_widths("one,two")

    def test_build_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_generate_and_info_round_trip(self, tmp_path, capsys):
        out = tmp_path / "net.npz"
        code = main(
            ["generate", "--systems", "2,2;2,2", "--widths", "1,2,2,2,1", "--out", str(out)]
        )
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "generated" in captured and "saved" in captured

        code = main(["info", str(out)])
        assert code == 0
        info_output = capsys.readouterr().out
        assert "density" in info_output
        assert "True" in info_output  # symmetric column

    def test_generate_without_out(self, capsys):
        assert main(["generate", "--systems", "2,2", "--widths", "1,1,1"]) == 0
        assert "saved" not in capsys.readouterr().out

    def test_verify_success(self, capsys):
        code = main(["verify", "--systems", "2,2;4", "--widths", "1,2,2,1"])
        assert code == 0
        assert "Theorem 1 verified: True" in capsys.readouterr().out

    def test_density_report(self, capsys):
        code = main(["density", "--systems", "3,3;9", "--widths", "1,1,1,1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "eq. 4" in out and "eq. 5" in out and "eq. 6" in out

    def test_challenge_command(self, capsys):
        code = main(
            ["challenge", "--neurons", "16", "--layers", "4", "--connections", "4", "--batch", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "verified against dense reference: True" in out

    def test_design_command(self, capsys):
        code = main(["design", "--layer-widths", "32,64,64,16"])
        assert code == 0
        out = capsys.readouterr().out
        assert "achieved widths: (32, 64, 64, 16)" in out

    @pytest.mark.parametrize("activations", ["dense", "sparse", "auto"])
    def test_challenge_activation_policies(self, capsys, activations):
        code = main(
            ["challenge", "--neurons", "16", "--layers", "4", "--connections", "4",
             "--batch", "8", "--activations", activations]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"activations: policy {activations}" in out
        assert "peak nnz" in out
        assert "verified against dense reference: True" in out

    def test_challenge_sparse_crossover_flag(self, capsys):
        code = main(
            ["challenge", "--neurons", "16", "--layers", "3", "--connections", "4",
             "--batch", "8", "--sparse-crossover", "0.9"]
        )
        assert code == 0
        assert "verified against dense reference: True" in capsys.readouterr().out

    def test_challenge_save_dir_and_verify(self, tmp_path, capsys):
        directory = tmp_path / "net"
        code = main(
            ["challenge", "--neurons", "16", "--layers", "4", "--connections", "4",
             "--batch", "8", "--save-dir", str(directory)]
        )
        assert code == 0
        assert (directory / "neuron16-meta.tsv").exists()
        assert (directory / "neuron16-cache.npz").exists()
        capsys.readouterr()

        code = main(
            ["challenge", "verify", "--dir", str(directory), "--neurons", "16",
             "--batch", "6", "--activations", "sparse"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "loaded from" in out
        assert "checksum" in out
        assert "verified against dense reference: True" in out

    def test_challenge_generate_streams_to_disk(self, tmp_path, capsys):
        directory = tmp_path / "net"
        code = main(
            ["challenge", "generate", "--neurons", "32", "--layers", "3",
             "--connections", "4", "--out", str(directory)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "edges/s" in out and "streaming" in out
        for i in (1, 2, 3):
            assert (directory / f"neuron32-l{i}.tsv").exists()
        assert (directory / "neuron32-meta.tsv").exists()
        assert (directory / "neuron32-cache.npz").exists()

        code = main(
            ["challenge", "verify", "--dir", str(directory), "--neurons", "32",
             "--batch", "6"]
        )
        assert code == 0
        assert "verified against dense reference: True" in capsys.readouterr().out

    def test_challenge_generate_no_sidecar_no_shuffle(self, tmp_path, capsys):
        directory = tmp_path / "net"
        code = main(
            ["challenge", "generate", "--neurons", "16", "--layers", "2",
             "--connections", "4", "--no-shuffle", "--no-sidecar",
             "--out", str(directory)]
        )
        assert code == 0
        assert "TSV only" in capsys.readouterr().out
        assert not (directory / "neuron16-cache.npz").exists()
        from repro.challenge.io import load_challenge_network

        loaded = load_challenge_network(directory, 16, use_cache=False)
        # unshuffled layers are the deterministic circulant: all identical
        assert loaded.weights[0].same_pattern(loaded.weights[1])

    def test_challenge_generate_flags_before_subcommand_survive(self, tmp_path, capsys):
        directory = tmp_path / "net"
        code = main(
            ["challenge", "--neurons", "16", "--layers", "2", "--connections", "4",
             "generate", "--out", str(directory)]
        )
        assert code == 0
        assert (directory / "neuron16-l2.tsv").exists()
        capsys.readouterr()

    def test_challenge_generate_invalid_size_returns_one(self, tmp_path, capsys):
        code = main(
            ["challenge", "generate", "--neurons", "10", "--layers", "2",
             "--connections", "4", "--out", str(tmp_path / "net")]
        )
        assert code == 1
        assert "divisible" in capsys.readouterr().err

    def test_challenge_verify_flags_before_subcommand_survive(self, tmp_path, capsys):
        # options given before the `verify` token must not be clobbered
        # by the subparser's defaults
        from repro.challenge.generator import generate_challenge_network
        from repro.challenge.io import save_challenge_network

        network = generate_challenge_network(8, 2, connections=2, seed=0)
        save_challenge_network(network, tmp_path)
        code = main(
            ["challenge", "--backend", "vectorized", "--activations", "sparse",
             "verify", "--dir", str(tmp_path), "--neurons", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "backend: vectorized, activations: sparse" in out

    def test_challenge_verify_no_cache(self, tmp_path, capsys):
        from repro.challenge.generator import generate_challenge_network
        from repro.challenge.io import save_challenge_network

        network = generate_challenge_network(8, 2, connections=2, seed=0)
        save_challenge_network(network, tmp_path)
        code = main(
            ["challenge", "verify", "--dir", str(tmp_path), "--neurons", "8", "--no-cache"]
        )
        assert code == 0
        assert "verified against dense reference: True" in capsys.readouterr().out

    def test_challenge_verify_missing_dir_returns_one(self, tmp_path, capsys):
        code = main(
            ["challenge", "verify", "--dir", str(tmp_path / "nope"), "--neurons", "8"]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_library_error_returns_one(self, capsys):
        # constraint violation: products differ
        code = main(["generate", "--systems", "2,2;3,3", "--widths", "1,1,1,1,1"])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_info_missing_file_returns_one(self, tmp_path, capsys):
        code = main(["info", str(tmp_path / "missing.npz")])
        assert code == 1


class TestBackendsCommand:
    def test_backends_prints_capability_report(self, capsys):
        import repro.backends as backends

        code = main(["backends"])
        assert code == 0
        out = capsys.readouterr().out
        for name in backends.available_backends():
            assert name in out
        for name, reason in backends.unavailable_backends().items():
            assert name in out
            assert "missing" in out
        assert "active" in out
        assert "REPRO_BACKEND" in out

    def test_backends_probe_reports_auto_choice(self, capsys):
        from repro.backends import selection

        selection._reset_cache()
        try:
            code = main(["backends", "--probe"])
        finally:
            selection._reset_cache()
        assert code == 0
        out = capsys.readouterr().out
        assert "auto would select:" in out
        assert "probe=" in out
