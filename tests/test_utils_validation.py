"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.utils.validation import (
    check_array_2d,
    check_positive_int,
    check_probability,
    check_radix_list,
    check_same_length,
)


class TestCheckPositiveInt:
    def test_accepts_plain_int(self):
        assert check_positive_int(5, "x") == 5

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(7), "x") == 7

    def test_rejects_bool(self):
        with pytest.raises(ValidationError, match="bool"):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_positive_int(3.0, "x")

    def test_rejects_below_minimum(self):
        with pytest.raises(ValidationError, match=">= 2"):
            check_positive_int(1, "x", minimum=2)

    def test_rejects_zero_by_default(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, "x")

    def test_custom_minimum_accepts_zero(self):
        assert check_positive_int(0, "x", minimum=0) == 0

    def test_error_message_contains_name(self):
        with pytest.raises(ValidationError, match="my_param"):
            check_positive_int(-1, "my_param")


class TestCheckRadixList:
    def test_valid_list(self):
        assert check_radix_list([2, 3, 4]) == (2, 3, 4)

    def test_valid_tuple(self):
        assert check_radix_list((5, 2)) == (5, 2)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="empty"):
            check_radix_list([])

    def test_rejects_radix_one(self):
        with pytest.raises(ValidationError):
            check_radix_list([2, 1])

    def test_rejects_string(self):
        with pytest.raises(ValidationError, match="string"):
            check_radix_list("23")

    def test_rejects_float_radix(self):
        with pytest.raises(ValidationError):
            check_radix_list([2.0, 3])

    def test_error_indexes_offending_element(self):
        with pytest.raises(ValidationError, match=r"radices\[1\]"):
            check_radix_list([2, 0, 3])


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_accepts_interior(self):
        assert check_probability(0.25, "p") == 0.25

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_probability(-0.1, "p")

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_probability(1.5, "p")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_probability(float("nan"), "p")

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_probability("half", "p")


class TestCheckArray2d:
    def test_accepts_list_of_lists(self):
        arr = check_array_2d([[1, 2], [3, 4]], "m")
        assert arr.shape == (2, 2)

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            check_array_2d([1, 2, 3], "m")

    def test_rejects_3d(self):
        with pytest.raises(ShapeError):
            check_array_2d(np.zeros((2, 2, 2)), "m")

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            check_array_2d(np.zeros((0, 3)), "m")


class TestCheckSameLength:
    def test_equal_lengths_pass(self):
        check_same_length([1, 2], [3, 4], "a", "b")

    def test_unequal_lengths_raise(self):
        with pytest.raises(ValidationError, match="same length"):
            check_same_length([1], [2, 3], "a", "b")
