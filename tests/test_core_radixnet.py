"""Tests for repro.core.radixnet: the generator, spec validation, and constraints."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.testing import ADMISSIBLE_SPECS
from repro.errors import ConstraintError, ValidationError
from repro.core.kronecker import kron_expand_submatrices
from repro.core.mixed_radix_topology import mixed_radix_submatrices
from repro.core.radixnet import (
    RadixNetSpec,
    emr_submatrices,
    generate_extended_mixed_radix,
    generate_from_spec,
    generate_radixnet,
    radixnet_dense_edge_count,
    radixnet_edge_count,
    validate_radixnet_constraints,
)
from repro.topology.properties import degree_statistics, is_symmetric, uniform_path_count


class TestConstraintValidation:
    def test_shared_product_accepted(self):
        assert validate_radixnet_constraints([(2, 6), (3, 4), (12,)]) == 12

    def test_mismatched_product_rejected(self):
        with pytest.raises(ConstraintError, match="constraint 1"):
            validate_radixnet_constraints([(2, 2), (3, 3), (4,)])

    def test_last_system_divisor_accepted(self):
        assert validate_radixnet_constraints([(2, 6), (6,)]) == 12
        assert validate_radixnet_constraints([(2, 6), (2, 2)]) == 12

    def test_last_system_non_divisor_rejected(self):
        with pytest.raises(ConstraintError, match="constraint 2"):
            validate_radixnet_constraints([(2, 2), (3,)])

    def test_single_system_always_admissible(self):
        assert validate_radixnet_constraints([(5, 2)]) == 10

    def test_rejects_flat_radix_list(self):
        # a single bare system like (2, 2) (not wrapped in a list of systems)
        with pytest.raises(ValidationError):
            validate_radixnet_constraints((2, 2))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            validate_radixnet_constraints([])


class TestRadixNetSpec:
    def test_basic_properties(self, small_spec):
        assert small_spec.n_prime == 4
        assert small_spec.num_systems == 2
        assert small_spec.total_radices == 4
        assert small_spec.flattened_radices == (2, 2, 2, 2)
        assert small_spec.last_product == 4
        assert small_spec.layer_sizes == (4, 8, 8, 8, 4)

    def test_mean_and_variance(self):
        spec = RadixNetSpec([(2, 8), (4, 4)], [1] * 5)
        assert spec.mean_radix() == 4.5
        assert spec.radix_variance() == pytest.approx(np.var([2, 8, 4, 4]))

    def test_wrong_width_count_rejected(self):
        with pytest.raises(ValidationError, match="widths"):
            RadixNetSpec([(2, 2)], [1, 1])

    def test_non_positive_width_rejected(self):
        with pytest.raises(ValidationError):
            RadixNetSpec([(2, 2)], [1, 0, 1])

    def test_constraint_violation_propagates(self):
        with pytest.raises(ConstraintError):
            RadixNetSpec([(2, 2), (3, 3)], [1] * 5)


class TestEmrGeneration:
    def test_emr_submatrix_count(self):
        subs = emr_submatrices([(2, 2), (4,)])
        assert len(subs) == 3
        assert all(w.shape == (4, 4) for w in subs)

    def test_emr_equals_concatenation_of_mixed_radix(self):
        systems = [(2, 3), (6,)]
        emr = emr_submatrices(systems)
        expected = mixed_radix_submatrices((2, 3)) + mixed_radix_submatrices((6,), modulus=6)
        for built, reference in zip(emr, expected):
            np.testing.assert_array_equal(built.to_dense(), reference.to_dense())

    def test_last_system_uses_shared_modulus(self):
        # last system (2,) has product 2 but must produce 4x4 submatrices
        subs = emr_submatrices([(2, 2), (2,)])
        assert subs[-1].shape == (4, 4)
        np.testing.assert_array_equal(subs[-1].row_degrees(), np.full(4, 2))

    def test_lemma_2_path_count_full_products(self):
        net = generate_extended_mixed_radix([(2, 2), (4,), (2, 2)])
        assert uniform_path_count(net) == 4**2

    def test_lemma_2_generalized_divisor_case(self):
        # last product 2 divides 4: count is N'^(M-2) * Q = 4 * 2
        net = generate_extended_mixed_radix([(2, 2), (4,), (2,)])
        assert uniform_path_count(net) == 8


class TestGenerator:
    def test_layer_sizes(self, small_spec, small_radixnet):
        assert small_radixnet.layer_sizes == small_spec.layer_sizes

    def test_generate_radixnet_convenience_wrapper(self):
        net = generate_radixnet([(2, 2), (2, 2)], [1, 2, 2, 2, 1])
        assert net.layer_sizes == (4, 8, 8, 8, 4)

    def test_generated_net_is_valid_fnnt(self, small_radixnet):
        small_radixnet.validate()

    def test_matches_manual_construction(self, small_spec):
        # Figure 6 algorithm == emr submatrices then Kronecker expansion
        generated = generate_from_spec(small_spec)
        manual = kron_expand_submatrices(emr_submatrices(small_spec), small_spec.widths)
        assert len(generated.submatrices) == len(manual)
        for a, b in zip(generated.submatrices, manual):
            np.testing.assert_array_equal(a.to_dense(), b.to_dense())

    def test_edge_count_formula(self, small_spec, small_radixnet):
        assert small_radixnet.num_edges == radixnet_edge_count(small_spec)

    def test_dense_edge_count(self, small_spec, small_radixnet):
        dense = small_radixnet.dense_counterpart()
        assert dense.num_edges == radixnet_dense_edge_count(small_spec)

    def test_degree_regularity(self, small_radixnet):
        # every layer of a RadiX-Net is in- and out-regular
        for stat in degree_statistics(small_radixnet):
            assert stat.out_regular
            assert stat.in_regular

    def test_out_degree_value(self, small_spec, small_radixnet):
        # out-degree of layer i is D_{i+1} * Nbar_{i+1}
        radices = small_spec.flattened_radices
        widths = small_spec.widths
        for i, stat in enumerate(degree_statistics(small_radixnet)):
            assert stat.out_degree_min == widths[i + 1] * radices[i]

    @pytest.mark.parametrize("systems,widths", ADMISSIBLE_SPECS)
    def test_symmetry_across_panel(self, systems, widths):
        net = generate_radixnet(systems, widths)
        assert is_symmetric(net)

    @pytest.mark.parametrize("systems,widths", ADMISSIBLE_SPECS)
    def test_edge_count_across_panel(self, systems, widths):
        spec = RadixNetSpec(systems, widths)
        net = generate_from_spec(spec)
        assert net.num_edges == radixnet_edge_count(spec)

    @pytest.mark.parametrize("systems,widths", ADMISSIBLE_SPECS)
    def test_fnnt_validity_across_panel(self, systems, widths):
        generate_radixnet(systems, widths).validate()


@st.composite
def admissible_spec(draw):
    """Random admissible (systems, widths) with small N'."""
    n_prime = draw(st.sampled_from([4, 6, 8, 9, 12]))
    from repro.numeral.factorization import radix_lists_with_product, divisors

    lists = radix_lists_with_product(n_prime)
    num_full = draw(st.integers(min_value=1, max_value=2))
    systems = [draw(st.sampled_from(lists)) for _ in range(num_full)]
    # optionally append a divisor-product last system
    if draw(st.booleans()):
        q = draw(st.sampled_from([d for d in divisors(n_prime) if d >= 2]))
        systems.append(draw(st.sampled_from(radix_lists_with_product(q))))
    total = sum(len(s) for s in systems)
    widths = [draw(st.integers(min_value=1, max_value=2)) for _ in range(total + 1)]
    return systems, widths


class TestGeneratorPropertyBased:
    @given(admissible_spec())
    @settings(max_examples=25, deadline=None)
    def test_random_specs_symmetric_and_exact_edge_count(self, spec_data):
        systems, widths = spec_data
        spec = RadixNetSpec(systems, widths)
        net = generate_from_spec(spec)
        assert is_symmetric(net)
        assert net.num_edges == radixnet_edge_count(spec)

    @given(admissible_spec())
    @settings(max_examples=25, deadline=None)
    def test_random_specs_density_formula(self, spec_data):
        from repro.core.density import exact_density

        systems, widths = spec_data
        spec = RadixNetSpec(systems, widths)
        net = generate_from_spec(spec)
        assert net.density() == pytest.approx(exact_density(spec))
