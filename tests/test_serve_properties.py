"""Property-based tests for the serve layer's coalescing and health invariants.

The headline serve guarantee, pinned here with hypothesis over arbitrary
request interleavings: however arrivals coalesce into micro-batches,

* every request completes exactly once (no drops, no duplicates),
* its rows come back in order (row identity survives the scatter), and
* the per-request results are **bit-identical** to running that request
  single-shot through :meth:`InferenceEngine.run` -- on every registered
  backend, under both forced activation policies.

The single-consumer tests run deterministically: a :class:`FakeClock`
replaces timed waits and the tests drive :meth:`MicroBatcher.run_once`
directly, so an "interleaving" is an explicit schedule of submit/step
actions, not a thread race.  The worker-pool suite then re-checks the
same exactly-once + bit-identity guarantees with 1-4 *real* worker
threads racing on the queue -- the interleaving there is whatever the
scheduler produces, which is the point.

PR 8 adds the resilience decision layer: :class:`HealthMonitor` and the
backoff schedule are driven here entirely by :class:`FakeClock` -- zero
sleeps -- including a hypothesis sweep of random fault schedules checked
against an independent model of the ejection state machine, plus
balancer unit tests (scripted pings, scripted forward failures) that pin
the eject/re-admit and retry/backoff behavior without any sockets.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import available_backends
from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
)
from repro.challenge.inference import InferenceEngine
from repro.errors import ServeError, ValidationError
from repro.serve import (
    AdaptiveBatchController,
    EngineStep,
    HealthMonitor,
    HealthPolicy,
    LoadBalancer,
    MicroBatcher,
    ServingEngine,
    backoff_delays,
)
from repro.serve.health import STATE_DRAINING, STATE_EJECTED, STATE_HEALTHY
from repro.utils.clock import FakeClock

NEURONS = 32
LAYERS = 4


@pytest.fixture(scope="module")
def network():
    return generate_challenge_network(NEURONS, LAYERS, connections=8, seed=11)


@pytest.fixture(scope="module")
def engines(network):
    """Per-(backend, policy) serving engines + single-shot reference engines."""
    pairs = {}
    for backend in available_backends():
        for policy in ("dense", "sparse"):
            pairs[(backend, policy)] = (
                ServingEngine.from_network(network, backend=backend, activations=policy),
                InferenceEngine(network, backend=backend, activations=policy),
            )
    return pairs


def _request_rows(sizes: list[int]) -> list[np.ndarray]:
    """Deterministic challenge-style row blocks, one per requested size."""
    return [
        challenge_input_batch(NEURONS, size, seed=100 + i)
        for i, size in enumerate(sizes)
    ]


# schedule: per request, how many batcher steps to run *before* submitting
# it (0 = arrives while the previous requests still queue) -- this is the
# arrival interleaving, made explicit and deterministic
schedules = st.lists(
    st.tuples(st.integers(min_value=1, max_value=5),   # rows in this request
              st.integers(min_value=0, max_value=2)),  # run_once calls first
    min_size=1,
    max_size=12,
)


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("policy", ["dense", "sparse"])
class TestBatcherCoalescingProperties:
    @given(schedule=schedules, max_batch=st.integers(min_value=1, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_any_interleaving_is_bit_identical_to_single_shot(
        self, engines, backend, policy, schedule, max_batch
    ):
        serving, reference = engines[(backend, policy)]
        batcher = MicroBatcher(
            serving.step, max_batch=max_batch, max_wait_ms=1.0, clock=FakeClock()
        )
        requests = _request_rows([rows for rows, _ in schedule])
        pendings = []
        for rows, steps_first in zip(requests, (s for _, s in schedule)):
            for _ in range(steps_first):
                batcher.run_once(wait=False)
            pendings.append(batcher.submit(rows))
        while batcher.run_once(wait=False):
            pass

        # exactly-once completion: every request done, none duplicated
        assert all(pending.done() for pending in pendings)
        assert batcher.stats.requests == len(requests)
        assert batcher.stats.rows == sum(r.shape[0] for r in requests)

        for rows, pending in zip(requests, pendings):
            result = pending.result(timeout=0)
            single = reference.run(rows, record_timing=False)
            # row identity + bit-identity with the single-shot engine
            assert result.activations.shape == (rows.shape[0], NEURONS)
            assert (result.activations == single.activations).all()
            assert list(result.categories) == list(single.categories)
            # the batch either respected the row budget or was a lone
            # oversized request
            assert (
                result.stats.batch_rows <= max_batch
                or result.stats.batch_requests == 1
            )

    @given(sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=8))
    @settings(max_examples=10, deadline=None)
    def test_burst_then_drain_conserves_rows(
        self, engines, backend, policy, sizes
    ):
        """All-at-once arrival: coalesced batches partition the request
        sequence in order, and close() drains everything."""
        serving, reference = engines[(backend, policy)]
        observed_batches: list[int] = []

        def counting_step(rows: np.ndarray) -> EngineStep:
            observed_batches.append(rows.shape[0])
            return serving.step(rows)

        batcher = MicroBatcher(
            counting_step, max_batch=6, max_wait_ms=0.0, clock=FakeClock()
        )
        requests = _request_rows(sizes)
        pendings = [batcher.submit(rows) for rows in requests]
        batcher.close()  # no worker: drains inline

        assert sum(observed_batches) == sum(sizes)
        assert batcher.stats.batches == len(observed_batches)
        for rows, pending in zip(requests, pendings):
            single = reference.run(rows, record_timing=False)
            assert (pending.result(timeout=0).activations == single.activations).all()


# --------------------------------------------------------------------------- #
# the worker pool: real threads racing on the one queue
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("policy", ["dense", "sparse"])
class TestWorkerPoolProperties:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=10),
        workers=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=8, deadline=None)
    def test_any_worker_count_is_bit_identical_and_exactly_once(
        self, engines, backend, policy, sizes, workers
    ):
        """N workers draining one queue: exactly-once, bit-identical results."""
        serving, reference = engines[(backend, policy)]
        batcher = MicroBatcher(
            serving.step, max_batch=4, max_wait_ms=0.5, workers=workers
        ).start()
        try:
            requests = _request_rows(sizes)
            pendings = [batcher.submit(rows) for rows in requests]
            for pending in pendings:
                pending.result(timeout=30)
        finally:
            batcher.close(drain=True)

        # exactly-once: the counters account for every request and row
        assert all(pending.done() for pending in pendings)
        assert batcher.stats.requests == len(requests)
        assert batcher.stats.rows == sum(r.shape[0] for r in requests)
        assert batcher.stats.failures == 0
        assert len(batcher.queue) == 0
        for rows, pending in zip(requests, pendings):
            result = pending.result(timeout=0)
            single = reference.run(rows, record_timing=False)
            assert result.activations.shape == (rows.shape[0], NEURONS)
            assert (result.activations == single.activations).all()
            assert list(result.categories) == list(single.categories)


# --------------------------------------------------------------------------- #
# adaptive batch controller: deterministic convergence under FakeClock
# --------------------------------------------------------------------------- #
class TestAdaptiveControllerConvergence:
    """Zero-sleep convergence checks: every signal is an explicit call."""

    def _bound(self, *, max_batch=8, max_wait_ms=4.0, **controller_kwargs):
        clock = FakeClock()
        controller_kwargs.setdefault("interval_s", 0.0)
        controller = AdaptiveBatchController(clock=clock, **controller_kwargs)
        batcher = MicroBatcher(
            _echo_identity,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            clock=clock,
            controller=controller,
        )
        return batcher, controller, clock

    def test_sustained_load_shrinks_wait_to_floor_and_grows_batch(self):
        batcher, controller, clock = self._bound(min_wait_ms=0.5)
        for _ in range(32):  # a burst: every batch leaves a queue behind
            controller.observe(
                batch_rows=8, batch_requests=8,
                queue_wait_s=0.01, service_s=0.001, queue_depth=5,
            )
        assert batcher.max_wait_s == pytest.approx(0.5 / 1000.0)
        assert batcher.max_batch == controller.max_batch_cap
        assert controller.tightened > 0

    def test_idle_relaxes_back_to_baseline(self):
        batcher, controller, clock = self._bound(min_wait_ms=0.5)
        for _ in range(16):
            controller.observe(
                batch_rows=8, batch_requests=8,
                queue_wait_s=0.01, service_s=0.001, queue_depth=5,
            )
        assert batcher.max_wait_s < 4.0 / 1000.0
        for _ in range(32):  # quiet spell: empty queue, tiny batches
            controller.idle(queue_depth=0)
        assert batcher.max_wait_s == pytest.approx(4.0 / 1000.0)
        assert batcher.max_batch == 8
        assert controller.relaxed > 0

    def test_small_batches_with_empty_queue_count_as_idle(self):
        batcher, controller, clock = self._bound()
        for _ in range(8):
            controller.observe(
                batch_rows=8, batch_requests=8,
                queue_wait_s=0.01, service_s=0.001, queue_depth=3,
            )
        tightened = controller.tightened
        for _ in range(32):  # lone single-row batches, nothing queued
            controller.observe(
                batch_rows=1, batch_requests=1,
                queue_wait_s=0.0001, service_s=0.001, queue_depth=0,
            )
        assert controller.tightened == tightened  # no further tightening
        assert batcher.max_wait_s == pytest.approx(4.0 / 1000.0)
        assert batcher.max_batch == 8

    def test_adjustment_interval_rate_limits_reaction(self):
        batcher, controller, clock = self._bound(interval_s=1.0, min_wait_ms=0.01)
        for _ in range(10):  # same fake instant: only the first one counts
            controller.observe(
                batch_rows=8, batch_requests=8,
                queue_wait_s=0.01, service_s=0.001, queue_depth=5,
            )
        assert controller.tightened == 1
        clock.advance(2.0)
        controller.observe(
            batch_rows=8, batch_requests=8,
            queue_wait_s=0.01, service_s=0.001, queue_depth=5,
        )
        assert controller.tightened == 2

    def test_driven_through_the_batcher_loop(self):
        """End to end under FakeClock: run_once feeds the controller."""
        batcher, controller, clock = self._bound(max_batch=2, min_wait_ms=0.5)
        for i in range(12):  # keep the queue deeper than the row budget
            batcher.submit(np.full((1, 2), float(i)))
        while batcher.run_once(wait=False):
            pass
        assert controller.tightened > 0
        assert batcher.max_wait_s < 4.0 / 1000.0
        # drained queue: idle ticks walk the window back up (what the
        # worker's empty-queue branch reports each time it parks)
        for _ in range(64):
            controller.idle(queue_depth=0)
        assert batcher.max_wait_s == pytest.approx(4.0 / 1000.0)

    def test_parked_worker_reports_idle_to_the_controller(self):
        """The empty-queue wait branch fires the idle hook.

        FakeClock waits never park a thread, so the controller stub
        closes the queue from inside ``idle`` -- the collect loop then
        observes the close and returns instead of spinning.
        """
        calls: list[int] = []

        class ClosingController:
            def bind(self, batcher):
                self.batcher = batcher

            def observe(self, **kwargs):  # pragma: no cover - not reached
                pass

            def idle(self, *, queue_depth):
                calls.append(queue_depth)
                self.batcher.queue.close()

        batcher = MicroBatcher(
            _echo_identity, max_wait_ms=1.0, clock=FakeClock(),
            controller=ClosingController(),
        )
        assert batcher.run_once(wait=True) is False
        assert calls == [0]


def _echo_identity(rows: np.ndarray) -> EngineStep:
    return EngineStep(
        activations=np.asarray(rows, dtype=np.float64), layer_modes=["dense"]
    )


# --------------------------------------------------------------------------- #
# PR 8: health-check / backoff decisions, entirely FakeClock-driven
# --------------------------------------------------------------------------- #
class TestBackoffSchedule:
    def test_capped_exponential_shape(self):
        assert backoff_delays(5, 0.05, 1.0) == [0.05, 0.1, 0.2, 0.4, 0.8]

    def test_cap_clamps_the_tail(self):
        assert backoff_delays(6, 0.05, 0.3) == [0.05, 0.1, 0.2, 0.3, 0.3, 0.3]

    def test_zero_attempts_is_empty(self):
        assert backoff_delays(0, 0.05, 1.0) == []

    def test_policy_exposes_its_schedule(self):
        policy = HealthPolicy(retry_limit=4, retry_base_s=0.01, retry_cap_s=0.05)
        assert policy.retry_delays() == [0.01, 0.02, 0.04, 0.05]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValidationError):
            backoff_delays(-1, 0.05, 1.0)
        with pytest.raises(ValidationError):
            backoff_delays(3, -0.05, 1.0)
        with pytest.raises(ValidationError):
            HealthPolicy(interval_s=0.0)
        with pytest.raises(ValidationError):
            HealthPolicy(fail_threshold=0)


class TestHealthMonitorClockDriven:
    """Every transition an explicit call; time only moves when advanced."""

    def _monitor(self, count=2, **policy_kwargs):
        clock = FakeClock()
        policy_kwargs.setdefault("interval_s", 1.0)
        policy_kwargs.setdefault("fail_threshold", 3)
        monitor = HealthMonitor(
            count, policy=HealthPolicy(**policy_kwargs), clock=clock
        )
        return monitor, clock

    def test_consecutive_failures_cross_the_threshold(self):
        monitor, _ = self._monitor(fail_threshold=3)
        assert monitor.record_failure(0) is False
        assert monitor.record_failure(0) is False
        assert monitor.record_failure(0) is True  # third strike ejects
        assert monitor.state(0) == STATE_EJECTED
        assert monitor.in_rotation() == [1]

    def test_success_resets_the_streak(self):
        monitor, _ = self._monitor(fail_threshold=2)
        monitor.record_failure(0)
        monitor.record_success(0)  # evidence of life: streak resets
        assert monitor.record_failure(0) is False
        assert monitor.state(0) == STATE_HEALTHY

    def test_ping_schedule_follows_the_interval(self):
        monitor, clock = self._monitor(interval_s=1.0)
        assert monitor.due_for_ping() == [0, 1]  # never pinged: both due
        monitor.record_success(0, ping=True)
        monitor.record_success(1, ping=True)
        assert monitor.due_for_ping() == []  # just pinged, clock unmoved
        clock.advance(0.5)
        assert monitor.due_for_ping() == []
        clock.advance(0.5)
        assert monitor.due_for_ping() == [0, 1]

    def test_ejected_replica_stays_on_the_probe_schedule(self):
        monitor, clock = self._monitor(fail_threshold=1, interval_s=1.0)
        monitor.record_failure(0, ping=True)
        assert monitor.state(0) == STATE_EJECTED
        clock.advance(1.0)
        assert 0 in monitor.due_for_ping()  # keeps being probed
        # the readiness ping re-admits it with a clean slate
        assert monitor.record_success(0, ping=True) is True
        assert monitor.state(0) == STATE_HEALTHY
        assert monitor.in_rotation() == [0, 1]
        assert monitor.snapshot()["admissions"] == 1

    def test_draining_is_out_of_rotation_and_unpinged(self):
        monitor, clock = self._monitor()
        monitor.drain(0)
        assert monitor.state(0) == STATE_DRAINING
        assert monitor.in_rotation() == [1]
        clock.advance(10.0)
        assert 0 not in monitor.due_for_ping()
        # failures do not accumulate against a draining replica
        assert monitor.record_failure(0) is False
        assert monitor.state(0) == STATE_DRAINING

    def test_admit_gives_a_clean_slate(self):
        monitor, clock = self._monitor(fail_threshold=1)
        monitor.record_failure(0, error="boom")
        assert monitor.state(0) == STATE_EJECTED
        monitor.admit(0)
        assert monitor.state(0) == STATE_HEALTHY
        snapshot = monitor.snapshot()["replicas"][0]
        assert snapshot["consecutive_failures"] == 0
        assert snapshot["last_error"] is None
        assert monitor.due_for_ping() == [1]  # admission stamps the ping clock

    @given(
        schedule=st.lists(
            st.tuples(st.integers(min_value=0, max_value=2), st.booleans()),
            max_size=60,
        ),
        threshold=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_fault_schedule_matches_the_model(self, schedule, threshold):
        """Hypothesis sweep: the monitor against an independent model of
        the ejection state machine, transition by transition."""
        monitor = HealthMonitor(
            3,
            policy=HealthPolicy(fail_threshold=threshold),
            clock=FakeClock(),
        )
        state = [STATE_HEALTHY] * 3
        streak = [0] * 3
        for index, ok in schedule:
            if ok:
                readmitted = monitor.record_success(index, ping=True)
                assert readmitted == (state[index] == STATE_EJECTED)
                state[index] = STATE_HEALTHY
                streak[index] = 0
            else:
                ejected = monitor.record_failure(index, ping=True)
                if state[index] == STATE_HEALTHY:
                    streak[index] += 1
                    if streak[index] >= threshold:
                        state[index] = STATE_EJECTED
                        streak[index] = 0
                        assert ejected
                    else:
                        assert not ejected
                else:
                    assert not ejected
            assert monitor.states() == state
            assert monitor.in_rotation() == [
                i for i, s in enumerate(state) if s == STATE_HEALTHY
            ]


class TestBalancerHealthUnit:
    """The balancer's health/retry plumbing with scripted I/O -- no sockets."""

    def _balancer(self, clock=None, **policy_kwargs):
        policy_kwargs.setdefault("interval_s", 1.0)
        policy_kwargs.setdefault("fail_threshold", 2)
        return LoadBalancer(
            [("127.0.0.1", 1), ("127.0.0.1", 2)],
            health=HealthPolicy(**policy_kwargs),
            health_checks=False,
            clock=clock or FakeClock(),
        )

    def test_scripted_pings_eject_then_readmit(self):
        clock = FakeClock()
        balancer = self._balancer(clock=clock, fail_threshold=2)
        alive = {1}

        async def scripted_ping(index):
            return index in alive

        balancer._ping_replica = scripted_ping
        asyncio.run(balancer._health_check_once())  # failure 1 for replica 0
        assert balancer.monitor.states() == [STATE_HEALTHY, STATE_HEALTHY]
        clock.advance(1.0)
        asyncio.run(balancer._health_check_once())  # failure 2: ejected
        assert balancer.monitor.states() == [STATE_EJECTED, STATE_HEALTHY]
        clock.advance(1.0)
        alive.add(0)  # the replica comes back
        asyncio.run(balancer._health_check_once())  # readiness ping re-admits
        assert balancer.monitor.states() == [STATE_HEALTHY, STATE_HEALTHY]
        stats = balancer.balancer_stats()
        assert stats["health"]["ejections"] == 1
        assert stats["health"]["admissions"] == 1
        assert stats["health"]["pings_failed"] == 2

    def test_pings_respect_the_fake_clock_interval(self):
        clock = FakeClock()
        balancer = self._balancer(clock=clock)
        pinged: list[int] = []

        async def scripted_ping(index):
            pinged.append(index)
            return True

        balancer._ping_replica = scripted_ping
        asyncio.run(balancer._health_check_once())
        assert pinged == [0, 1]
        asyncio.run(balancer._health_check_once())  # clock unmoved: none due
        assert pinged == [0, 1]
        clock.advance(1.0)
        asyncio.run(balancer._health_check_once())
        assert pinged == [0, 1, 0, 1]

    def test_retry_follows_the_backoff_schedule_then_fails_over(self, monkeypatch):
        balancer = self._balancer(
            retry_limit=3, retry_base_s=0.05, retry_cap_s=0.08, fail_threshold=99
        )
        sleeps: list[float] = []

        async def fake_sleep(delay):
            sleeps.append(delay)

        monkeypatch.setattr("asyncio.sleep", fake_sleep)
        picked: list[int] = []

        async def failing_forward(index, line):
            picked.append(index)
            raise ServeError("scripted connection loss")

        balancer._forward = failing_forward
        with pytest.raises(ServeError, match="infer failed after 4 attempts"):
            asyncio.run(balancer._forward_with_retry(b'{"op":"infer"}\n', "infer"))
        assert sleeps == [0.05, 0.08, 0.08]  # capped exponential backoff
        assert balancer.retries == 3
        assert len(picked) == 4
        assert picked[1] != picked[0]  # the first retry failed over

    def test_retry_returns_the_first_successful_forward(self, monkeypatch):
        balancer = self._balancer(retry_limit=2, retry_base_s=0.01, retry_cap_s=0.01)

        async def fake_sleep(delay):
            pass

        monkeypatch.setattr("asyncio.sleep", fake_sleep)
        attempts: list[int] = []

        async def flaky_forward(index, line):
            attempts.append(index)
            if len(attempts) == 1:
                raise ServeError("first connection dies")
            return {"ok": True, "echo": index}

        balancer._forward = flaky_forward
        response = asyncio.run(balancer._forward_with_retry(b'{"op":"infer"}\n', "infer"))
        assert response["ok"] is True
        assert len(attempts) == 2
        assert attempts[1] != attempts[0]  # retried on the *other* replica
        assert balancer.retries == 1

    def test_no_rotation_raises_a_clean_error(self):
        balancer = self._balancer(fail_threshold=1)
        balancer.monitor.eject(0)
        balancer.monitor.eject(1)
        with pytest.raises(ServeError, match="no healthy replicas"):
            balancer._pick_replica()

    def test_stats_snapshot_carries_states_mid_ejection(self):
        """Regression: ejecting a replica between the rotation snapshot
        and the per-replica report must not tear the stats payload."""
        balancer = self._balancer(fail_threshold=1)
        balancer.monitor.eject(1, error="killed for the test")
        stats = balancer.balancer_stats()
        assert stats["states"] == [STATE_HEALTHY, STATE_EJECTED]
        assert stats["replicas"] == 2
        assert len(stats["routed"]) == 2
        assert stats["health"]["ejections"] == 1
