"""Property-based tests for the micro-batcher's coalescing invariants.

The headline serve guarantee, pinned here with hypothesis over arbitrary
request interleavings: however arrivals coalesce into micro-batches,

* every request completes exactly once (no drops, no duplicates),
* its rows come back in order (row identity survives the scatter), and
* the per-request results are **bit-identical** to running that request
  single-shot through :meth:`InferenceEngine.run` -- on every registered
  backend, under both forced activation policies.

Everything runs deterministically: a :class:`FakeClock` replaces timed
waits and the tests drive :meth:`MicroBatcher.run_once` directly, so an
"interleaving" is an explicit schedule of submit/step actions, not a
thread race.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import available_backends
from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
)
from repro.challenge.inference import InferenceEngine
from repro.serve import EngineStep, MicroBatcher, ServingEngine
from repro.utils.clock import FakeClock

NEURONS = 32
LAYERS = 4


@pytest.fixture(scope="module")
def network():
    return generate_challenge_network(NEURONS, LAYERS, connections=8, seed=11)


@pytest.fixture(scope="module")
def engines(network):
    """Per-(backend, policy) serving engines + single-shot reference engines."""
    pairs = {}
    for backend in available_backends():
        for policy in ("dense", "sparse"):
            pairs[(backend, policy)] = (
                ServingEngine.from_network(network, backend=backend, activations=policy),
                InferenceEngine(network, backend=backend, activations=policy),
            )
    return pairs


def _request_rows(sizes: list[int]) -> list[np.ndarray]:
    """Deterministic challenge-style row blocks, one per requested size."""
    return [
        challenge_input_batch(NEURONS, size, seed=100 + i)
        for i, size in enumerate(sizes)
    ]


# schedule: per request, how many batcher steps to run *before* submitting
# it (0 = arrives while the previous requests still queue) -- this is the
# arrival interleaving, made explicit and deterministic
schedules = st.lists(
    st.tuples(st.integers(min_value=1, max_value=5),   # rows in this request
              st.integers(min_value=0, max_value=2)),  # run_once calls first
    min_size=1,
    max_size=12,
)


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("policy", ["dense", "sparse"])
class TestBatcherCoalescingProperties:
    @given(schedule=schedules, max_batch=st.integers(min_value=1, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_any_interleaving_is_bit_identical_to_single_shot(
        self, engines, backend, policy, schedule, max_batch
    ):
        serving, reference = engines[(backend, policy)]
        batcher = MicroBatcher(
            serving.step, max_batch=max_batch, max_wait_ms=1.0, clock=FakeClock()
        )
        requests = _request_rows([rows for rows, _ in schedule])
        pendings = []
        for rows, steps_first in zip(requests, (s for _, s in schedule)):
            for _ in range(steps_first):
                batcher.run_once(wait=False)
            pendings.append(batcher.submit(rows))
        while batcher.run_once(wait=False):
            pass

        # exactly-once completion: every request done, none duplicated
        assert all(pending.done() for pending in pendings)
        assert batcher.stats.requests == len(requests)
        assert batcher.stats.rows == sum(r.shape[0] for r in requests)

        for rows, pending in zip(requests, pendings):
            result = pending.result(timeout=0)
            single = reference.run(rows, record_timing=False)
            # row identity + bit-identity with the single-shot engine
            assert result.activations.shape == (rows.shape[0], NEURONS)
            assert (result.activations == single.activations).all()
            assert list(result.categories) == list(single.categories)
            # the batch either respected the row budget or was a lone
            # oversized request
            assert (
                result.stats.batch_rows <= max_batch
                or result.stats.batch_requests == 1
            )

    @given(sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=8))
    @settings(max_examples=10, deadline=None)
    def test_burst_then_drain_conserves_rows(
        self, engines, backend, policy, sizes
    ):
        """All-at-once arrival: coalesced batches partition the request
        sequence in order, and close() drains everything."""
        serving, reference = engines[(backend, policy)]
        observed_batches: list[int] = []

        def counting_step(rows: np.ndarray) -> EngineStep:
            observed_batches.append(rows.shape[0])
            return serving.step(rows)

        batcher = MicroBatcher(
            counting_step, max_batch=6, max_wait_ms=0.0, clock=FakeClock()
        )
        requests = _request_rows(sizes)
        pendings = [batcher.submit(rows) for rows in requests]
        batcher.close()  # no worker: drains inline

        assert sum(observed_batches) == sum(sizes)
        assert batcher.stats.batches == len(observed_batches)
        for rows, pending in zip(requests, pendings):
            single = reference.run(rows, record_timing=False)
            assert (pending.result(timeout=0).activations == single.activations).all()
