"""Property-based tests for the micro-batcher's coalescing invariants.

The headline serve guarantee, pinned here with hypothesis over arbitrary
request interleavings: however arrivals coalesce into micro-batches,

* every request completes exactly once (no drops, no duplicates),
* its rows come back in order (row identity survives the scatter), and
* the per-request results are **bit-identical** to running that request
  single-shot through :meth:`InferenceEngine.run` -- on every registered
  backend, under both forced activation policies.

The single-consumer tests run deterministically: a :class:`FakeClock`
replaces timed waits and the tests drive :meth:`MicroBatcher.run_once`
directly, so an "interleaving" is an explicit schedule of submit/step
actions, not a thread race.  The worker-pool suite then re-checks the
same exactly-once + bit-identity guarantees with 1-4 *real* worker
threads racing on the queue -- the interleaving there is whatever the
scheduler produces, which is the point.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backends import available_backends
from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
)
from repro.challenge.inference import InferenceEngine
from repro.serve import AdaptiveBatchController, EngineStep, MicroBatcher, ServingEngine
from repro.utils.clock import FakeClock

NEURONS = 32
LAYERS = 4


@pytest.fixture(scope="module")
def network():
    return generate_challenge_network(NEURONS, LAYERS, connections=8, seed=11)


@pytest.fixture(scope="module")
def engines(network):
    """Per-(backend, policy) serving engines + single-shot reference engines."""
    pairs = {}
    for backend in available_backends():
        for policy in ("dense", "sparse"):
            pairs[(backend, policy)] = (
                ServingEngine.from_network(network, backend=backend, activations=policy),
                InferenceEngine(network, backend=backend, activations=policy),
            )
    return pairs


def _request_rows(sizes: list[int]) -> list[np.ndarray]:
    """Deterministic challenge-style row blocks, one per requested size."""
    return [
        challenge_input_batch(NEURONS, size, seed=100 + i)
        for i, size in enumerate(sizes)
    ]


# schedule: per request, how many batcher steps to run *before* submitting
# it (0 = arrives while the previous requests still queue) -- this is the
# arrival interleaving, made explicit and deterministic
schedules = st.lists(
    st.tuples(st.integers(min_value=1, max_value=5),   # rows in this request
              st.integers(min_value=0, max_value=2)),  # run_once calls first
    min_size=1,
    max_size=12,
)


@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("policy", ["dense", "sparse"])
class TestBatcherCoalescingProperties:
    @given(schedule=schedules, max_batch=st.integers(min_value=1, max_value=10))
    @settings(max_examples=15, deadline=None)
    def test_any_interleaving_is_bit_identical_to_single_shot(
        self, engines, backend, policy, schedule, max_batch
    ):
        serving, reference = engines[(backend, policy)]
        batcher = MicroBatcher(
            serving.step, max_batch=max_batch, max_wait_ms=1.0, clock=FakeClock()
        )
        requests = _request_rows([rows for rows, _ in schedule])
        pendings = []
        for rows, steps_first in zip(requests, (s for _, s in schedule)):
            for _ in range(steps_first):
                batcher.run_once(wait=False)
            pendings.append(batcher.submit(rows))
        while batcher.run_once(wait=False):
            pass

        # exactly-once completion: every request done, none duplicated
        assert all(pending.done() for pending in pendings)
        assert batcher.stats.requests == len(requests)
        assert batcher.stats.rows == sum(r.shape[0] for r in requests)

        for rows, pending in zip(requests, pendings):
            result = pending.result(timeout=0)
            single = reference.run(rows, record_timing=False)
            # row identity + bit-identity with the single-shot engine
            assert result.activations.shape == (rows.shape[0], NEURONS)
            assert (result.activations == single.activations).all()
            assert list(result.categories) == list(single.categories)
            # the batch either respected the row budget or was a lone
            # oversized request
            assert (
                result.stats.batch_rows <= max_batch
                or result.stats.batch_requests == 1
            )

    @given(sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=8))
    @settings(max_examples=10, deadline=None)
    def test_burst_then_drain_conserves_rows(
        self, engines, backend, policy, sizes
    ):
        """All-at-once arrival: coalesced batches partition the request
        sequence in order, and close() drains everything."""
        serving, reference = engines[(backend, policy)]
        observed_batches: list[int] = []

        def counting_step(rows: np.ndarray) -> EngineStep:
            observed_batches.append(rows.shape[0])
            return serving.step(rows)

        batcher = MicroBatcher(
            counting_step, max_batch=6, max_wait_ms=0.0, clock=FakeClock()
        )
        requests = _request_rows(sizes)
        pendings = [batcher.submit(rows) for rows in requests]
        batcher.close()  # no worker: drains inline

        assert sum(observed_batches) == sum(sizes)
        assert batcher.stats.batches == len(observed_batches)
        for rows, pending in zip(requests, pendings):
            single = reference.run(rows, record_timing=False)
            assert (pending.result(timeout=0).activations == single.activations).all()


# --------------------------------------------------------------------------- #
# the worker pool: real threads racing on the one queue
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend", available_backends())
@pytest.mark.parametrize("policy", ["dense", "sparse"])
class TestWorkerPoolProperties:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=4), min_size=1, max_size=10),
        workers=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=8, deadline=None)
    def test_any_worker_count_is_bit_identical_and_exactly_once(
        self, engines, backend, policy, sizes, workers
    ):
        """N workers draining one queue: exactly-once, bit-identical results."""
        serving, reference = engines[(backend, policy)]
        batcher = MicroBatcher(
            serving.step, max_batch=4, max_wait_ms=0.5, workers=workers
        ).start()
        try:
            requests = _request_rows(sizes)
            pendings = [batcher.submit(rows) for rows in requests]
            for pending in pendings:
                pending.result(timeout=30)
        finally:
            batcher.close(drain=True)

        # exactly-once: the counters account for every request and row
        assert all(pending.done() for pending in pendings)
        assert batcher.stats.requests == len(requests)
        assert batcher.stats.rows == sum(r.shape[0] for r in requests)
        assert batcher.stats.failures == 0
        assert len(batcher.queue) == 0
        for rows, pending in zip(requests, pendings):
            result = pending.result(timeout=0)
            single = reference.run(rows, record_timing=False)
            assert result.activations.shape == (rows.shape[0], NEURONS)
            assert (result.activations == single.activations).all()
            assert list(result.categories) == list(single.categories)


# --------------------------------------------------------------------------- #
# adaptive batch controller: deterministic convergence under FakeClock
# --------------------------------------------------------------------------- #
class TestAdaptiveControllerConvergence:
    """Zero-sleep convergence checks: every signal is an explicit call."""

    def _bound(self, *, max_batch=8, max_wait_ms=4.0, **controller_kwargs):
        clock = FakeClock()
        controller_kwargs.setdefault("interval_s", 0.0)
        controller = AdaptiveBatchController(clock=clock, **controller_kwargs)
        batcher = MicroBatcher(
            _echo_identity,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            clock=clock,
            controller=controller,
        )
        return batcher, controller, clock

    def test_sustained_load_shrinks_wait_to_floor_and_grows_batch(self):
        batcher, controller, clock = self._bound(min_wait_ms=0.5)
        for _ in range(32):  # a burst: every batch leaves a queue behind
            controller.observe(
                batch_rows=8, batch_requests=8,
                queue_wait_s=0.01, service_s=0.001, queue_depth=5,
            )
        assert batcher.max_wait_s == pytest.approx(0.5 / 1000.0)
        assert batcher.max_batch == controller.max_batch_cap
        assert controller.tightened > 0

    def test_idle_relaxes_back_to_baseline(self):
        batcher, controller, clock = self._bound(min_wait_ms=0.5)
        for _ in range(16):
            controller.observe(
                batch_rows=8, batch_requests=8,
                queue_wait_s=0.01, service_s=0.001, queue_depth=5,
            )
        assert batcher.max_wait_s < 4.0 / 1000.0
        for _ in range(32):  # quiet spell: empty queue, tiny batches
            controller.idle(queue_depth=0)
        assert batcher.max_wait_s == pytest.approx(4.0 / 1000.0)
        assert batcher.max_batch == 8
        assert controller.relaxed > 0

    def test_small_batches_with_empty_queue_count_as_idle(self):
        batcher, controller, clock = self._bound()
        for _ in range(8):
            controller.observe(
                batch_rows=8, batch_requests=8,
                queue_wait_s=0.01, service_s=0.001, queue_depth=3,
            )
        tightened = controller.tightened
        for _ in range(32):  # lone single-row batches, nothing queued
            controller.observe(
                batch_rows=1, batch_requests=1,
                queue_wait_s=0.0001, service_s=0.001, queue_depth=0,
            )
        assert controller.tightened == tightened  # no further tightening
        assert batcher.max_wait_s == pytest.approx(4.0 / 1000.0)
        assert batcher.max_batch == 8

    def test_adjustment_interval_rate_limits_reaction(self):
        batcher, controller, clock = self._bound(interval_s=1.0, min_wait_ms=0.01)
        for _ in range(10):  # same fake instant: only the first one counts
            controller.observe(
                batch_rows=8, batch_requests=8,
                queue_wait_s=0.01, service_s=0.001, queue_depth=5,
            )
        assert controller.tightened == 1
        clock.advance(2.0)
        controller.observe(
            batch_rows=8, batch_requests=8,
            queue_wait_s=0.01, service_s=0.001, queue_depth=5,
        )
        assert controller.tightened == 2

    def test_driven_through_the_batcher_loop(self):
        """End to end under FakeClock: run_once feeds the controller."""
        batcher, controller, clock = self._bound(max_batch=2, min_wait_ms=0.5)
        for i in range(12):  # keep the queue deeper than the row budget
            batcher.submit(np.full((1, 2), float(i)))
        while batcher.run_once(wait=False):
            pass
        assert controller.tightened > 0
        assert batcher.max_wait_s < 4.0 / 1000.0
        # drained queue: idle ticks walk the window back up (what the
        # worker's empty-queue branch reports each time it parks)
        for _ in range(64):
            controller.idle(queue_depth=0)
        assert batcher.max_wait_s == pytest.approx(4.0 / 1000.0)

    def test_parked_worker_reports_idle_to_the_controller(self):
        """The empty-queue wait branch fires the idle hook.

        FakeClock waits never park a thread, so the controller stub
        closes the queue from inside ``idle`` -- the collect loop then
        observes the close and returns instead of spinning.
        """
        calls: list[int] = []

        class ClosingController:
            def bind(self, batcher):
                self.batcher = batcher

            def observe(self, **kwargs):  # pragma: no cover - not reached
                pass

            def idle(self, *, queue_depth):
                calls.append(queue_depth)
                self.batcher.queue.close()

        batcher = MicroBatcher(
            _echo_identity, max_wait_ms=1.0, clock=FakeClock(),
            controller=ClosingController(),
        )
        assert batcher.run_once(wait=True) is False
        assert calls == [0]


def _echo_identity(rows: np.ndarray) -> EngineStep:
    return EngineStep(
        activations=np.asarray(rows, dtype=np.float64), layer_modes=["dense"]
    )
