"""Tests for repro.brain and repro.parallel."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.brain.sizing import (
    HUMAN_BRAIN,
    MOUSE_BRAIN,
    BrainScaleTarget,
    instantiate_scaled,
    size_radixnet_for_target,
)
from repro.challenge.generator import challenge_input_batch, generate_challenge_network
from repro.challenge.inference import sparse_dnn_inference
from repro.parallel.executor import effective_worker_count, parallel_map, serial_map
from repro.parallel.partition import balanced_chunk_sizes, chunked, partition_batch
from repro.parallel.pipeline import parallel_inference, sweep_specs


class TestBrainTargets:
    def test_builtin_targets(self):
        assert HUMAN_BRAIN.neurons > MOUSE_BRAIN.neurons
        assert HUMAN_BRAIN.synapses_per_neuron > 100
        assert 0 < HUMAN_BRAIN.implied_density < 1e-3

    def test_custom_target(self):
        target = BrainScaleTarget(name="tiny", neurons=1e4, synapses=1e6, layers=10)
        assert target.synapses_per_neuron == 100


class TestSizing:
    def test_sizing_matches_targets_closely(self):
        for target in (MOUSE_BRAIN, HUMAN_BRAIN):
            sizing = size_radixnet_for_target(target)
            assert sizing.neuron_error < 0.01
            assert sizing.synapse_error < 0.5
            assert sizing.neurons_per_layer % sizing.radix == 0

    def test_degree_is_power_of_two_by_default(self):
        sizing = size_radixnet_for_target(MOUSE_BRAIN)
        assert (sizing.radix & (sizing.radix - 1)) == 0

    def test_explicit_radix_respected(self):
        sizing = size_radixnet_for_target(MOUSE_BRAIN, radix=64)
        assert sizing.radix == 64

    def test_invalid_target(self):
        with pytest.raises(ValidationError):
            size_radixnet_for_target(BrainScaleTarget("bad", neurons=-1, synapses=1, layers=1))

    def test_spec_is_admissible(self):
        sizing = size_radixnet_for_target(
            BrainScaleTarget("small", neurons=1e4, synapses=1e5, layers=8)
        )
        spec = sizing.spec()
        assert spec.n_prime >= 2


class TestInstantiateScaled:
    def test_scaled_instance_properties(self):
        from repro.topology.properties import degree_statistics

        sizing = size_radixnet_for_target(MOUSE_BRAIN)
        topology = instantiate_scaled(sizing, scale=1e-4, max_layers=4)
        # regular, clearly sparse, and depth-capped
        assert topology.num_layers - 1 <= 4
        assert topology.density() <= 0.25 + 1e-9
        for stat in degree_statistics(topology):
            assert stat.out_regular and stat.in_regular
        # degree never exceeds the full-size design's degree
        assert degree_statistics(topology)[0].out_degree_max <= sizing.radix

    def test_scale_validation(self):
        sizing = size_radixnet_for_target(MOUSE_BRAIN)
        with pytest.raises(ValidationError):
            instantiate_scaled(sizing, scale=0.0)
        with pytest.raises(ValidationError):
            instantiate_scaled(sizing, scale=2.0)


def _square(x):
    return x * x


class TestExecutor:
    def test_serial_map(self):
        assert serial_map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_parallel_map_small_input_uses_serial(self):
        assert parallel_map(_square, [1, 2], min_items_for_parallel=4) == [1, 4]

    def test_parallel_map_matches_serial(self):
        items = list(range(20))
        assert parallel_map(_square, items, workers=2) == [x * x for x in items]

    def test_parallel_map_single_worker(self):
        assert parallel_map(_square, list(range(10)), workers=1) == [x * x for x in range(10)]

    def test_effective_worker_count(self):
        assert effective_worker_count(3) == 3
        assert effective_worker_count() >= 1
        with pytest.raises(ValidationError):
            effective_worker_count(0)


class TestPartition:
    def test_balanced_chunk_sizes(self):
        assert balanced_chunk_sizes(10, 3) == [4, 3, 3]
        assert balanced_chunk_sizes(2, 4) == [1, 1, 0, 0]
        assert sum(balanced_chunk_sizes(17, 5)) == 17

    def test_balanced_chunk_validation(self):
        with pytest.raises(ValidationError):
            balanced_chunk_sizes(-1, 2)
        with pytest.raises(ValidationError):
            balanced_chunk_sizes(5, 0)

    def test_chunked_preserves_order(self):
        chunks = chunked(list(range(7)), 3)
        assert chunks == [[0, 1, 2], [3, 4], [5, 6]]
        assert sum(chunks, []) == list(range(7))

    def test_partition_batch(self):
        batch = np.arange(20).reshape(10, 2).astype(float)
        pieces = partition_batch(batch, 3)
        assert sum(p.shape[0] for p in pieces) == 10
        np.testing.assert_array_equal(np.concatenate(pieces), batch)

    def test_partition_batch_drops_empty(self):
        pieces = partition_batch(np.zeros((2, 3)), 5)
        assert len(pieces) == 2

    def test_partition_batch_rejects_1d(self):
        with pytest.raises(ValidationError):
            partition_batch(np.zeros(5), 2)


class TestParallelInference:
    def test_matches_serial_inference(self):
        network = generate_challenge_network(16, 4, connections=4, seed=0)
        batch = challenge_input_batch(16, 12, seed=1)
        serial = sparse_dnn_inference(network, batch)
        parallel = parallel_inference(network, batch, parts=3, workers=2)
        np.testing.assert_allclose(parallel.activations, serial.activations)
        np.testing.assert_array_equal(parallel.categories, serial.categories)
        assert parallel.edges_traversed == serial.edges_traversed

    def test_single_part(self):
        network = generate_challenge_network(8, 2, connections=2, seed=2)
        batch = challenge_input_batch(8, 4, seed=3)
        result = parallel_inference(network, batch, parts=1)
        np.testing.assert_array_equal(
            result.categories, sparse_dnn_inference(network, batch).categories
        )

    def test_sweep_specs(self):
        results = sweep_specs(_square, [1, 2, 3, 4, 5])
        assert results == [1, 4, 9, 16, 25]
