"""Shared fixtures for the test suite.

Shared *data* (the admissible spec panel, random-matrix helpers) lives in
the importable :mod:`repro.testing` module; only pytest fixtures belong
here.  Never ``from conftest import ...`` -- with multiple conftest files
on ``sys.path`` (tests/ and benchmarks/) that import is ambiguous and
used to break collection.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.radixnet import RadixNetSpec, generate_from_spec
from repro.topology.fnnt import FNNT


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_spec() -> RadixNetSpec:
    """A small admissible RadiX-Net specification used across modules."""
    return RadixNetSpec([(2, 2), (2, 2)], [1, 2, 2, 2, 1], name="small")


@pytest.fixture
def small_radixnet(small_spec: RadixNetSpec) -> FNNT:
    """The generated topology for :func:`small_spec`."""
    return generate_from_spec(small_spec)


@pytest.fixture
def tiny_dense_topology() -> FNNT:
    """A 3-4-2 dense FNNT."""
    return FNNT([np.ones((3, 4)), np.ones((4, 2))], name="tiny-dense")
