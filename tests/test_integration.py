"""End-to-end integration tests across subsystems.

Each test exercises a realistic multi-module workflow: design a topology,
construct it, verify its theory, serialize it, train on it, and run sparse
inference with it.
"""

import numpy as np
import pytest

from repro import (
    FNNT,
    MixedRadixSystem,
    exact_density,
    generate_extended_mixed_radix,
    generate_radixnet,
    mixed_radix_topology,
)
from repro.analysis.compare import compare_topologies
from repro.baselines.dense import dense_fnnt
from repro.baselines.xnet import random_xnet
from repro.core.designer import design_for_widths
from repro.core.radixnet import RadixNetSpec, generate_from_spec
from repro.core.theory import verify_theorem_1
from repro.challenge.generator import challenge_input_batch, generate_challenge_network
from repro.challenge.inference import sparse_dnn_inference
from repro.datasets import gaussian_mixture
from repro.nn.builder import input_adapter_matrix, model_from_topology
from repro.nn.data import one_hot, train_val_split
from repro.nn.optimizers import Adam
from repro.nn.train import Trainer
from repro.topology.io import load_npz, save_npz
from repro.viz.ascii import render_topology
from repro.viz.report import format_report_rows


class TestPublicApi:
    def test_top_level_exports_work_together(self):
        net = generate_radixnet([(2, 2), (2, 2)], [1, 2, 2, 2, 1])
        assert isinstance(net, FNNT)
        assert net.is_symmetric()
        mrs = MixedRadixSystem((2, 2))
        assert mrs.capacity == 4
        emr = generate_extended_mixed_radix([(2, 2), (4,)])
        assert emr.layer_sizes == (4, 4, 4, 4)
        assert exact_density([(2, 2), (4,)], [1, 1, 1, 1]) == pytest.approx(
            emr.density()
        )
        single = mixed_radix_topology((3, 3))
        assert single.layer_sizes == (9, 9, 9)


class TestDesignBuildTrainDeploy:
    def test_full_pipeline(self, tmp_path):
        # 1. design a RadiX-Net for an MLP-shaped width profile
        design = design_for_widths([16, 32, 32, 8])
        spec = design.spec
        topology = generate_from_spec(spec)
        assert topology.layer_sizes == (16, 32, 32, 8)

        # 2. verify the construction's theory
        check = verify_theorem_1(spec, topology=topology)
        assert check.matches_prediction

        # 3. serialize and reload the topology
        path = tmp_path / "designed.npz"
        save_npz(topology, path)
        reloaded = load_npz(path)
        assert reloaded.same_topology(topology)

        # 4. train a model over the reloaded topology on a synthetic task
        features, labels = gaussian_mixture(400, num_classes=4, num_features=16, seed=0)
        targets = one_hot(labels, 4)
        targets = np.pad(targets, ((0, 0), (0, 8 - 4)))
        adapter = input_adapter_matrix(16, reloaded.input_size, seed=1)
        projected = features @ adapter
        train_x, train_y, val_x, val_y = train_val_split(projected, targets, seed=2)
        model = model_from_topology(reloaded, seed=3)
        trainer = Trainer(model, Adam(5e-3), batch_size=32, seed=4)
        history = trainer.fit(train_x, train_y, epochs=12, val_x=val_x, val_y=val_y)
        assert history.best_val_accuracy > 0.6

        # 5. masked connections remain exactly zero after training
        for layer, submatrix in zip(model.layers, reloaded.submatrices):
            weights = layer.effective_weights()
            mask = submatrix.to_dense()
            assert np.all(weights[mask == 0] == 0.0)

        # 6. deploy as CSR inference layers and check numerical agreement
        sparse_layers = model.to_sparse_inference()
        out = val_x
        for layer in sparse_layers:
            out = layer.forward(out)
        np.testing.assert_allclose(out, model.predict(val_x), atol=1e-9)


class TestComparisonWorkflow:
    def test_family_comparison_report(self):
        spec = RadixNetSpec([(2, 2), (2, 2)], [1, 2, 2, 2, 1])
        radix = generate_from_spec(spec)
        xnet = random_xnet(radix.layer_sizes, 4, seed=0)
        dense = dense_fnnt(radix.layer_sizes, name="dense")
        reports = compare_topologies([radix, xnet, dense])
        by_name = {r.name: r for r in reports}
        assert by_name[radix.name].symmetric
        assert by_name["dense"].symmetric
        # the text rendering paths accept the real reports
        table = format_report_rows([r.as_row() for r in reports])
        assert "radix" in table
        assert render_topology(radix)


class TestChallengeWorkflow:
    def test_radixnet_generated_challenge_inference(self):
        network = generate_challenge_network(32, 8, connections=4, seed=0)
        # the challenge network's topology is itself a valid, regular FNNT
        network.topology.validate()
        batch = challenge_input_batch(32, 16, seed=1)
        result = sparse_dnn_inference(network, batch)
        assert result.activations.shape == (16, 32)
        assert 0 < result.categories.size <= 16
        assert result.edges_per_second > 0
