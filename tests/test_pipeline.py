"""Tests for the staged streaming-inference pipeline.

Covers the generic bounded producer/consumer primitive
(:class:`repro.parallel.pipeline.Prefetcher`), the random-access layer
reads that make resume seeks free (:func:`repro.challenge.io.read_layer`,
``iter_challenge_layers(start=...)``), checkpoint serialization, the
interrupt -> resume bit-identity guarantee on every registered backend,
the disk-backed drivers behind ``repro challenge run``, and the fact that
the engine and ``streaming_inference`` route through the single pipeline
implementation.
"""

import threading

import numpy as np
import pytest

import repro.challenge.pipeline as pipeline_mod
from repro.backends import available_backends
from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
)
from repro.challenge.inference import (
    ActivationPolicy,
    InferenceEngine,
    streaming_inference,
)
from repro.challenge.io import (
    iter_challenge_layers,
    read_challenge_meta,
    read_layer,
    save_challenge_network,
)
from repro.challenge.pipeline import (
    CheckpointStage,
    LoadStage,
    PipelineState,
    load_checkpoint,
    resume_challenge_pipeline,
    run_challenge_pipeline,
    run_pipeline,
    save_checkpoint,
)
from repro.errors import SerializationError, ShapeError, ValidationError
from repro.parallel.pipeline import Prefetcher, prefetched

NEURONS = 64
LAYERS = 10
BATCH = 16


@pytest.fixture(scope="module")
def network():
    return generate_challenge_network(NEURONS, LAYERS, connections=8, seed=3)


@pytest.fixture(scope="module")
def batch():
    return challenge_input_batch(NEURONS, BATCH, seed=4)


@pytest.fixture
def net_dir(tmp_path, network):
    directory = tmp_path / "net"
    save_challenge_network(network, directory)
    return directory


# --------------------------------------------------------------------------- #
# the generic producer/consumer primitive
# --------------------------------------------------------------------------- #
class TestPrefetcher:
    def test_preserves_order_and_items(self):
        with Prefetcher(range(100), depth=3) as source:
            assert list(source) == list(range(100))

    def test_depth_validation(self):
        with pytest.raises(ValidationError):
            Prefetcher([1], depth=0)
        with pytest.raises(ValidationError):
            prefetched([1], -1)

    def test_prefetched_zero_depth_is_plain_iteration(self):
        it = prefetched(iter([1, 2, 3]), 0)
        assert not isinstance(it, Prefetcher)
        assert list(it) == [1, 2, 3]

    def test_source_error_raised_at_consumption_point(self):
        def failing():
            yield 1
            yield 2
            raise RuntimeError("producer died")

        with Prefetcher(failing(), depth=2) as source:
            # items produced before the failure are still delivered, in order
            assert next(source) == 1
            assert next(source) == 2
            with pytest.raises(RuntimeError, match="producer died"):
                next(source)
            # exhausted after the error, like a normal iterator
            with pytest.raises(StopIteration):
                next(source)

    def test_close_unblocks_full_queue_producer(self):
        produced = []

        def endless():
            i = 0
            while True:
                produced.append(i)
                yield i
                i += 1

        # a tight injected poll interval bounds how long the parked
        # producer takes to observe the stop -- no sleep calibration
        source = Prefetcher(endless(), depth=2, poll_interval=0.005)
        assert next(source) == 0
        source.close()
        assert not source._thread.is_alive()
        # bounded: the producer never ran far ahead of the queue depth
        assert len(produced) <= 8
        with pytest.raises(StopIteration):
            next(source)

    def test_poll_interval_validation(self):
        with pytest.raises(ValidationError):
            Prefetcher([1], depth=1, poll_interval=0.0)
        with pytest.raises(ValidationError):
            Prefetcher([1], depth=1, poll_interval=-0.1)

    def test_error_delivery_is_event_driven(self):
        # the producer parks on an Event the consumer releases -- the
        # whole interleaving is explicit, with zero time.sleep calls
        release = threading.Event()

        def source():
            yield 1
            assert release.wait(10.0), "consumer never released the producer"
            raise RuntimeError("released failure")

        with Prefetcher(source(), depth=2, poll_interval=0.005) as prefetcher:
            assert next(prefetcher) == 1
            release.set()
            with pytest.raises(RuntimeError, match="released failure"):
                next(prefetcher)

    def test_consumer_blocks_until_producer_posts(self):
        # consumer-side wait is driven by the producer's put, not by
        # polling some shared flag: release the item mid-next() and the
        # value arrives
        release = threading.Event()

        def source():
            assert release.wait(10.0)
            yield 42

        with Prefetcher(source(), depth=1, poll_interval=0.005) as prefetcher:
            got: list[int] = []
            consumer = threading.Thread(target=lambda: got.append(next(prefetcher)))
            consumer.start()
            release.set()
            consumer.join(timeout=10.0)
            assert not consumer.is_alive()
            assert got == [42]


# --------------------------------------------------------------------------- #
# random-access layer reads (the resume seek)
# --------------------------------------------------------------------------- #
class TestReadLayer:
    @pytest.mark.parametrize("use_cache", [True, False])
    def test_matches_network_layers(self, net_dir, network, use_cache):
        for i in (1, LAYERS // 2, LAYERS):
            weight = read_layer(net_dir, NEURONS, i, use_cache=use_cache)
            expected = network.weights[i - 1]
            assert (weight.to_dense() == expected.to_dense()).all()

    def test_index_out_of_range(self, net_dir):
        with pytest.raises(SerializationError):
            read_layer(net_dir, NEURONS, 0)
        with pytest.raises(SerializationError):
            read_layer(net_dir, NEURONS, LAYERS + 1)

    @pytest.mark.parametrize("use_cache", [True, False])
    def test_iter_start_skips_without_reading(self, net_dir, network, use_cache):
        skip = LAYERS // 2
        tail = list(iter_challenge_layers(net_dir, NEURONS, start=skip, use_cache=use_cache))
        assert len(tail) == LAYERS - skip
        for offset, (weight, bias) in enumerate(tail):
            expected = network.weights[skip + offset]
            assert (weight.to_dense() == expected.to_dense()).all()
            assert bias.shape == (NEURONS,)

    def test_iter_start_bounds(self, net_dir):
        assert list(iter_challenge_layers(net_dir, NEURONS, start=LAYERS)) == []
        with pytest.raises(SerializationError):
            list(iter_challenge_layers(net_dir, NEURONS, start=LAYERS + 1))
        with pytest.raises(SerializationError):
            list(iter_challenge_layers(net_dir, NEURONS, start=-1))

    def test_read_challenge_meta(self, net_dir, network):
        meta = read_challenge_meta(net_dir, NEURONS)
        assert meta.neurons == NEURONS
        assert meta.num_layers == LAYERS
        assert meta.threshold == network.threshold
        assert meta.bias_value == float(network.biases[0][0])


# --------------------------------------------------------------------------- #
# checkpoint serialization
# --------------------------------------------------------------------------- #
class TestCheckpointSerialization:
    def _advanced_state(self, network, batch, *, policy):
        state = PipelineState.initial(batch)
        return run_pipeline(
            ((w, b) for w, b in zip(network.weights[:4], network.biases[:4])),
            state,
            threshold=network.threshold,
            policy=policy,
        )

    @pytest.mark.parametrize("policy_mode", ["dense", "sparse"])
    def test_round_trip(self, tmp_path, network, batch, policy_mode):
        state = self._advanced_state(network, batch, policy=policy_mode)
        policy = ActivationPolicy(mode=policy_mode)
        path = save_checkpoint(
            tmp_path / "ck", state, policy=policy, threshold=network.threshold,
            backend="scipy", num_layers=LAYERS, every=2,
            context={"directory": "somewhere", "neurons": NEURONS},
        )
        assert path.exists()
        ckpt = load_checkpoint(tmp_path / "ck")
        assert ckpt.state.layers_done == 4
        assert ckpt.state.batch.kind == policy_mode
        assert (ckpt.state.batch.to_array() == state.batch.to_array()).all()
        assert ckpt.state.layer_modes == state.layer_modes
        assert ckpt.state.layer_seconds == state.layer_seconds
        assert ckpt.state.layer_density == state.layer_density
        assert ckpt.state.peak_nnz == state.peak_nnz
        assert ckpt.state.edges_per_sample == state.edges_per_sample
        assert ckpt.policy == policy
        assert ckpt.threshold == network.threshold
        assert ckpt.backend == "scipy"
        assert ckpt.num_layers == LAYERS and ckpt.every == 2
        assert not ckpt.completed
        assert ckpt.context["directory"] == "somewhere"

    def test_missing_checkpoint(self, tmp_path):
        with pytest.raises(SerializationError, match="no pipeline checkpoint"):
            load_checkpoint(tmp_path)

    def test_corrupt_checkpoint(self, tmp_path, network, batch):
        state = self._advanced_state(network, batch, policy="dense")
        path = save_checkpoint(
            tmp_path, state, policy=ActivationPolicy(), threshold=32.0,
            backend="scipy", num_layers=LAYERS,
        )
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(SerializationError):
            load_checkpoint(tmp_path)

    def test_completed_flag(self, tmp_path, network, batch):
        state = self._advanced_state(network, batch, policy="dense")
        save_checkpoint(
            tmp_path, state, policy=ActivationPolicy(), threshold=32.0,
            backend="scipy", num_layers=4,
        )
        assert load_checkpoint(tmp_path).completed


# --------------------------------------------------------------------------- #
# interrupt -> resume bit-identity (the headline guarantee)
# --------------------------------------------------------------------------- #
def _layers_failing_after(directory, neurons, fail_after):
    """Yield layers from disk, then die -- a mid-run kill at layer ``fail_after``."""
    for produced, layer in enumerate(iter_challenge_layers(directory, neurons)):
        if produced == fail_after:
            raise RuntimeError("simulated mid-run kill")
        yield layer


class TestInterruptResume:
    @pytest.mark.parametrize("backend", available_backends())
    @pytest.mark.parametrize("prefetch", [0, 2])
    def test_killed_run_resumes_bit_identical(
        self, tmp_path, net_dir, network, batch, backend, prefetch
    ):
        uninterrupted = streaming_inference(
            iter_challenge_layers(net_dir, NEURONS), batch,
            threshold=network.threshold, backend=backend,
        )
        stage = CheckpointStage(
            tmp_path / "ck", every=2, policy=ActivationPolicy(),
            threshold=network.threshold, backend=backend, num_layers=LAYERS,
            context={"directory": str(net_dir), "neurons": NEURONS,
                     "prefetch": prefetch},
        )
        fail_after = 7
        with pytest.raises(RuntimeError, match="simulated mid-run kill"):
            run_pipeline(
                _layers_failing_after(net_dir, NEURONS, fail_after),
                PipelineState.initial(batch),
                threshold=network.threshold,
                backend=backend,
                checkpoint=stage,
                prefetch=prefetch,
            )
        # best-effort save on the kill: the resume point is the last layer
        # actually completed, not the last periodic boundary
        ckpt = load_checkpoint(tmp_path / "ck")
        assert ckpt.state.layers_done == fail_after
        assert not ckpt.completed

        resumed = resume_challenge_pipeline(tmp_path / "ck")
        assert resumed.completed
        assert resumed.resumed_from == fail_after
        assert resumed.layers_done == LAYERS
        assert list(resumed.result.categories) == list(uninterrupted.categories)
        assert (resumed.result.activations == uninterrupted.activations).all()
        assert resumed.result.edges_traversed == uninterrupted.edges_traversed

    def test_resume_under_a_different_backend(self, tmp_path, net_dir, network, batch):
        backends = available_backends()
        if len(backends) < 2:
            pytest.skip("needs two registered backends")
        reference = streaming_inference(
            iter_challenge_layers(net_dir, NEURONS), batch,
            threshold=network.threshold, backend=backends[0],
        )
        stage = CheckpointStage(
            tmp_path / "ck", every=3, policy=ActivationPolicy(),
            threshold=network.threshold, backend=backends[0], num_layers=LAYERS,
            context={"directory": str(net_dir), "neurons": NEURONS},
        )
        with pytest.raises(RuntimeError):
            run_pipeline(
                _layers_failing_after(net_dir, NEURONS, 5),
                PipelineState.initial(batch),
                threshold=network.threshold,
                backend=backends[0],
                checkpoint=stage,
            )
        resumed = resume_challenge_pipeline(tmp_path / "ck", backend=backends[1])
        assert resumed.completed
        assert list(resumed.result.categories) == list(reference.categories)

    def test_sparse_policy_checkpoint_survives_kill(self, tmp_path, net_dir, network, batch):
        """A CSR activation batch checkpoints and resumes bit-identically."""
        policy = ActivationPolicy(mode="sparse")
        uninterrupted = streaming_inference(
            iter_challenge_layers(net_dir, NEURONS), batch,
            threshold=network.threshold, activations=policy,
        )
        stage = CheckpointStage(
            tmp_path / "ck", every=2, policy=policy,
            threshold=network.threshold, backend="scipy", num_layers=LAYERS,
            context={"directory": str(net_dir), "neurons": NEURONS},
        )
        with pytest.raises(RuntimeError):
            run_pipeline(
                _layers_failing_after(net_dir, NEURONS, 5),
                PipelineState.initial(batch),
                threshold=network.threshold,
                policy=policy,
                backend="scipy",
                checkpoint=stage,
            )
        ckpt = load_checkpoint(tmp_path / "ck")
        assert ckpt.state.batch.kind == "sparse"
        resumed = resume_challenge_pipeline(tmp_path / "ck")
        assert resumed.completed
        assert list(resumed.result.categories) == list(uninterrupted.categories)
        assert (resumed.result.activations == uninterrupted.activations).all()


# --------------------------------------------------------------------------- #
# disk-backed drivers (behind `repro challenge run`)
# --------------------------------------------------------------------------- #
class TestRunChallengePipeline:
    @pytest.mark.parametrize("prefetch", [0, 3])
    @pytest.mark.parametrize("use_cache", [True, False])
    def test_matches_engine(self, net_dir, network, batch, prefetch, use_cache):
        expected = InferenceEngine(network).run(batch)
        outcome = run_challenge_pipeline(
            net_dir, NEURONS, batch, prefetch=prefetch, use_cache=use_cache
        )
        assert outcome.completed
        assert outcome.layers_done == LAYERS == outcome.num_layers
        assert outcome.checkpoint is None
        assert list(outcome.result.categories) == list(expected.categories)
        assert (outcome.result.activations == expected.activations).all()

    def test_process_transport_matches(self, net_dir, network, batch):
        # falls back to the thread transport where processes cannot spawn;
        # parity must hold either way
        expected = InferenceEngine(network).run(batch)
        outcome = run_challenge_pipeline(
            net_dir, NEURONS, batch, prefetch=3, transport="process"
        )
        assert outcome.completed
        assert list(outcome.result.categories) == list(expected.categories)

    def test_invalid_transport(self, net_dir, batch):
        with pytest.raises(ValidationError, match="transport"):
            LoadStage.from_directory(net_dir, NEURONS, transport="carrier-pigeon")

    def test_staged_stop_and_resume(self, tmp_path, net_dir, network, batch):
        expected = InferenceEngine(network).run(batch)
        staged = run_challenge_pipeline(
            net_dir, NEURONS, batch,
            checkpoint_dir=tmp_path / "ck", checkpoint_every=4, stop_after=6,
        )
        assert not staged.completed
        assert staged.layers_done == 6
        assert staged.checkpoint is not None and staged.checkpoint.exists()
        resumed = resume_challenge_pipeline(tmp_path / "ck")
        assert resumed.completed and resumed.resumed_from == 6
        assert list(resumed.result.categories) == list(expected.categories)
        assert (resumed.result.activations == expected.activations).all()

    def test_resume_of_completed_checkpoint_is_noop(self, tmp_path, net_dir, batch):
        done = run_challenge_pipeline(
            net_dir, NEURONS, batch, checkpoint_dir=tmp_path / "ck", checkpoint_every=5
        )
        assert done.completed
        again = resume_challenge_pipeline(tmp_path / "ck")
        assert again.completed
        assert again.resumed_from == LAYERS
        assert list(again.result.categories) == list(done.result.categories)

    def test_checkpointing_requires_directory(self, net_dir, batch):
        with pytest.raises(ValidationError, match="checkpoint_dir"):
            run_challenge_pipeline(net_dir, NEURONS, batch, checkpoint_every=2)
        with pytest.raises(ValidationError, match="stop_after"):
            run_challenge_pipeline(net_dir, NEURONS, batch, stop_after=3)

    def test_stop_after_bounds(self, tmp_path, net_dir, batch):
        with pytest.raises(ValidationError):
            run_challenge_pipeline(
                net_dir, NEURONS, batch,
                checkpoint_dir=tmp_path / "ck", stop_after=LAYERS + 1,
            )
        staged = run_challenge_pipeline(
            net_dir, NEURONS, batch, checkpoint_dir=tmp_path / "ck2",
            checkpoint_every=2, stop_after=4,
        )
        assert staged.layers_done == 4
        with pytest.raises(ValidationError):
            resume_challenge_pipeline(tmp_path / "ck2", stop_after=3)

    def test_wrong_input_shape(self, net_dir):
        with pytest.raises(ShapeError):
            run_challenge_pipeline(net_dir, NEURONS, np.ones((4, NEURONS + 1)))


# --------------------------------------------------------------------------- #
# single recurrence implementation
# --------------------------------------------------------------------------- #
class TestSinglePipelineImplementation:
    def test_engine_and_streaming_route_through_run_pipeline(
        self, monkeypatch, network, batch
    ):
        calls = []
        original = pipeline_mod.run_pipeline

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(pipeline_mod, "run_pipeline", counting)
        InferenceEngine(network).run(batch)
        assert len(calls) == 1
        streaming_inference(
            zip(network.weights, network.biases), batch, threshold=network.threshold
        )
        assert len(calls) == 2
        # the chunked path is N pipeline runs, one per chunk
        InferenceEngine(network).run(batch, chunk_size=BATCH // 4)
        assert len(calls) == 2 + 4

    def test_streaming_prefetch_parity(self, network, batch):
        serial = streaming_inference(
            zip(network.weights, network.biases), batch, threshold=network.threshold
        )
        overlapped = streaming_inference(
            zip(network.weights, network.biases), batch,
            threshold=network.threshold, prefetch=3,
        )
        assert list(overlapped.categories) == list(serial.categories)
        assert (overlapped.activations == serial.activations).all()
        assert overlapped.edges_traversed == serial.edges_traversed


# --------------------------------------------------------------------------- #
# CLI: repro challenge run
# --------------------------------------------------------------------------- #
class TestChallengeRunCLI:
    def test_full_run(self, net_dir, capsys):
        from repro.cli import main

        code = main(["challenge", "run", "--dir", str(net_dir),
                     "--neurons", str(NEURONS), "--batch", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert f"layers: {LAYERS} of {LAYERS} applied" in out
        assert "checksum" in out

    def test_staged_run_and_resume_match_uninterrupted(self, tmp_path, net_dir, capsys):
        from repro.cli import main

        ck = tmp_path / "ck"
        code = main(["challenge", "run", "--dir", str(net_dir),
                     "--neurons", str(NEURONS), "--batch", "8",
                     "--checkpoint", str(ck), "--checkpoint-every", "2",
                     "--stop-after", "5", "--prefetch", "0"])
        assert code == 0
        staged_out = capsys.readouterr().out
        assert "stopped after layer 5" in staged_out
        assert "resume with:" in staged_out

        code = main(["challenge", "run", "--resume", str(ck)])
        assert code == 0
        resumed_out = capsys.readouterr().out
        assert "resumed from checkpoint at layer 5" in resumed_out

        code = main(["challenge", "run", "--dir", str(net_dir),
                     "--neurons", str(NEURONS), "--batch", "8"])
        assert code == 0
        full_out = capsys.readouterr().out

        def checksum(text):
            [line] = [l for l in text.splitlines() if "checksum" in l]
            return line.split("checksum")[1]

        assert checksum(resumed_out) == checksum(full_out)

    def test_run_requires_dir_or_resume(self, capsys):
        from repro.cli import main

        assert main(["challenge", "run"]) == 1
        assert "needs --dir" in capsys.readouterr().err
        assert main(["challenge", "run", "--dir", "somewhere"]) == 1
        assert "--neurons is required" in capsys.readouterr().err

    def test_run_resume_and_dir_conflict(self, net_dir, capsys):
        from repro.cli import main

        assert main(["challenge", "run", "--dir", str(net_dir),
                     "--resume", str(net_dir)]) == 1
        assert "mutually exclusive" in capsys.readouterr().err
