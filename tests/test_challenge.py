"""Tests for repro.challenge: generator, inference kernel, IO, verification."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.challenge.generator import (
    ChallengeNetwork,
    challenge_input_batch,
    generate_challenge_network,
    scale_series,
)
from repro.challenge.inference import (
    infer_categories,
    layer_activation_profile,
    sparse_dnn_inference,
)
from repro.challenge.io import load_challenge_network, save_challenge_network
from repro.challenge.verify import category_checksum, reference_categories, verify_categories
from repro.topology.properties import degree_statistics


class TestGenerator:
    def test_basic_structure(self):
        network = generate_challenge_network(16, 5, connections=4, seed=0)
        assert network.neurons == 16
        assert network.num_layers == 5
        assert network.connections_per_neuron == pytest.approx(4.0)
        assert network.threshold == 32.0

    def test_every_layer_is_regular(self):
        network = generate_challenge_network(16, 4, connections=4, seed=1)
        for stat in degree_statistics(network.topology):
            assert stat.out_regular
            assert stat.out_degree_min == 4

    def test_weight_values_constant(self):
        # default weight is 2 / connections (incoming weight sum of 2)
        network = generate_challenge_network(8, 3, connections=2, seed=2)
        for weight in network.weights:
            np.testing.assert_allclose(weight.data, 1.0)

    def test_custom_weight_value(self):
        network = generate_challenge_network(8, 2, connections=2, weight_value=0.0625, seed=0)
        np.testing.assert_allclose(network.weights[0].data, 0.0625)

    def test_biases_shape_and_value(self):
        network = generate_challenge_network(8, 2, connections=4, seed=0)
        assert all(b.shape == (8,) for b in network.biases)
        np.testing.assert_allclose(network.biases[0], -0.3)

    def test_neurons_must_divide_connections(self):
        with pytest.raises(ValidationError, match="divisible"):
            generate_challenge_network(10, 3, connections=4)

    def test_shuffle_false_is_deterministic_circulant(self):
        a = generate_challenge_network(16, 2, connections=4, shuffle_neurons=False)
        b = generate_challenge_network(16, 2, connections=4, shuffle_neurons=False)
        assert a.topology.same_topology(b.topology)

    def test_shuffle_seeded_reproducible(self):
        a = generate_challenge_network(16, 3, connections=4, seed=7)
        b = generate_challenge_network(16, 3, connections=4, seed=7)
        assert a.topology.same_topology(b.topology)

    def test_threshold_validation(self):
        with pytest.raises(ValidationError):
            generate_challenge_network(8, 2, connections=2, threshold=0.0)

    def test_input_batch_properties(self):
        batch = challenge_input_batch(32, 10, active_fraction=0.2, seed=0)
        assert batch.shape == (10, 32)
        assert set(np.unique(batch)).issubset({0.0, 1.0})
        assert batch.sum(axis=1).min() >= 1  # no all-zero rows

    def test_input_batch_validation(self):
        with pytest.raises(ValidationError):
            challenge_input_batch(8, 4, active_fraction=0.0)

    def test_scale_series(self):
        assert scale_series(16, 3) == [16, 64, 256]


class TestInference:
    def test_kernel_matches_dense_reference(self):
        network = generate_challenge_network(16, 6, connections=4, seed=3)
        batch = challenge_input_batch(16, 12, seed=4)
        assert verify_categories(network, batch)

    def test_activations_respect_threshold(self):
        network = generate_challenge_network(16, 8, connections=4, seed=5)
        batch = challenge_input_batch(16, 6, seed=6)
        result = sparse_dnn_inference(network, batch)
        assert result.activations.min() >= 0.0
        assert result.activations.max() <= network.threshold

    def test_zero_input_row_produces_no_category(self):
        network = generate_challenge_network(8, 3, connections=2, seed=7)
        batch = np.zeros((3, 8))
        batch[1] = 1.0  # only sample 1 active
        result = sparse_dnn_inference(network, batch)
        assert 0 not in result.categories
        assert 2 not in result.categories

    def test_edges_and_timing_recorded(self):
        network = generate_challenge_network(8, 4, connections=2, seed=8)
        batch = challenge_input_batch(8, 5, seed=9)
        result = sparse_dnn_inference(network, batch)
        assert len(result.layer_seconds) == 4
        assert result.edges_traversed == 8 * 2 * 4 * 5
        assert result.edges_per_second > 0

    def test_infer_categories_wrapper(self):
        network = generate_challenge_network(8, 2, connections=2, seed=10)
        batch = challenge_input_batch(8, 4, seed=11)
        np.testing.assert_array_equal(
            infer_categories(network, batch),
            sparse_dnn_inference(network, batch).categories,
        )

    def test_shape_validation(self):
        network = generate_challenge_network(8, 2, connections=2, seed=12)
        with pytest.raises(Exception):
            sparse_dnn_inference(network, np.zeros((3, 9)))

    def test_activation_profile_stays_alive(self):
        # the bias/weight tuning must keep a healthy fraction of neurons active
        network = generate_challenge_network(32, 10, connections=4, seed=13)
        batch = challenge_input_batch(32, 8, active_fraction=0.4, seed=14)
        profile = layer_activation_profile(network, batch)
        assert len(profile) == 10
        assert profile[-1] > 0.05


class TestChallengeIO:
    def test_round_trip(self, tmp_path):
        network = generate_challenge_network(8, 3, connections=2, seed=0)
        save_challenge_network(network, tmp_path)
        loaded = load_challenge_network(tmp_path, 8)
        assert loaded.neurons == 8
        assert loaded.num_layers == 3
        assert loaded.threshold == network.threshold
        assert loaded.topology.same_topology(network.topology)
        for a, b in zip(loaded.weights, network.weights):
            assert a.allclose(b)

    def test_inference_identical_after_round_trip(self, tmp_path):
        network = generate_challenge_network(16, 4, connections=4, seed=1)
        save_challenge_network(network, tmp_path)
        loaded = load_challenge_network(tmp_path, 16)
        batch = challenge_input_batch(16, 6, seed=2)
        np.testing.assert_array_equal(
            infer_categories(network, batch), infer_categories(loaded, batch)
        )

    def test_missing_metadata(self, tmp_path):
        from repro.errors import SerializationError

        with pytest.raises(SerializationError):
            load_challenge_network(tmp_path, 8)

    def test_wrong_neuron_count(self, tmp_path):
        from repro.errors import SerializationError

        network = generate_challenge_network(8, 2, connections=2, seed=3)
        save_challenge_network(network, tmp_path)
        with pytest.raises(SerializationError):
            load_challenge_network(tmp_path, 16)


class TestVerification:
    def test_reference_matches_kernel_categories(self):
        network = generate_challenge_network(16, 5, connections=4, seed=4)
        batch = challenge_input_batch(16, 10, seed=5)
        np.testing.assert_array_equal(
            reference_categories(network, batch),
            sparse_dnn_inference(network, batch).categories,
        )

    def test_checksum_stable_and_distinct(self):
        a = category_checksum(np.array([1, 2, 3]))
        b = category_checksum(np.array([1, 2, 3]))
        c = category_checksum(np.array([1, 2, 4]))
        assert a == b
        assert a != c
        assert len(a) == 16
