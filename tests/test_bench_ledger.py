"""Tests for the committed perf ledger (``benchmarks/ledger.py``).

The ledger is a standalone script (benchmarks/ is not a package), so it
is loaded by file path.  Measurement runs use the ``test`` profile --
seconds, not minutes -- and one module-scoped ledger write is shared by
the read-side tests.
"""

import importlib.util
import json
from pathlib import Path

import pytest

LEDGER_PATH = Path(__file__).resolve().parent.parent / "benchmarks" / "ledger.py"


@pytest.fixture(scope="module")
def ledger():
    spec = importlib.util.spec_from_file_location("repro_bench_ledger", LEDGER_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def written(ledger, tmp_path_factory):
    path = tmp_path_factory.mktemp("ledger") / "BENCH_90.json"
    return ledger.write_ledger(path, pr=90, profile="test")


class TestCollection:
    def test_written_ledger_has_full_schema(self, ledger, written):
        data = ledger.load_ledger(written)
        assert data["schema"] == ledger.SCHEMA_VERSION
        assert data["pr"] == 90
        assert data["profile"] == "test"
        assert set(data["metrics"]) == {
            "kernels", "inference", "official_scale", "generation", "serve",
            "shard", "train",
        }
        assert data["environment"]["numpy"]

    def test_metrics_cover_every_known_backend(self, ledger, written):
        """Installed tiers get numbers; missing tiers get explicit nulls."""
        import repro.backends as backends

        data = ledger.load_ledger(written)
        kernels = data["metrics"]["kernels"]
        for name in ("scipy", "vectorized"):
            if name in backends.available_backends():
                assert kernels[name]["fused_edges_per_s"] > 0
        for name in backends.unavailable_backends():
            assert kernels[name]["fused_edges_per_s"] is None
            assert any(name in note for note in data["notes"])

    def test_serve_metrics_present(self, ledger, written):
        serve = ledger.load_ledger(written)["metrics"]["serve"]
        assert serve["requests_per_s"] > 0
        assert serve["latency_p99_ms"] >= serve["latency_p50_ms"] > 0

    def test_shard_metrics_present(self, ledger, written):
        """K=1,2,4 probes ran; throughput recorded for each shard count."""
        shard = ledger.load_ledger(written)["metrics"]["shard"]
        assert shard["unsharded_edges_per_s"] > 0
        for k in (1, 2, 4):
            assert shard[f"k{k}"]["edges_per_s"] > 0

    def test_train_metrics_present(self, ledger, written):
        """Masked baseline measured; CSR steps/s per tier, nulls when missing."""
        import repro.backends as backends

        train = ledger.load_ledger(written)["metrics"]["train"]
        assert train["masked_steps_per_s"] > 0
        for name in ("numba", "scipy", "vectorized"):
            value = train["csr"][name]["steps_per_s"]
            if name in backends.available_backends():
                assert value > 0
            else:
                assert value is None

    def test_unknown_profile_rejected(self, ledger):
        with pytest.raises(ValueError, match="unknown profile"):
            ledger.collect_metrics("warp-speed")


class TestComparison:
    def test_flatten_produces_dotted_leaves(self, ledger):
        flat = ledger.flatten_metrics(
            {"a": {"b": {"c": 1.0}, "d": None}, "e": 2}
        )
        assert flat == {"a.b.c": 1.0, "a.d": None, "e": 2}

    def test_self_comparison_is_all_ok(self, ledger, written):
        data = ledger.load_ledger(written)
        rows = ledger.compare_ledgers(data, data)
        assert all(r["status"] in ("ok", "unmeasured") for r in rows)

    def test_regression_and_improvement_detected(self, ledger):
        old = {"metrics": {"kernels": {"fused_edges_per_s": 100.0},
                           "serve": {"latency_p99_ms": 10.0}}}
        worse = {"metrics": {"kernels": {"fused_edges_per_s": 50.0},
                             "serve": {"latency_p99_ms": 20.0}}}
        statuses = {r["metric"]: r["status"]
                    for r in ledger.compare_ledgers(old, worse)}
        # throughput halved AND latency doubled: both move against their
        # respective better-direction
        assert statuses["kernels.fused_edges_per_s"] == "regression"
        assert statuses["serve.latency_p99_ms"] == "regression"
        better = {"metrics": {"kernels": {"fused_edges_per_s": 200.0},
                              "serve": {"latency_p99_ms": 5.0}}}
        statuses = {r["metric"]: r["status"]
                    for r in ledger.compare_ledgers(old, better)}
        assert statuses["kernels.fused_edges_per_s"] == "improved"
        assert statuses["serve.latency_p99_ms"] == "improved"

    def test_added_removed_and_null_metrics(self, ledger):
        old = {"metrics": {"a": 1.0, "gone": 2.0, "n": None}}
        new = {"metrics": {"a": 1.0, "fresh": 3.0, "n": 4.0}}
        statuses = {r["metric"]: r["status"]
                    for r in ledger.compare_ledgers(old, new)}
        assert statuses == {"a": "ok", "gone": "removed",
                            "fresh": "added", "n": "unmeasured"}

    def test_format_comparison_text_and_markdown(self, ledger):
        old = {"metrics": {"k": {"edges_per_s": 100.0}}}
        new = {"metrics": {"k": {"edges_per_s": 40.0}}}
        rows = ledger.compare_ledgers(old, new)
        text = ledger.format_comparison(rows)
        assert "k.edges_per_s" in text
        assert "1 regression(s)" in text
        markdown = ledger.format_comparison(rows, markdown=True)
        assert markdown.startswith("| metric |")
        assert "0.40x" in markdown

    def test_find_latest_ledger_respects_before_pr(self, ledger, tmp_path):
        for n in (3, 6, 11):
            (tmp_path / f"BENCH_{n}.json").write_text(json.dumps({"metrics": {}}))
        (tmp_path / "BENCH_notanumber.json").write_text("{}")
        assert ledger.find_latest_ledger(tmp_path).name == "BENCH_11.json"
        assert ledger.find_latest_ledger(tmp_path, before_pr=11).name == "BENCH_6.json"
        assert ledger.find_latest_ledger(tmp_path, before_pr=3) is None


class TestCommandLine:
    def test_main_writes_and_compares(self, ledger, tmp_path, capsys):
        first = tmp_path / "BENCH_1.json"
        assert ledger.main(["--pr", "1", "--profile", "test",
                            "--out", str(first)]) == 0
        out = capsys.readouterr().out
        assert "ledger written to" in out

        second = tmp_path / "BENCH_2.json"
        markdown = tmp_path / "summary.md"
        code = ledger.main([
            "--pr", "2", "--profile", "test", "--out", str(second),
            "--compare", str(first), "--markdown", str(markdown),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "comparison against" in out
        assert markdown.read_text().startswith("### Perf ledger:")

    def test_committed_bench_6_is_a_valid_ledger(self, ledger):
        committed = ledger.find_latest_ledger()
        assert committed is not None, "BENCH_6.json must be committed"
        data = ledger.load_ledger(committed)
        assert data["pr"] >= 6
        flat = ledger.flatten_metrics(data["metrics"])
        assert any(v is not None for v in flat.values())
