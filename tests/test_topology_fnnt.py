"""Tests for repro.topology.fnnt."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT


class TestConstructionAndValidation:
    def test_basic_dense(self):
        net = FNNT([np.ones((2, 3)), np.ones((3, 2))])
        assert net.layer_sizes == (2, 3, 2)
        assert net.num_layers == 3
        assert net.num_nodes == 7
        assert net.num_edges == 12
        assert net.input_size == 2
        assert net.output_size == 2

    def test_accepts_csr_and_dense_mix(self):
        net = FNNT([CSRMatrix.ones((2, 2)), np.ones((2, 2))])
        assert net.num_edges == 8

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            FNNT([])

    def test_nonconformable_rejected(self):
        with pytest.raises(TopologyError, match="not conformable"):
            FNNT([np.ones((2, 3)), np.ones((4, 2))])

    def test_non_binary_rejected(self):
        with pytest.raises(TopologyError, match="non-binary"):
            FNNT([np.array([[2.0, 1.0], [1.0, 1.0]])])

    def test_zero_row_rejected(self):
        bad = np.array([[1.0, 1.0], [0.0, 0.0]])
        with pytest.raises(TopologyError, match="out-degree 0"):
            FNNT([bad])

    def test_zero_column_rejected(self):
        bad = np.array([[1.0, 0.0], [1.0, 0.0]])
        with pytest.raises(TopologyError, match="unreachable"):
            FNNT([bad])

    def test_validate_false_skips_checks(self):
        bad = np.array([[1.0, 0.0], [1.0, 0.0]])
        net = FNNT([bad], validate=False)
        assert net.num_edges == 2

    def test_iteration_and_indexing(self):
        net = FNNT([np.ones((2, 2)), np.ones((2, 3))])
        assert len(net) == 2
        assert [w.shape for w in net] == [(2, 2), (2, 3)]
        assert net.submatrix(1).shape == (2, 3)


class TestDerivedQuantities:
    def test_density_of_dense_is_one(self):
        net = FNNT([np.ones((3, 4)), np.ones((4, 2))])
        assert net.density() == 1.0

    def test_density_of_sparse(self):
        sub = np.eye(4)
        net = FNNT([sub])
        assert net.density() == 0.25

    def test_dense_counterpart(self):
        net = FNNT([np.eye(3)])
        dense = net.dense_counterpart()
        assert dense.num_edges == 9
        assert dense.layer_sizes == net.layer_sizes

    def test_path_count_matrix_dense(self):
        net = FNNT([np.ones((2, 3)), np.ones((3, 2))])
        counts = net.path_count_matrix().to_dense()
        np.testing.assert_array_equal(counts, np.full((2, 2), 3.0))

    def test_is_path_connected_and_symmetric(self):
        dense = FNNT([np.ones((2, 2)), np.ones((2, 2))])
        assert dense.is_path_connected()
        assert dense.is_symmetric()

    def test_identity_topology_not_path_connected(self):
        net = FNNT([np.eye(3)])
        assert not net.is_path_connected()
        assert not net.is_symmetric()

    def test_full_adjacency_block_structure(self):
        net = FNNT([np.ones((2, 3)), np.ones((3, 2))])
        adjacency = net.full_adjacency().to_dense()
        assert adjacency.shape == (7, 7)
        # block (rows 0-1, cols 2-4) holds W1; everything below diagonal empty
        np.testing.assert_array_equal(adjacency[0:2, 2:5], np.ones((2, 3)))
        np.testing.assert_array_equal(adjacency[2:5, 5:7], np.ones((3, 2)))
        assert np.count_nonzero(adjacency) == net.num_edges
        assert np.count_nonzero(np.tril(adjacency)) == 0

    def test_to_networkx(self):
        net = FNNT([np.ones((2, 2))])
        graph = net.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 4
        assert graph.nodes[(0, 0)]["layer"] == 0
        assert graph.nodes[(1, 1)]["layer"] == 1


class TestComposition:
    def test_concatenate(self):
        a = FNNT([np.ones((2, 3))], name="a")
        b = FNNT([np.ones((3, 2))], name="b")
        combined = a.concatenate(b)
        assert combined.layer_sizes == (2, 3, 2)
        assert combined.name == "a+b"

    def test_concatenate_width_mismatch(self):
        a = FNNT([np.ones((2, 3))])
        b = FNNT([np.ones((4, 2))])
        with pytest.raises(TopologyError):
            a.concatenate(b)

    def test_kron_expand_layer_sizes(self):
        base = FNNT([np.eye(2) + np.eye(2)[::-1]])  # 2x2 dense actually
        expanded = base.kron_expand([3, 2])
        assert expanded.layer_sizes == (6, 4)

    def test_kron_expand_wrong_width_count(self):
        base = FNNT([np.ones((2, 2))])
        with pytest.raises(TopologyError):
            base.kron_expand([1, 2, 3])

    def test_kron_expand_matches_numpy(self):
        sub = np.array([[1.0, 0.0], [1.0, 1.0]])
        base = FNNT([sub])
        expanded = base.kron_expand([2, 3])
        np.testing.assert_array_equal(
            expanded.submatrix(0).to_dense(), np.kron(np.ones((2, 3)), sub)
        )

    def test_same_topology(self):
        a = FNNT([np.eye(3)], validate=False)
        b = FNNT([np.eye(3)], validate=False)
        c = FNNT([np.ones((3, 3))])
        assert a.same_topology(b)
        assert not a.same_topology(c)
        assert not a.same_topology(FNNT([np.eye(3), np.eye(3)], validate=False))
