"""Concurrency stress tests: many clients against a live serve instance.

The acceptance property of the serving subsystem: N concurrent clients
firing mixed-size requests at a real TCP server lose nothing -- every
request is answered exactly once, every answer is bit-identical to a
single-shot :meth:`InferenceEngine.run` of the same rows, and a graceful
shutdown drains whatever was accepted.  Runs on every registered backend.

PR 7 widens the same properties to the scale-out pieces: a worker pool
hammered by producer threads keeps exact counter totals, and a replica
fleet behind the load balancer is indistinguishable from one server --
same exactly-once + bit-identity guarantees over live TCP, plus
aggregated fleet stats that account for every request.
"""

import os
import threading

import numpy as np
import pytest

from repro.backends import available_backends
from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
)
from repro.challenge.inference import InferenceEngine
from repro.challenge.io import save_challenge_network
from repro.serve import (
    EngineStep,
    MicroBatcher,
    ServeClient,
    ServingEngine,
    serve_fleet_in_background,
    serve_in_background,
)

NEURONS = 64
LAYERS = 6
CLIENTS = 6
REQUESTS_PER_CLIENT = 6


@pytest.fixture(scope="module")
def network():
    return generate_challenge_network(NEURONS, LAYERS, connections=8, seed=21)


def _mixed_requests(client_index: int) -> list[np.ndarray]:
    """Deterministic mixed-size (1..4 rows) request blocks for one client."""
    sizes = [1 + (client_index + i) % 4 for i in range(REQUESTS_PER_CLIENT)]
    return [
        challenge_input_batch(NEURONS, size, seed=1000 * client_index + i)
        for i, size in enumerate(sizes)
    ]


def _fire_clients(address, policy_reference, *, encoding="dense"):
    """CLIENTS threads x REQUESTS_PER_CLIENT requests; returns observations."""
    host, port = address
    results: dict[str, dict] = {}
    errors: list[str] = []
    lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS)

    def client_body(index: int) -> None:
        try:
            with ServeClient(host, port) as client:
                barrier.wait(timeout=30)
                for i, rows in enumerate(_mixed_requests(index)):
                    request_id = f"c{index}-r{i}"
                    response = client.infer(
                        rows,
                        request_id=request_id,
                        want_activations=True,
                        encoding=encoding,
                    )
                    with lock:
                        if response["id"] in results:
                            errors.append(f"duplicate response id {response['id']}")
                        results[response["id"]] = response
        except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
            with lock:
                errors.append(f"client {index}: {exc!r}")

    threads = [
        threading.Thread(target=client_body, args=(i,), daemon=True)
        for i in range(CLIENTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)
        assert not thread.is_alive(), "stress client wedged"
    assert errors == []

    # no request dropped or duplicated: exactly one response per id
    assert len(results) == CLIENTS * REQUESTS_PER_CLIENT
    # bit-identical to single-shot runs of the same rows
    for index in range(CLIENTS):
        for i, rows in enumerate(_mixed_requests(index)):
            response = results[f"c{index}-r{i}"]
            single = policy_reference.run(rows, record_timing=False)
            assert (np.asarray(response["activations"]) == single.activations).all()
            assert response["categories"] == [int(c) for c in single.categories]
    return results


@pytest.mark.parametrize("backend", available_backends())
def test_live_server_stress_dense_policy(network, backend):
    engine = ServingEngine.from_network(network, backend=backend, activations="dense")
    reference = InferenceEngine(network, backend=backend, activations="dense")
    with serve_in_background(engine, max_batch=8, max_wait_ms=2.0) as handle:
        results = _fire_clients(handle.address, reference)
        host, port = handle.address
        with ServeClient(host, port) as client:
            stats = client.stats()
        # served everything exactly once, coalescing at least some requests
        assert stats["requests"] == CLIENTS * REQUESTS_PER_CLIENT
        assert stats["rows"] == sum(
            r.shape[0] for i in range(CLIENTS) for r in _mixed_requests(i)
        )
        assert stats["pending"] == 0
        assert stats["batches"] <= stats["requests"]
    # context exit = graceful stop: the server thread is down
    assert not handle._thread.is_alive()
    # at least one response should have ridden a multi-request batch under
    # concurrent load *or* every batch was a lone request (slow machine);
    # either way the batch accounting must be internally consistent
    observed = {r["stats"]["batch_requests"] for r in results.values()}
    assert all(n >= 1 for n in observed)


def test_live_server_stress_sparse_policy(network):
    engine = ServingEngine.from_network(network, activations="sparse")
    reference = InferenceEngine(network, activations="sparse")
    with serve_in_background(engine, max_batch=8, max_wait_ms=2.0) as handle:
        _fire_clients(handle.address, reference, encoding="sparse")


def test_mixed_ops_under_load(network):
    """Control ops interleaved with inference traffic stay consistent."""
    engine = ServingEngine.from_network(network, activations="dense")
    reference = InferenceEngine(network, activations="dense")
    rows = challenge_input_batch(NEURONS, 2, seed=7)
    single = reference.run(rows, record_timing=False)
    stop = threading.Event()
    control_errors: list[str] = []

    def control_body() -> None:
        try:
            with ServeClient(*handle.address) as client:
                while not stop.is_set():
                    assert client.ping()["op"] == "pong"
                    stats = client.stats()
                    assert stats["requests"] >= 0
        except Exception as exc:  # noqa: BLE001
            control_errors.append(repr(exc))

    with serve_in_background(engine, max_batch=4, max_wait_ms=1.0) as handle:
        control = threading.Thread(target=control_body, daemon=True)
        control.start()
        with ServeClient(*handle.address) as client:
            for i in range(20):
                response = client.infer(rows, request_id=f"mix-{i}", want_activations=True)
                assert (np.asarray(response["activations"]) == single.activations).all()
        stop.set()
        control.join(timeout=30)
        assert not control.is_alive()
    assert control_errors == []


def test_shutdown_drains_accepted_requests(network):
    """Everything accepted before close() completes -- nothing is dropped."""
    engine = ServingEngine.from_network(network, activations="dense")
    reference = InferenceEngine(network, activations="dense")
    batcher = MicroBatcher(engine.step, max_batch=4, max_wait_ms=50.0).start()
    requests = [challenge_input_batch(NEURONS, 1 + i % 3, seed=i) for i in range(25)]
    pendings = [batcher.submit(rows) for rows in requests]
    batcher.close(drain=True)  # the graceful-shutdown path the app uses
    for rows, pending in zip(requests, pendings):
        assert pending.done()
        single = reference.run(rows, record_timing=False)
        assert (pending.result(timeout=0).activations == single.activations).all()
    assert batcher.stats.requests == len(requests)


# --------------------------------------------------------------------------- #
# PR 7: worker-pool counter integrity under a producer/consumer hammer
# --------------------------------------------------------------------------- #
def test_worker_pool_thread_hammer_keeps_exact_totals():
    """P producers x N consumer workers: every counter lands exactly.

    The engine step is trivial (identity), so the test is all contention:
    queue pops, push-backs (tiny ``max_batch`` forces them constantly),
    and stats updates racing across 4 workers.  Totals must come out
    exact -- the lock-protection regression test for the counters.
    """
    producers, per_producer = 8, 40
    batcher = MicroBatcher(
        lambda rows: EngineStep(
            activations=np.asarray(rows, dtype=np.float64), layer_modes=["dense"]
        ),
        max_batch=3,  # below common request sizes: exercises push-back
        max_wait_ms=0.2,
        workers=4,
    ).start()
    completed: list = []
    lock = threading.Lock()
    barrier = threading.Barrier(producers)

    def producer_body(index: int) -> None:
        barrier.wait(timeout=30)
        pendings = []
        for i in range(per_producer):
            rows = np.full((1 + (index + i) % 4, 2), float(index * 1000 + i))
            pendings.append((rows, batcher.submit(rows)))
        for rows, pending in pendings:
            result = pending.result(timeout=60)
            with lock:
                completed.append((rows, result))

    threads = [
        threading.Thread(target=producer_body, args=(i,), daemon=True)
        for i in range(producers)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "producer wedged"
    batcher.close(drain=True)

    total_requests = producers * per_producer
    total_rows = sum(rows.shape[0] for rows, _ in completed)
    assert len(completed) == total_requests  # exactly once, none lost
    assert batcher.stats.requests == total_requests
    assert batcher.stats.rows == total_rows
    assert batcher.stats.failures == 0
    assert len(batcher.queue) == 0
    # the batch partition accounts for every row: per-request batch stats
    # sum (weighted by batches) to the row total, and identity survived
    for rows, result in completed:
        assert (result.activations == rows).all()
    snapshot = batcher.stats_dict()
    assert snapshot["requests"] == total_requests
    assert snapshot["workers"] == 4
    assert snapshot["total_queue_wait_s"] >= 0.0
    assert snapshot["total_service_s"] >= 0.0


# --------------------------------------------------------------------------- #
# PR 7: replica fleet behind the balancer, over live TCP
# --------------------------------------------------------------------------- #
def test_replica_fleet_stress_matches_single_shot(network, tmp_path):
    """2 replicas x 2 workers behind the balancer: same guarantees as one
    server -- exactly-once, bit-identical, fleet stats account for all."""
    directory = save_challenge_network(network, tmp_path / "net")
    reference = InferenceEngine(network, activations="dense")
    with serve_fleet_in_background(
        replicas=2,
        directory=directory,
        neurons=NEURONS,
        workdir=tmp_path / "fleet",
        max_batch=8,
        max_wait_ms=2.0,
        workers=2,
        activations="dense",
    ) as handle:
        _fire_clients(handle.address, reference)
        host, port = handle.address
        with ServeClient(host, port) as client:
            meta = client.meta()
            stats = client.stats()
        assert meta["fleet"] is True
        assert meta["replicas"] == 2
        assert meta["neurons"] == NEURONS
        # aggregated fleet totals: every request accounted for, exactly once
        assert stats["requests"] == CLIENTS * REQUESTS_PER_CLIENT
        assert stats["rows"] == sum(
            r.shape[0] for i in range(CLIENTS) for r in _mixed_requests(i)
        )
        assert stats["pending"] == 0
        assert len(stats["replicas"]) == 2
        assert sum(r["requests"] for r in stats["replicas"]) == stats["requests"]
        # the balancer spread the load: both replicas served something
        assert all(count > 0 for count in stats["balancer"]["routed"])
        assert stats["balancer"]["replicas"] == 2
    # context exit = shutdown broadcast: every subprocess reaped
    assert all(not replica.alive() for replica in handle.fleet.replicas)


# --------------------------------------------------------------------------- #
# PR 7: multi-worker speedup (needs real cores; the CI slow job has them)
# --------------------------------------------------------------------------- #
@pytest.mark.slow
def test_multi_worker_throughput_beats_single_worker(network):
    """On a multi-core box, 4 workers must out-serve 1 on saturating load."""
    if (os.cpu_count() or 1) < 2:
        pytest.skip("needs >= 2 cores to demonstrate a worker-pool speedup")
    from repro.serve import bench_serve

    throughput = {}
    for workers in (1, 4):
        engine = ServingEngine.from_network(network, activations="dense")
        with serve_in_background(
            engine, max_batch=16, max_wait_ms=1.0, workers=workers
        ) as handle:
            host, port = handle.address
            report = bench_serve(
                host, port, requests=300, clients=8, rows_per_request=2, seed=3
            )
            assert report["errors"] == 0
            throughput[workers] = report["requests_per_second"]
    # generous margin: scheduling noise must not flake the assertion, but a
    # worker pool that adds nothing (or regresses) must fail it
    assert throughput[4] > throughput[1] * 1.1, throughput
