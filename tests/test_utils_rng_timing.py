"""Tests for repro.utils.rng and repro.utils.timing."""

import time

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Timer, timed


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_bool_rejected(self):
        with pytest.raises(ValidationError):
            ensure_rng(True)

    def test_string_rejected(self):
        with pytest.raises(ValidationError):
            ensure_rng("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            spawn_rngs(0, -1)

    def test_streams_are_independent(self):
        rngs = spawn_rngs(7, 3)
        draws = [r.random(4) for r in rngs]
        assert not np.allclose(draws[0], draws[1])
        assert not np.allclose(draws[1], draws[2])

    def test_deterministic_given_seed(self):
        a = [r.random(3) for r in spawn_rngs(11, 2)]
        b = [r.random(3) for r in spawn_rngs(11, 2)]
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(3)
        rngs = spawn_rngs(gen, 2)
        assert len(rngs) == 2
        assert all(isinstance(r, np.random.Generator) for r in rngs)


class TestTimer:
    def test_records_elapsed(self):
        timer = Timer()
        with timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005
        assert len(timer.laps) == 1

    def test_accumulates_laps(self):
        timer = Timer()
        for _ in range(3):
            with timer:
                pass
        assert len(timer.laps) == 3
        assert timer.mean >= 0.0

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.laps == []

    def test_mean_of_empty_timer_is_zero(self):
        assert Timer().mean == 0.0


class TestTimed:
    def test_returns_result_and_duration(self):
        @timed
        def add(a, b):
            return a + b

        result, seconds = add(2, 3)
        assert result == 5
        assert seconds >= 0.0

    def test_preserves_function_name(self):
        @timed
        def my_function():
            return None

        assert my_function.__name__ == "my_function"
