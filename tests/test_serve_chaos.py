"""Chaos suite: the fleet's resilience guarantees under injected faults.

Driven by :mod:`chaos` (the ``FaultProxy`` TCP shim and the
``kill_replica`` SIGKILL helper), these tests pin the resilience
contract of :mod:`repro.serve.balancer`:

* a request lost to a severed connection is retried on another replica
  and the client sees **exactly one** response, **bit-identical** to a
  single-shot :meth:`InferenceEngine.run` of the same rows;
* consecutive failures eject a replica from rotation, a successful
  readiness ping re-admits it, and ``stats`` reports the rotation
  states truthfully even while it changes (the mid-aggregation
  snapshot regression);
* a replica SIGKILLed mid-load costs zero client errors, and the
  supervisor restores the fleet to its configured strength;
* ``drain`` / rolling restart cycle every replica with zero dropped
  requests.

The connection-level tests front one in-process server with fault
proxies posing as replicas (fast, no subprocesses); the process-level
tests run a real 2-replica subprocess fleet.
"""

import threading

import numpy as np
import pytest
from chaos import FaultProxy, kill_replica, wait_until

from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
)
from repro.challenge.inference import InferenceEngine
from repro.challenge.io import save_challenge_network
from repro.errors import ServeError
from repro.serve import (
    HealthPolicy,
    ServeClient,
    ServingEngine,
    serve_balancer_in_background,
    serve_fleet_in_background,
    serve_in_background,
)
from repro.serve.health import STATE_EJECTED, STATE_HEALTHY

NEURONS = 32
LAYERS = 4

# tight timings so fault->eject->readmit cycles complete in test time
FAST_HEALTH = dict(
    interval_s=0.05,
    fail_threshold=2,
    retry_limit=5,
    retry_base_s=0.02,
    retry_cap_s=0.2,
    ping_timeout_s=2.0,
)


@pytest.fixture(scope="module")
def network():
    return generate_challenge_network(NEURONS, LAYERS, connections=8, seed=33)


@pytest.fixture(scope="module")
def reference(network):
    return InferenceEngine(network, activations="dense")


@pytest.fixture()
def backend_server(network):
    """One in-process serve instance the proxies front as fake replicas."""
    engine = ServingEngine.from_network(network, activations="dense")
    with serve_in_background(engine, max_batch=8, max_wait_ms=1.0) as handle:
        yield handle


def _assert_bit_identical(response: dict, rows: np.ndarray, reference) -> None:
    single = reference.run(rows, record_timing=False)
    assert (np.asarray(response["activations"]) == single.activations).all()
    assert response["categories"] == [int(c) for c in single.categories]


# --------------------------------------------------------------------------- #
# connection-level faults through the proxy
# --------------------------------------------------------------------------- #
def test_severed_responses_are_retried_exactly_once(
    backend_server, reference
):
    """Connections severed after the backend did the work: the client
    still sees exactly one bit-identical response per request."""
    host, port = backend_server.address
    with FaultProxy(host, port) as flaky, FaultProxy(host, port) as steady:
        with serve_balancer_in_background(
            [flaky.address, steady.address],
            health=HealthPolicy(**FAST_HEALTH),
            health_checks=False,  # no ping traffic: the armed sever must
            # hit the infer response, deterministically
            request_timeout_s=10.0,
        ) as handle:
            with ServeClient(*handle.address, timeout_s=30.0) as client:
                requests = [
                    challenge_input_batch(NEURONS, 1 + i % 3, seed=50 + i)
                    for i in range(12)
                ]
                seen: set[str] = set()
                for i, rows in enumerate(requests):
                    if i in (2, 6):
                        # the nastiest loss: the very next response line
                        # through the flaky path dies mid-flight
                        flaky.sever_after_responses(0)
                    response = client.infer(
                        rows, request_id=f"chaos-{i}", want_activations=True
                    )
                    assert response["id"] not in seen  # exactly once
                    seen.add(response["id"])
                    _assert_bit_identical(response, rows, reference)
                stats = client.stats()
            assert len(seen) == len(requests)
            assert flaky.severed >= 2
            assert stats["balancer"]["retries"] >= 2


def test_failed_replica_is_ejected_then_readmitted_by_ping(
    backend_server, reference
):
    host, port = backend_server.address
    with FaultProxy(host, port) as flaky, FaultProxy(host, port) as steady:
        with serve_balancer_in_background(
            [flaky.address, steady.address],
            health=HealthPolicy(**FAST_HEALTH),
            request_timeout_s=10.0,
        ) as handle:
            monitor = handle.balancer.monitor
            flaky.fail()  # full outage on replica 0
            wait_until(lambda: monitor.state(0) == STATE_EJECTED, timeout_s=15.0)
            # traffic keeps flowing through the healthy replica, and the
            # stats snapshot reports the rotation truthfully mid-ejection
            rows = challenge_input_batch(NEURONS, 2, seed=77)
            with ServeClient(*handle.address, timeout_s=30.0) as client:
                response = client.infer(rows, want_activations=True)
                _assert_bit_identical(response, rows, reference)
                stats = client.stats()
            assert stats["balancer"]["states"][0] == STATE_EJECTED
            assert stats["replicas"][0]["state"] == STATE_EJECTED
            assert stats["replicas"][1]["state"] == STATE_HEALTHY
            assert "requests" in stats["replicas"][1]
            assert stats["balancer"]["health"]["ejections"] >= 1

            flaky.heal()  # one successful ping re-admits it
            wait_until(lambda: monitor.state(0) == STATE_HEALTHY, timeout_s=15.0)
            with ServeClient(*handle.address, timeout_s=30.0) as client:
                response = client.infer(rows, want_activations=True)
                _assert_bit_identical(response, rows, reference)
                stats = client.stats()
            assert stats["balancer"]["health"]["admissions"] >= 1
            assert stats["balancer"]["health"]["pings_ok"] >= 1


def test_client_timeout_raises_clean_error_and_poisons_the_connection(
    backend_server,
):
    """Satellite fix: a hung server fails the request with a clean
    ServeError instead of blocking forever, and the client refuses to
    reuse the desynced connection."""
    host, port = backend_server.address
    with FaultProxy(host, port) as proxy:
        proxy.set_blackhole(True)  # requests vanish: the server never answers
        with ServeClient(*proxy.address, timeout_s=0.3) as client:
            with pytest.raises(ServeError, match="timed out"):
                client.ping()
            with pytest.raises(ServeError, match="broken"):
                client.ping()


def test_drain_rejected_by_a_single_server(backend_server):
    """``drain`` is a balancer-only op; a lone server rejects it cleanly."""
    with ServeClient(*backend_server.address) as client:
        with pytest.raises(ServeError, match="unknown op"):
            client.drain(0)


# --------------------------------------------------------------------------- #
# process-level faults against a real subprocess fleet
# --------------------------------------------------------------------------- #
def _fleet(network, tmp_path, **overrides):
    directory = save_challenge_network(network, tmp_path / "net")
    kwargs = dict(
        replicas=2,
        directory=directory,
        neurons=NEURONS,
        workdir=tmp_path / "fleet",
        max_batch=8,
        max_wait_ms=1.0,
        workers=2,
        activations="dense",
        health=HealthPolicy(**FAST_HEALTH),
        max_restarts=2,
        supervisor_poll_s=0.05,
    )
    kwargs.update(overrides)
    return serve_fleet_in_background(**kwargs)


def test_replica_killed_mid_load_self_heals_exactly_once(
    network, tmp_path, reference
):
    """The acceptance headline: SIGKILL a replica under load -- zero
    client errors, bit-identical results, fleet back to full strength."""
    clients, per_client = 4, 10
    with _fleet(network, tmp_path) as handle:
        victim_pid = handle.fleet.replicas[0].pid
        results: dict[str, tuple[np.ndarray, dict]] = {}
        errors: list[str] = []
        lock = threading.Lock()
        barrier = threading.Barrier(clients + 1)

        def client_body(index: int) -> None:
            try:
                with ServeClient(*handle.address, timeout_s=60.0) as client:
                    barrier.wait(timeout=30)
                    for i in range(per_client):
                        rows = challenge_input_batch(
                            NEURONS, 1 + (index + i) % 3, seed=index * 1000 + i
                        )
                        response = client.infer(
                            rows,
                            request_id=f"kill-{index}-{i}",
                            want_activations=True,
                        )
                        with lock:
                            assert response["id"] not in results
                            results[response["id"]] = (rows, response)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(f"client {index}: {exc!r}")

        threads = [
            threading.Thread(target=client_body, args=(i,), daemon=True)
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        barrier.wait(timeout=30)
        kill_replica(victim_pid)  # mid-load, no warning
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "chaos client wedged"

        # every accepted request completed exactly once, bit-identically
        assert errors == []
        assert len(results) == clients * per_client
        for rows, response in results.values():
            _assert_bit_identical(response, rows, reference)

        # the supervisor restores the configured replica count and the
        # replacement re-enters rotation after its readiness ping
        wait_until(lambda: handle.fleet.alive_count() == 2, timeout_s=60.0)
        wait_until(
            lambda: handle.balancer.monitor.states()
            == [STATE_HEALTHY, STATE_HEALTHY],
            timeout_s=60.0,
        )
        assert handle.fleet.replicas[0].pid != victim_pid
        with ServeClient(*handle.address, timeout_s=60.0) as client:
            stats = client.stats()
        assert stats["balancer"]["restarts"] >= 1
        assert [r["state"] for r in stats["replicas"]] == [
            STATE_HEALTHY,
            STATE_HEALTHY,
        ]
    assert all(not replica.alive() for replica in handle.fleet.replicas)


def test_rolling_restart_drops_nothing(network, tmp_path, reference):
    """Drain + warm-restart every replica while load runs: zero errors,
    every replica replaced, every result bit-identical."""
    clients = 3
    with _fleet(network, tmp_path) as handle:
        old_pids = set(handle.fleet.pids)
        stop = threading.Event()
        errors: list[str] = []
        completed = [0] * clients
        lock = threading.Lock()

        def client_body(index: int) -> None:
            try:
                with ServeClient(*handle.address, timeout_s=60.0) as client:
                    i = 0
                    while not stop.is_set():
                        rows = challenge_input_batch(
                            NEURONS, 1 + i % 3, seed=index * 100_000 + i
                        )
                        response = client.infer(rows, want_activations=True)
                        _assert_bit_identical(response, rows, reference)
                        i += 1
                    with lock:
                        completed[index] = i
            except Exception as exc:  # noqa: BLE001 - surfaced below
                with lock:
                    errors.append(f"client {index}: {exc!r}")

        threads = [
            threading.Thread(target=client_body, args=(i,), daemon=True)
            for i in range(clients)
        ]
        for thread in threads:
            thread.start()
        try:
            addresses = handle.rolling_restart()
        finally:
            stop.set()
        for thread in threads:
            thread.join(timeout=120)
            assert not thread.is_alive(), "rolling-restart client wedged"

        assert errors == []
        assert all(count > 0 for count in completed)
        assert len(addresses) == 2
        # every replica is a new process, back at full strength
        assert set(handle.fleet.pids).isdisjoint(old_pids)
        assert handle.fleet.alive_count() == 2
        assert handle.balancer.monitor.states() == [STATE_HEALTHY, STATE_HEALTHY]
        with ServeClient(*handle.address, timeout_s=60.0) as client:
            stats = client.stats()
            assert stats["balancer"]["restarts"] == 2

            # the wire-level drain op: one more warm restart, plus the
            # error paths
            pid_before = handle.fleet.replicas[0].pid
            ack = client.drain(0)
            assert ack["ok"] is True and ack["replica"] == 0
            assert handle.fleet.replicas[0].pid != pid_before
            assert handle.balancer.monitor.state(0) == STATE_HEALTHY
            with pytest.raises(ServeError, match="out of range"):
                client.drain(7)
            with pytest.raises(ServeError, match="integer"):
                client.checked({"op": "drain", "replica": "zero"})
            rows = challenge_input_batch(NEURONS, 2, seed=9)
            _assert_bit_identical(
                client.infer(rows, want_activations=True), rows, reference
            )
