"""Tests for the sparse training loop (PR 10).

Covers the ``sdmm`` backward kernel across every registered backend, the
:class:`CSRTrainableLayer` (gradient checks, O(nnz) storage, numerical
equivalence with :class:`MaskedSparseLayer`, structural mask invariance
under every optimizer), the trainer bugfix sweep (batch-size-weighted
epoch loss, fit-twice seed-stream advance, lr-schedule/optimizer
mismatch), the magnitude-pruning tie-break, and the ``train-study``
experiment harness and CLI subcommand.
"""

import copy
import json

import numpy as np
import pytest

import repro.backends as backends
from repro.baselines.pruning import magnitude_prune_mask
from repro.errors import ShapeError, ValidationError
from repro.experiments.training import accuracy_vs_density, train_study
from repro.nn.builder import dense_model, model_from_topology
from repro.nn.data import minibatches, one_hot
from repro.nn.layers import (
    CSRSparseLayer,
    CSRTrainableLayer,
    DenseLayer,
    MaskedSparseLayer,
)
from repro.nn.losses import CrossEntropyLoss
from repro.nn.model import FeedforwardNetwork
from repro.nn.optimizers import SGD, Adam, Momentum, RMSProp
from repro.nn.train import Trainer
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import sdmm
from repro.topology.random_graphs import erdos_renyi_fnnt

ALL_BACKENDS = backends.available_backends()


def _random_pattern(rng, shape, density=0.4):
    dense = (rng.random(shape) < density).astype(float)
    dense[0, 0] = 1.0  # never fully empty
    return dense, CSRMatrix.from_dense(dense)


# --------------------------------------------------------------------------- #
# sdmm kernel
# --------------------------------------------------------------------------- #
class TestSdmm:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_matches_dense_product_sampled_at_pattern(self, backend):
        rng = np.random.default_rng(0)
        dense_pat, pattern = _random_pattern(rng, (7, 5))
        x = rng.standard_normal((4, 7))
        dy = rng.standard_normal((4, 5))
        out = sdmm(x, dy, pattern, backend=backend)
        assert out.same_pattern(pattern)
        rows, cols = np.nonzero(dense_pat)
        np.testing.assert_allclose(out.data, (x.T @ dy)[rows, cols])

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_pattern_values_are_ignored(self, backend):
        rng = np.random.default_rng(1)
        _, pattern = _random_pattern(rng, (6, 4))
        scaled = pattern.with_data(pattern.data * 17.0)
        x = rng.standard_normal((3, 6))
        dy = rng.standard_normal((3, 4))
        np.testing.assert_array_equal(
            sdmm(x, dy, pattern, backend=backend).data,
            sdmm(x, dy, scaled, backend=backend).data,
        )

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_empty_pattern(self, backend):
        out = sdmm(np.ones((2, 3)), np.ones((2, 4)), CSRMatrix.zeros((3, 4)), backend=backend)
        assert out.nnz == 0
        assert out.shape == (3, 4)

    def test_backends_agree_pairwise(self):
        rng = np.random.default_rng(2)
        _, pattern = _random_pattern(rng, (12, 9), density=0.25)
        x = rng.standard_normal((8, 12))
        dy = rng.standard_normal((8, 9))
        results = [sdmm(x, dy, pattern, backend=b).data for b in ALL_BACKENDS]
        for other in results[1:]:
            np.testing.assert_allclose(results[0], other)

    def test_generic_fallback_without_kernel(self):
        """Backends registered without an sdmm kernel still dispatch."""

        class Minimal:
            name = "minimal"

            def __getattr__(self, attr):
                if attr == "sdmm":
                    raise AttributeError(attr)
                return getattr(backends.get_backend("reference"), attr)

        rng = np.random.default_rng(3)
        dense_pat, pattern = _random_pattern(rng, (5, 6))
        x = rng.standard_normal((4, 5))
        dy = rng.standard_normal((4, 6))
        got = sdmm(x, dy, pattern, backend=Minimal())
        rows, cols = np.nonzero(dense_pat)
        np.testing.assert_allclose(got.data, (x.T @ dy)[rows, cols])

    def test_shape_validation(self):
        pattern = CSRMatrix.eye(3)
        with pytest.raises(ShapeError):
            sdmm(np.ones(3), np.ones((2, 3)), pattern)
        with pytest.raises(ShapeError):
            sdmm(np.ones((2, 3)), np.ones((4, 3)), pattern)
        with pytest.raises(ShapeError):
            sdmm(np.ones((2, 3)), np.ones((2, 4)), pattern)


# --------------------------------------------------------------------------- #
# CSRTrainableLayer
# --------------------------------------------------------------------------- #
class TestCSRTrainableLayer:
    def _mask(self, seed=1, shape=(8, 6), density=0.4):
        rng = np.random.default_rng(seed)
        mask = (rng.random(shape) < density).astype(float)
        # repair dead rows/columns so the FNNT invariant holds
        mask[mask.sum(axis=1) == 0, 0] = 1.0
        mask[0, mask.sum(axis=0) == 0] = 1.0
        return mask

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("activation", ["relu", "sigmoid", "identity"])
    def test_matches_masked_layer_exactly(self, backend, activation):
        mask = self._mask()
        masked = MaskedSparseLayer(mask, activation=activation, seed=3)
        csr = CSRTrainableLayer(mask, activation=activation, seed=3, backend=backend)
        np.testing.assert_allclose(csr.effective_weights(), masked.effective_weights())
        rng = np.random.default_rng(4)
        x = rng.standard_normal((5, mask.shape[0]))
        up = rng.standard_normal((5, mask.shape[1]))
        np.testing.assert_allclose(csr.forward(x), masked.forward(x))
        np.testing.assert_allclose(csr.backward(up), masked.backward(up))
        rows, cols = np.nonzero(mask)
        np.testing.assert_allclose(csr.weight_gradient, masked.weight_gradient[rows, cols])
        np.testing.assert_allclose(csr.bias_gradient, masked.bias_gradient)

    def test_storage_is_o_nnz(self):
        mask = self._mask(shape=(20, 15), density=0.2)
        nnz = int(np.count_nonzero(mask))
        layer = CSRTrainableLayer(mask, seed=0)
        weights_param, biases_param = layer.parameters()
        assert weights_param.size == nnz
        assert weights_param.size < mask.size
        assert layer.gradients()[0].size == nnz
        assert layer.parameter_count == nnz + mask.shape[1]
        # optimizer state is keyed by the parameter arrays, so it is O(nnz) too
        optimizer = Adam(0.01)
        layer.forward(np.ones((2, 20)))
        layer.backward(np.ones((2, 15)))
        optimizer.step(layer.parameters(), layer.gradients())
        assert optimizer._first_moment[0].size == nnz
        assert optimizer._second_moment[0].size == nnz

    def test_optimizer_updates_reach_forward(self):
        mask = self._mask()
        layer = CSRTrainableLayer(mask, seed=0, activation="identity")
        x = np.ones((1, mask.shape[0]))
        before = layer.forward(x, training=False).copy()
        layer.forward(x)
        layer.backward(np.ones((1, mask.shape[1])))
        SGD(0.5).step(layer.parameters(), layer.gradients())
        after = layer.forward(x, training=False)
        assert not np.allclose(before, after)

    def test_second_backward_raises(self):
        mask = self._mask()
        layer = CSRTrainableLayer(mask, seed=0)
        up = np.ones((2, mask.shape[1]))
        layer.forward(np.ones((2, mask.shape[0])))
        layer.backward(up)
        with pytest.raises(ValidationError):
            layer.backward(up)

    def test_inference_forward_does_not_cache(self):
        mask = self._mask()
        layer = CSRTrainableLayer(mask, seed=0)
        layer.forward(np.ones((2, mask.shape[0])), training=False)
        with pytest.raises(ValidationError):
            layer.backward(np.ones((2, mask.shape[1])))

    def test_validation(self):
        with pytest.raises(ShapeError):
            CSRTrainableLayer(np.ones(4))
        with pytest.raises(ValidationError):
            CSRTrainableLayer(np.ones((2, 2)), init="bogus")
        layer = CSRTrainableLayer(self._mask(), seed=0)
        with pytest.raises(ShapeError):
            layer.forward(np.ones((2, 99)))
        layer.forward(np.ones((2, 8)))
        with pytest.raises(ShapeError):
            layer.backward(np.ones((2, 99)))

    def test_accepts_csr_mask_and_glorot(self):
        layer = CSRTrainableLayer(CSRMatrix.eye(4), seed=0, init="glorot")
        assert layer.connection_count == 4
        assert layer.density == pytest.approx(0.25)

    def test_to_csr_layer_detaches_weights(self):
        mask = self._mask()
        layer = CSRTrainableLayer(mask, seed=0)
        deployed = layer.to_csr_layer()
        assert isinstance(deployed, CSRSparseLayer)
        x = np.random.default_rng(0).standard_normal((3, mask.shape[0]))
        np.testing.assert_allclose(deployed.forward(x), layer.forward(x, training=False))
        layer.weights.data[:] += 1.0  # training must not mutate the deployed copy
        assert not np.allclose(deployed.weights.data, layer.weights.data)


class TestCSRTrainableGradients:
    def _numeric_gradient(self, model, loss, x, y, param, index, eps=1e-6):
        original = param.flat[index]
        param.flat[index] = original + eps
        plus = loss.value(model.forward(x, training=False), y)
        param.flat[index] = original - eps
        minus = loss.value(model.forward(x, training=False), y)
        param.flat[index] = original
        return (plus - minus) / (2 * eps)

    def _layer(self, kind, mask, activation, backend):
        if kind == "dense":
            return DenseLayer(mask.shape[0], mask.shape[1], activation=activation, seed=2)
        if kind == "masked":
            return MaskedSparseLayer(mask, activation=activation, seed=2)
        return CSRTrainableLayer(mask, activation=activation, seed=2, backend=backend)

    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    @pytest.mark.parametrize("activation", ["relu", "sigmoid", "identity"])
    @pytest.mark.parametrize("kind", ["dense", "masked", "csr"])
    def test_backprop_matches_finite_differences(self, kind, activation, backend):
        rng = np.random.default_rng(10)
        mask = (rng.random((5, 4)) < 0.6).astype(float)
        mask[mask.sum(axis=1) == 0, 0] = 1.0
        mask[0, mask.sum(axis=0) == 0] = 1.0
        hidden = self._layer(kind, mask, activation, backend)
        model = FeedforwardNetwork(
            [hidden, DenseLayer(4, 3, activation="identity", seed=3)]
        )
        loss = CrossEntropyLoss()
        x = rng.standard_normal((6, 5))
        y = one_hot(rng.integers(0, 3, size=6), 3)
        outputs = model.forward(x)
        model.backward(loss.gradient(outputs, y))
        analytic = [g.copy() for g in model.gradients()]
        for param, grad in zip(model.parameters(), analytic):
            indices = np.random.default_rng(11).choice(
                param.size, size=min(4, param.size), replace=False
            )
            for index in indices:
                numeric = self._numeric_gradient(model, loss, x, y, param, index)
                assert grad.flat[index] == pytest.approx(numeric, abs=1e-5)


OPTIMIZERS = {
    "sgd": lambda wd: SGD(0.05, weight_decay=wd),
    "momentum": lambda wd: Momentum(0.05, momentum=0.9, weight_decay=wd),
    "rmsprop": lambda wd: RMSProp(0.01, weight_decay=wd),
    "adam": lambda wd: Adam(0.01, weight_decay=wd),
}


class TestMaskInvariance:
    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    @pytest.mark.parametrize("opt_name", sorted(OPTIMIZERS))
    def test_weights_outside_mask_stay_exactly_zero(self, opt_name, weight_decay):
        rng = np.random.default_rng(20)
        mask = (rng.random((7, 5)) < 0.4).astype(float)
        mask[mask.sum(axis=1) == 0, 0] = 1.0
        mask[0, mask.sum(axis=0) == 0] = 1.0
        masked = MaskedSparseLayer(mask, seed=6)
        csr = CSRTrainableLayer(mask, seed=6)
        for layer in (masked, csr):
            model = FeedforwardNetwork(
                [layer, DenseLayer(5, 2, activation="identity", seed=7)]
            )
            optimizer = OPTIMIZERS[opt_name](weight_decay)
            loss = CrossEntropyLoss()
            data_rng = np.random.default_rng(21)
            for _ in range(15):
                x = data_rng.standard_normal((8, 7))
                y = one_hot(data_rng.integers(0, 2, size=8), 2)
                model.backward(loss.gradient(model.forward(x), y))
                optimizer.step(model.parameters(), model.gradients())
            dense = layer.effective_weights()
            assert np.all(dense[mask == 0] == 0.0)
            assert np.any(dense[mask == 1] != 0.0)


class TestTrainingEquivalence:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_csr_training_equals_masked_training(self, backend):
        """Same topology, seed, optimizer: identical curves and weights."""
        topology = erdos_renyi_fnnt([6, 10, 4], 0.5, seed=30)
        rng = np.random.default_rng(31)
        x = rng.standard_normal((60, 6))
        y = one_hot((x[:, 0] > 0).astype(int), 4)
        histories, weights = [], []
        for sparse_training in (False, True):
            model = model_from_topology(
                topology, seed=8, sparse_training=sparse_training, backend=backend
            )
            trainer = Trainer(model, Adam(0.01), batch_size=16, seed=9)
            history = trainer.fit(x, y, epochs=3)
            histories.append(history)
            weights.append(model.weight_matrices())
        assert histories[0].train_loss == pytest.approx(histories[1].train_loss)
        assert histories[0].train_accuracy == pytest.approx(histories[1].train_accuracy)
        for w_masked, w_csr in zip(weights[0], weights[1]):
            np.testing.assert_allclose(w_masked, w_csr, atol=1e-12)

    def test_builder_flag_produces_csr_layers(self):
        topology = erdos_renyi_fnnt([5, 8, 3], 0.5, seed=32)
        model = model_from_topology(topology, seed=0, sparse_training=True)
        assert any(isinstance(layer, CSRTrainableLayer) for layer in model.layers)
        assert not any(isinstance(layer, MaskedSparseLayer) for layer in model.layers)
        assert model.is_sparse()

    def test_to_sparse_inference_reuses_csr_pattern(self):
        topology = erdos_renyi_fnnt([5, 8, 3], 0.5, seed=33)
        model = model_from_topology(topology, seed=0, sparse_training=True)
        deployed = model.to_sparse_inference()
        x = np.random.default_rng(34).standard_normal((4, 5))
        expected = model.predict(x)
        got = x
        for layer in deployed:
            got = layer.forward(got)
        np.testing.assert_allclose(got, expected)


# --------------------------------------------------------------------------- #
# trainer bugfix sweep
# --------------------------------------------------------------------------- #
class TestTrainerFixes:
    def _toy(self, n=10, seed=0):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((n, 3))
        return x, one_hot((x[:, 0] > 0).astype(int), 2)

    def test_epoch_loss_weighted_by_batch_size(self):
        """A ragged last batch contributes per-sample, not per-batch."""
        x, y = self._toy(n=10)  # batch_size 4 -> batches of 4, 4, 2
        model = dense_model([3, 5, 2], seed=1)
        replica = copy.deepcopy(model)
        trainer = Trainer(model, SGD(0.1), batch_size=4, seed=0)
        reported = trainer.train_epoch(x, y, epoch_seed=42)
        # replay the identical shuffle/update sequence to get batch losses
        loss = CrossEntropyLoss()
        optimizer = SGD(0.1)
        losses, sizes = [], []
        for bx, by in minibatches(x, y, 4, shuffle=True, seed=42):
            out = replica.forward(bx)
            losses.append(loss.value(out, by))
            sizes.append(bx.shape[0])
            replica.backward(loss.gradient(out, by))
            optimizer.step(replica.parameters(), replica.gradients())
        assert sizes.count(2) == 1  # the ragged batch is actually present
        weighted = float(np.average(losses, weights=sizes))
        unweighted = float(np.mean(losses))
        assert abs(weighted - unweighted) > 1e-12
        assert reported == pytest.approx(weighted)

    @pytest.mark.parametrize("seed_kind", ["int", "generator"])
    def test_fit_twice_continues_the_shuffle_stream(self, seed_kind):
        """Two 1-epoch fits must replay one 2-epoch fit, not epoch 0 twice."""
        x, y = self._toy(n=40, seed=3)

        def make_trainer():
            model = dense_model([3, 5, 2], seed=4)
            seed = 7 if seed_kind == "int" else np.random.default_rng(7)
            return Trainer(model, SGD(0.1), batch_size=8, seed=seed), model

        split_trainer, split_model = make_trainer()
        split_trainer.fit(x, y, epochs=1)
        split_trainer.fit(x, y, epochs=1)
        whole_trainer, whole_model = make_trainer()
        whole_trainer.fit(x, y, epochs=2)
        for a, b in zip(split_model.parameters(), whole_model.parameters()):
            np.testing.assert_array_equal(a, b)
        assert split_trainer.history.train_loss == pytest.approx(
            whole_trainer.history.train_loss
        )
        # and the two epochs of the split run saw *different* shuffles
        assert split_trainer.history.train_loss[0] != pytest.approx(
            split_trainer.history.train_loss[1]
        )

    def test_lr_schedule_requires_learning_rate_attribute(self):
        class NoLrOptimizer:
            def step(self, parameters, gradients):  # pragma: no cover - never reached
                pass

        model = dense_model([3, 4, 2], seed=0)
        with pytest.raises(ValidationError, match="learning_rate"):
            Trainer(model, NoLrOptimizer(), lr_schedule=lambda epoch: 0.1)

    def test_lr_schedule_advances_across_fits(self):
        x, y = self._toy(n=24, seed=5)
        model = dense_model([3, 4, 2], seed=1)
        schedule = [1.0, 0.1, 0.01]
        trainer = Trainer(
            model, SGD(1.0), batch_size=8,
            lr_schedule=lambda epoch: schedule[epoch], seed=2,
        )
        trainer.fit(x, y, epochs=2)
        trainer.fit(x, y, epochs=1)
        assert trainer.history.learning_rates == pytest.approx(schedule)


# --------------------------------------------------------------------------- #
# magnitude pruning tie-break
# --------------------------------------------------------------------------- #
class TestPruningTieBreak:
    def test_all_equal_matrix_realizes_target_density(self):
        w = np.ones((6, 6))
        target = 0.25
        mask = magnitude_prune_mask(w, target)
        keep = max(1, int(round(target * w.size)))
        # exactly `keep` from the magnitude cut, plus at most one repair
        # entry per row and column
        assert keep <= int(mask.sum()) <= keep + sum(w.shape)
        assert mask.mean() < 1.0  # the old >=-threshold rule kept everything

    def test_tie_break_is_deterministic_row_major(self):
        w = np.full((4, 4), 2.0)
        mask = magnitude_prune_mask(w, 0.5)
        np.testing.assert_array_equal(mask, magnitude_prune_mask(w.copy(), 0.5))
        keep = 8
        # the magnitude cut keeps the first `keep` flat indices (rows 0-1);
        # repair adds the first column of the remaining rows
        expected = np.zeros(16, dtype=bool)
        expected[:keep] = True
        expected = expected.reshape(4, 4)
        expected[:, 0] = True
        np.testing.assert_array_equal(mask, expected)

    def test_distinct_magnitudes_unchanged(self):
        rng = np.random.default_rng(40)
        w = rng.standard_normal((8, 8))
        mask = magnitude_prune_mask(w, 0.25)
        keep = int(round(0.25 * w.size))
        cutoff = np.sort(np.abs(w).ravel())[-keep]
        assert int(mask.sum()) >= keep
        # with distinct magnitudes the top-keep set is unambiguous and must survive
        top = np.abs(w) >= cutoff
        assert int(top.sum()) == keep
        assert np.all(mask[top])


# --------------------------------------------------------------------------- #
# train-study harness and CLI
# --------------------------------------------------------------------------- #
class TestTrainStudy:
    def test_arm_validation(self):
        with pytest.raises(ValidationError, match="unknown arms"):
            accuracy_vs_density(arms=("radix-net", "bogus"))
        with pytest.raises(ValidationError, match="radix-net"):
            accuracy_vs_density(arms=("random-xnet",))
        with pytest.raises(ValidationError, match="dense"):
            accuracy_vs_density(arms=("radix-net", "pruned"))
        with pytest.raises(ValidationError, match="at least one arm"):
            accuracy_vs_density(arms=())
        with pytest.raises(ValidationError, match="duplicate"):
            accuracy_vs_density(arms=("dense", "dense"))

    def test_report_is_json_serializable_and_complete(self):
        report = train_study(
            datasets=("gaussian_mixture",),
            num_samples=120,
            epochs=1,
            seed=0,
            arms=("radix-net", "dense"),
            sparse_training=True,
        )
        encoded = json.loads(json.dumps(report))
        entry = encoded["datasets"]["gaussian_mixture"]
        assert set(entry["arms"]) == {"radix-net", "dense"}
        assert set(entry["accuracy_gap_vs_dense"]) == {"radix-net"}
        for arm in entry["arms"].values():
            assert 0.0 <= arm["val_accuracy"] <= 1.0
            assert 0.0 < arm["density"] <= 1.0
            assert arm["epochs_run"] == 1
        assert entry["arms"]["radix-net"]["density"] < 1.0
        assert encoded["config"]["sparse_training"] is True

    def test_sparse_and_masked_studies_agree(self):
        common = dict(
            datasets=("gaussian_mixture",), num_samples=120, epochs=1,
            seed=1, arms=("radix-net",),
        )
        sparse = train_study(sparse_training=True, **common)
        masked = train_study(sparse_training=False, **common)
        a = sparse["datasets"]["gaussian_mixture"]["arms"]["radix-net"]
        b = masked["datasets"]["gaussian_mixture"]["arms"]["radix-net"]
        assert a["train_loss"] == pytest.approx(b["train_loss"])
        assert a["val_accuracy"] == pytest.approx(b["val_accuracy"])

    def test_cli_train_study_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "study.json"
        code = main([
            "train-study", "--datasets", "gaussian_mixture",
            "--arms", "radix-net,dense", "--epochs", "1",
            "--samples", "120", "--output", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "radix-net" in captured and "gap vs dense" in captured
        report = json.loads(out.read_text())
        assert report["config"]["arms"] == ["radix-net", "dense"]
        assert "gaussian_mixture" in report["datasets"]

    def test_cli_rejects_bad_arms(self, capsys):
        from repro.cli import main

        code = main([
            "train-study", "--datasets", "gaussian_mixture",
            "--arms", "bogus", "--epochs", "1", "--samples", "80",
        ])
        assert code == 1
        assert "unknown arms" in capsys.readouterr().err
