"""Cross-cutting property-based tests.

Hypothesis-driven invariants that tie several subsystems together: the
construction, the density theory, the path-count theory, the sparse
kernels, and the NN layer equivalences must all agree on randomly drawn
admissible inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.density import exact_density
from repro.core.mixed_radix_topology import mixed_radix_topology
from repro.core.radixnet import RadixNetSpec, generate_from_spec, radixnet_edge_count
from repro.core.theory import predicted_radixnet_path_count
from repro.nn.layers import DenseLayer, MaskedSparseLayer
from repro.numeral.factorization import divisors, radix_lists_with_product
from repro.numeral.mixed_radix import MixedRadixSystem
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import chain_product, kron, spgemm
from repro.topology.properties import (
    degree_statistics,
    minimum_density,
    uniform_path_count,
)


@st.composite
def admissible_spec(draw):
    """A random admissible (RadixNetSpec) with small N' and small widths."""
    n_prime = draw(st.sampled_from([4, 6, 8, 9, 10, 12]))
    lists = radix_lists_with_product(n_prime)
    systems = [draw(st.sampled_from(lists)) for _ in range(draw(st.integers(1, 2)))]
    if draw(st.booleans()):
        q = draw(st.sampled_from([d for d in divisors(n_prime) if d >= 2]))
        systems.append(draw(st.sampled_from(radix_lists_with_product(q))))
    total = sum(len(s) for s in systems)
    widths = [draw(st.integers(1, 3)) for _ in range(total + 1)]
    return RadixNetSpec(systems, widths)


class TestConstructionInvariants:
    @given(admissible_spec())
    @settings(max_examples=30, deadline=None)
    def test_construction_consistency(self, spec):
        """Edge count, density, path count, and regularity all agree with theory."""
        net = generate_from_spec(spec)
        # closed-form edge count
        assert net.num_edges == radixnet_edge_count(spec)
        # eq. (4) density equals realized density
        assert net.density() == pytest.approx(exact_density(spec))
        # density never below the FNNT minimum
        assert net.density() >= minimum_density(net.layer_sizes) - 1e-12
        # Theorem-1 path count
        assert uniform_path_count(net) == predicted_radixnet_path_count(spec)
        # regular degrees layer by layer
        for stat in degree_statistics(net):
            assert stat.out_regular and stat.in_regular

    @given(admissible_spec())
    @settings(max_examples=20, deadline=None)
    def test_path_count_matches_kronecker_identity(self, spec):
        """Chain product of expanded submatrices equals (prod W*) (x) (prod W).

        This is the mixed-product identity the Appendix proof of Theorem 1
        rests on, checked numerically end to end.
        """
        net = generate_from_spec(spec)
        chained = chain_product(list(net.submatrices)).to_dense()
        ones_chain = chain_product(
            [CSRMatrix.ones((spec.widths[i], spec.widths[i + 1])) for i in range(spec.total_radices)]
        ).to_dense()
        from repro.core.radixnet import emr_submatrices

        emr_chain = chain_product(emr_submatrices(spec)).to_dense()
        np.testing.assert_allclose(chained, np.kron(ones_chain, emr_chain))

    @given(st.lists(st.integers(2, 5), min_size=1, max_size=3))
    @settings(max_examples=25, deadline=None)
    def test_mixed_radix_topology_is_perfectly_regular(self, radices):
        net = mixed_radix_topology(tuple(radices))
        system = MixedRadixSystem(tuple(radices))
        for level, stat in enumerate(degree_statistics(net)):
            assert stat.out_degree_min == stat.out_degree_max == system[level]
            assert stat.in_degree_min == stat.in_degree_max == system[level]


class TestSparseKernelInvariants:
    small = st.integers(1, 4)

    @given(small, small, small, small, st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_kron_spgemm_mixed_product(self, m, n, p, q, seed):
        """(A (x) B)(C (x) D) = (AC) (x) (BD) for random sparse operands."""
        rng = np.random.default_rng(seed)

        def random_csr(rows, cols):
            dense = rng.random((rows, cols)) * (rng.random((rows, cols)) < 0.6)
            return CSRMatrix.from_dense(dense), dense

        a, da = random_csr(m, n)
        c, dc = random_csr(n, p)
        b, db = random_csr(q, m)
        d, dd = random_csr(m, q)
        left = spgemm(kron(a, b), kron(c, d)).to_dense()
        right = np.kron(da @ dc, db @ dd)
        np.testing.assert_allclose(left, right, atol=1e-10)

    @given(st.integers(2, 10), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_permutation_powers_form_a_group(self, n, seed):
        from repro.core.permutation import cyclic_permutation_matrix

        rng = np.random.default_rng(seed)
        j, k = int(rng.integers(0, 2 * n)), int(rng.integers(0, 2 * n))
        product = spgemm(
            cyclic_permutation_matrix(n, j), cyclic_permutation_matrix(n, k)
        ).to_dense()
        np.testing.assert_array_equal(product, cyclic_permutation_matrix(n, j + k).to_dense())


class TestLayerEquivalence:
    @given(st.integers(2, 6), st.integers(2, 6), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_full_mask_equals_dense_layer(self, fan_in, fan_out, seed):
        """A MaskedSparseLayer with an all-ones mask is exactly a DenseLayer."""
        masked = MaskedSparseLayer(
            np.ones((fan_in, fan_out)), seed=seed, activation="tanh", fan_in_correction=False
        )
        dense = DenseLayer(fan_in, fan_out, seed=seed, activation="tanh")
        x = np.random.default_rng(seed + 1).normal(size=(3, fan_in))
        np.testing.assert_allclose(masked.forward(x), dense.forward(x))

    @given(st.integers(2, 6), st.integers(2, 6), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_masked_forward_equals_dense_with_zeroed_weights(self, fan_in, fan_out, seed):
        """Masking weights is equivalent to a dense layer whose pruned weights are zero."""
        rng = np.random.default_rng(seed)
        mask = rng.random((fan_in, fan_out)) < 0.5
        mask[mask.sum(axis=1) == 0, 0] = True
        mask[0, mask.sum(axis=0) == 0] = True
        layer = MaskedSparseLayer(mask.astype(float), seed=seed, fan_in_correction=False)
        x = rng.normal(size=(4, fan_in))
        manual = np.maximum(x @ (layer.weights * mask) + layer.biases, 0.0)
        np.testing.assert_allclose(layer.forward(x), manual)
