"""Tests for repro.nn activations, initializers, losses, optimizers, schedulers, metrics, data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError, ValidationError
from repro.nn.activations import get_activation, identity, relu, sigmoid, softmax_stable, tanh
from repro.nn.data import minibatches, one_hot, standardize, train_val_split
from repro.nn.initializers import glorot_uniform, he_normal, sparse_corrected_scale, zeros_bias
from repro.nn.losses import CrossEntropyLoss, MeanSquaredErrorLoss
from repro.nn.metrics import accuracy, confusion_matrix, per_class_accuracy, top_k_accuracy
from repro.nn.optimizers import SGD, Adam, Momentum, RMSProp
from repro.nn.schedulers import ConstantSchedule, CosineSchedule, StepDecaySchedule


class TestActivations:
    def test_relu_values(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(relu(x), [0.0, 0.0, 2.0])

    def test_relu_derivative(self):
        y = relu(np.array([-1.0, 3.0]))
        np.testing.assert_array_equal(relu.derivative_from_output(y), [0.0, 1.0])

    def test_sigmoid_range_and_symmetry(self):
        x = np.linspace(-10, 10, 21)
        y = sigmoid(x)
        assert np.all((y > 0) & (y < 1))
        np.testing.assert_allclose(y + sigmoid(-x), np.ones_like(x), atol=1e-12)

    def test_sigmoid_extreme_values_stable(self):
        y = sigmoid(np.array([-1000.0, 1000.0]))
        assert np.isfinite(y).all()

    def test_sigmoid_derivative(self):
        y = sigmoid(np.array([0.0]))
        np.testing.assert_allclose(sigmoid.derivative_from_output(y), [0.25])

    def test_tanh_and_identity(self):
        x = np.array([0.5, -0.5])
        np.testing.assert_allclose(tanh(x), np.tanh(x))
        np.testing.assert_array_equal(identity(x), x)
        np.testing.assert_array_equal(identity.derivative_from_output(x), [1.0, 1.0])

    def test_numerical_derivative_agreement(self):
        # derivative_from_output matches finite differences for smooth activations
        for act in (sigmoid, tanh):
            x = np.linspace(-2, 2, 9)
            eps = 1e-6
            numeric = (act(x + eps) - act(x - eps)) / (2 * eps)
            analytic = act.derivative_from_output(act(x))
            np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_get_activation_by_name(self):
        assert get_activation("relu") is relu
        assert get_activation(tanh) is tanh
        with pytest.raises(KeyError):
            get_activation("swish")

    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(5, 7))
        probs = softmax_stable(logits, axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(5))

    def test_softmax_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax_stable(logits), softmax_stable(logits + 100.0))


class TestInitializers:
    def test_glorot_bounds(self):
        w = glorot_uniform(30, 20, seed=0)
        limit = np.sqrt(6.0 / 50)
        assert w.shape == (30, 20)
        assert np.all(np.abs(w) <= limit)

    def test_he_scale(self):
        w = he_normal(1000, 50, seed=1)
        assert w.std() == pytest.approx(np.sqrt(2.0 / 1000), rel=0.1)

    def test_rejects_bad_fans(self):
        with pytest.raises(ValidationError):
            glorot_uniform(0, 5)
        with pytest.raises(ValidationError):
            he_normal(5, -1)

    def test_sparse_corrected_scale_values(self):
        mask = np.array([[1, 0], [1, 0], [1, 1], [1, 1]])
        scale = sparse_corrected_scale(mask)
        np.testing.assert_allclose(scale, [1.0, np.sqrt(4 / 2)])

    def test_sparse_corrected_scale_dense_mask_is_identity(self):
        np.testing.assert_allclose(sparse_corrected_scale(np.ones((5, 3))), np.ones(3))

    def test_zeros_bias(self):
        np.testing.assert_array_equal(zeros_bias(4), np.zeros(4))
        with pytest.raises(ValidationError):
            zeros_bias(0)


class TestLosses:
    def test_cross_entropy_perfect_prediction(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        targets = np.eye(2)
        assert CrossEntropyLoss().value(logits, targets) == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_uniform_prediction(self):
        logits = np.zeros((3, 4))
        targets = one_hot(np.array([0, 1, 2]), 4)
        assert CrossEntropyLoss().value(logits, targets) == pytest.approx(np.log(4))

    def test_cross_entropy_gradient_numerically(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 3))
        targets = one_hot(rng.integers(0, 3, size=4), 3)
        loss = CrossEntropyLoss()
        analytic = loss.gradient(logits, targets)
        eps = 1e-6
        numeric = np.zeros_like(logits)
        for i in range(logits.shape[0]):
            for j in range(logits.shape[1]):
                plus, minus = logits.copy(), logits.copy()
                plus[i, j] += eps
                minus[i, j] -= eps
                numeric[i, j] = (loss.value(plus, targets) - loss.value(minus, targets)) / (2 * eps)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_mse_value_and_gradient(self):
        loss = MeanSquaredErrorLoss()
        outputs = np.array([[1.0, 2.0]])
        targets = np.array([[0.0, 0.0]])
        assert loss.value(outputs, targets) == pytest.approx(2.5)
        np.testing.assert_allclose(loss.gradient(outputs, targets), [[1.0, 2.0]])

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            CrossEntropyLoss().value(np.zeros((2, 3)), np.zeros((2, 2)))
        with pytest.raises(ShapeError):
            MeanSquaredErrorLoss().value(np.zeros(3), np.zeros(3))


class TestOptimizers:
    def _quadratic_descent(self, optimizer, steps=200):
        # minimize f(w) = ||w - 3||^2 starting from 0
        param = np.zeros(4)
        for _ in range(steps):
            grad = 2 * (param - 3.0)
            optimizer.step([param], [grad])
        return param

    def test_sgd_converges(self):
        assert np.allclose(self._quadratic_descent(SGD(0.1)), 3.0, atol=1e-3)

    def test_momentum_converges(self):
        assert np.allclose(self._quadratic_descent(Momentum(0.05, 0.9)), 3.0, atol=1e-2)

    def test_nesterov_converges(self):
        optimizer = Momentum(0.05, 0.9, nesterov=True)
        assert np.allclose(self._quadratic_descent(optimizer), 3.0, atol=1e-2)

    def test_rmsprop_converges(self):
        assert np.allclose(self._quadratic_descent(RMSProp(0.05), steps=400), 3.0, atol=1e-2)

    def test_adam_converges(self):
        assert np.allclose(self._quadratic_descent(Adam(0.1), steps=400), 3.0, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        plain = self._quadratic_descent(SGD(0.1))
        decayed = self._quadratic_descent(SGD(0.1, weight_decay=1.0))
        assert np.all(np.abs(decayed) < np.abs(plain))

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValidationError):
            SGD(-0.1)
        with pytest.raises(ValidationError):
            Momentum(0.1, 1.5)
        with pytest.raises(ValidationError):
            Adam(0.1, beta1=1.0)
        with pytest.raises(ValidationError):
            RMSProp(0.1, decay=-0.2)


class TestSchedulers:
    def test_constant(self):
        schedule = ConstantSchedule(0.01)
        assert schedule(0) == schedule(100) == 0.01

    def test_step_decay(self):
        schedule = StepDecaySchedule(1.0, factor=0.5, step_size=10)
        assert schedule(0) == 1.0
        assert schedule(10) == 0.5
        assert schedule(25) == 0.25

    def test_cosine_endpoints(self):
        schedule = CosineSchedule(1.0, total_epochs=10, minimum=0.1)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(10) == pytest.approx(0.1)
        assert schedule(5) == pytest.approx(0.55)

    def test_cosine_monotone_decreasing(self):
        schedule = CosineSchedule(1.0, total_epochs=20)
        values = [schedule(e) for e in range(21)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValidationError):
            ConstantSchedule(0.0)
        with pytest.raises(ValidationError):
            StepDecaySchedule(1.0, factor=0.0)
        with pytest.raises(ValidationError):
            CosineSchedule(1.0, 0)
        with pytest.raises(ValidationError):
            StepDecaySchedule(1.0)(-1)


class TestMetrics:
    def test_accuracy_with_labels(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_accuracy_with_one_hot(self):
        predictions = np.array([[0.9, 0.1], [0.2, 0.8]])
        targets = one_hot(np.array([0, 0]), 2)
        assert accuracy(predictions, targets) == 0.5

    def test_accuracy_empty_rejected(self):
        with pytest.raises(ValidationError):
            accuracy(np.array([]), np.array([]))

    def test_top_k(self):
        scores = np.array([[0.1, 0.2, 0.7], [0.5, 0.4, 0.1]])
        targets = np.array([1, 1])
        assert top_k_accuracy(scores, targets, k=1) == 0.0
        assert top_k_accuracy(scores, targets, k=2) == 1.0

    def test_top_k_validation(self):
        with pytest.raises(ValidationError):
            top_k_accuracy(np.zeros((2, 3)), np.array([0, 1]), k=4)

    def test_confusion_matrix(self):
        cm = confusion_matrix(np.array([0, 1, 1, 2]), np.array([0, 1, 2, 2]))
        assert cm[1, 1] == 1
        assert cm[2, 1] == 1
        assert cm.sum() == 4

    def test_per_class_accuracy(self):
        result = per_class_accuracy(np.array([0, 1, 0]), np.array([0, 1, 1]), num_classes=2)
        np.testing.assert_allclose(result, [1.0, 0.5])


class TestDataUtilities:
    def test_one_hot_shape_and_values(self):
        encoded = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(encoded, [[1, 0, 0], [0, 0, 1], [0, 1, 0]])

    def test_one_hot_infers_classes(self):
        assert one_hot(np.array([0, 3])).shape == (2, 4)

    def test_one_hot_validation(self):
        with pytest.raises(ValidationError):
            one_hot(np.array([0, 5]), 3)
        with pytest.raises(ValidationError):
            one_hot(np.array([-1]))

    def test_train_val_split_sizes_and_disjointness(self):
        x = np.arange(100).reshape(50, 2).astype(float)
        y = np.arange(50)
        train_x, train_y, val_x, val_y = train_val_split(x, y, val_fraction=0.2, seed=0)
        assert len(val_x) == 10 and len(train_x) == 40
        assert set(train_y).isdisjoint(set(val_y)) is False or len(set(train_y) | set(val_y)) == 50

    def test_train_val_split_validation(self):
        with pytest.raises(ValidationError):
            train_val_split(np.zeros((4, 2)), np.zeros(4), val_fraction=1.0)
        with pytest.raises(ShapeError):
            train_val_split(np.zeros((4, 2)), np.zeros(3))

    def test_minibatches_cover_all_samples(self):
        x = np.arange(23).reshape(23, 1).astype(float)
        y = np.arange(23)
        seen = []
        for bx, _ in minibatches(x, y, 5, shuffle=True, seed=1):
            seen.extend(bx.ravel().tolist())
        assert sorted(seen) == list(range(23))

    def test_minibatches_drop_last(self):
        x = np.zeros((10, 1))
        y = np.zeros(10)
        batches = list(minibatches(x, y, 4, shuffle=False, drop_last=True))
        assert len(batches) == 2

    def test_minibatches_validation(self):
        with pytest.raises(ValidationError):
            list(minibatches(np.zeros((4, 1)), np.zeros(4), 0))

    def test_standardize_and_reapply(self):
        rng = np.random.default_rng(0)
        x = rng.normal(5.0, 3.0, size=(200, 4))
        standardized, mean, std = standardize(x)
        np.testing.assert_allclose(standardized.mean(axis=0), np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(standardized.std(axis=0), np.ones(4), atol=1e-10)
        held_out, _, _ = standardize(x[:10], mean=mean, std=std)
        np.testing.assert_allclose(held_out, standardized[:10])

    def test_standardize_constant_column(self):
        x = np.column_stack([np.ones(5), np.arange(5.0)])
        standardized, _, _ = standardize(x)
        np.testing.assert_array_equal(standardized[:, 0], np.zeros(5))
