"""Tests for repro.core.kronecker and repro.core.density."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.core.density import (
    approximate_density,
    asymptotic_density,
    density_error_bound,
    density_surface,
    effective_depth,
    exact_density,
    measured_density_grid,
)
from repro.core.kronecker import (
    dense_reference_edge_count,
    expanded_layer_sizes,
    kron_expand_submatrices,
    kron_node_coordinates,
    kron_node_index,
)
from repro.core.mixed_radix_topology import mixed_radix_submatrices
from repro.core.radixnet import RadixNetSpec, generate_from_spec
from repro.sparse.csr import CSRMatrix


class TestKroneckerExpansion:
    def test_expansion_matches_numpy_kron(self):
        subs = mixed_radix_submatrices((2, 2))
        expanded = kron_expand_submatrices(subs, [2, 3, 1])
        expected_first = np.kron(np.ones((2, 3)), subs[0].to_dense())
        np.testing.assert_array_equal(expanded[0].to_dense(), expected_first)
        expected_second = np.kron(np.ones((3, 1)), subs[1].to_dense())
        np.testing.assert_array_equal(expanded[1].to_dense(), expected_second)

    def test_width_count_mismatch(self):
        subs = mixed_radix_submatrices((2, 2))
        with pytest.raises(ValidationError):
            kron_expand_submatrices(subs, [1, 1])

    def test_width_must_be_positive(self):
        subs = mixed_radix_submatrices((2,))
        with pytest.raises(ValidationError):
            kron_expand_submatrices(subs, [1, 0])

    def test_unit_widths_are_identity_operation(self):
        subs = mixed_radix_submatrices((3, 2))
        expanded = kron_expand_submatrices(subs, [1, 1, 1])
        for original, new in zip(subs, expanded):
            np.testing.assert_array_equal(original.to_dense(), new.to_dense())

    def test_node_index_round_trip(self):
        n_prime = 6
        for dense_index in range(4):
            for radix_index in range(n_prime):
                flat = kron_node_index(dense_index, radix_index, n_prime)
                assert kron_node_coordinates(flat, n_prime) == (dense_index, radix_index)

    def test_node_index_validation(self):
        with pytest.raises(ValidationError):
            kron_node_index(0, 9, 4)
        with pytest.raises(ValidationError):
            kron_node_index(-1, 0, 4)
        with pytest.raises(ValidationError):
            kron_node_coordinates(-1, 4)

    def test_expanded_layer_sizes(self):
        assert expanded_layer_sizes([1, 2, 3], 4) == (4, 8, 12)

    def test_dense_reference_edge_count(self):
        assert dense_reference_edge_count([1, 2], 4) == 4 * 8


class TestExactDensity:
    def test_equation_4_manual_value(self):
        # N* = ((2,2),(2,2)), D = (1,2,2,2,1), N' = 4
        # numerator = sum Nbar_i D_{i-1} D_i = 2*2 + 2*4 + 2*4 + 2*2 = 24
        # denominator = 2 + 4 + 4 + 2 = 12 ; density = 24 / (4 * 12) = 0.5
        spec = RadixNetSpec([(2, 2), (2, 2)], [1, 2, 2, 2, 1])
        assert exact_density(spec) == pytest.approx(0.5)

    def test_matches_constructed_density(self, small_spec, small_radixnet):
        assert exact_density(small_spec) == pytest.approx(small_radixnet.density())

    def test_accepts_raw_systems_and_widths(self):
        value = exact_density([(2, 2), (4,)], [1, 1, 1, 1])
        spec = RadixNetSpec([(2, 2), (4,)], [1, 1, 1, 1])
        assert value == exact_density(spec)

    def test_spec_with_widths_rejected(self, small_spec):
        with pytest.raises(ValidationError):
            exact_density(small_spec, [1, 1, 1, 1, 1])

    def test_raw_systems_without_widths_rejected(self):
        with pytest.raises(ValidationError):
            exact_density([(2, 2)])

    def test_uniform_radices_density_equals_mu_over_nprime(self):
        # zero-variance radices: eq. (5) is exact regardless of D
        spec = RadixNetSpec([(3, 3), (3, 3)], [1, 5, 2, 7, 1])
        assert exact_density(spec) == pytest.approx(approximate_density(spec))

    def test_density_error_grows_with_variance(self):
        low = RadixNetSpec([(4, 4)], [1, 3, 1])
        high = RadixNetSpec([(2, 8)], [1, 3, 1])
        assert density_error_bound(low) <= density_error_bound(high)


class TestAsymptoticDensity:
    def test_equation_6_value(self):
        assert asymptotic_density(2, 3) == pytest.approx(0.25)
        assert asymptotic_density(10, 1) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            asymptotic_density(1.0, 2)
        with pytest.raises(ValidationError):
            asymptotic_density(2.0, 0.5)

    def test_effective_depth(self):
        spec = RadixNetSpec([(4, 4)], [1, 1, 1])
        assert effective_depth(spec) == pytest.approx(2.0)

    def test_uniform_system_asymptotic_is_exact(self):
        # single system of d equal radices: exact density == mu^(1-d)
        spec = RadixNetSpec([(3, 3, 3)], [1, 1, 1, 1])
        assert exact_density(spec) == pytest.approx(asymptotic_density(3, 3))

    @given(st.integers(2, 6), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_uniform_property(self, mu, depth):
        spec = RadixNetSpec([(mu,) * depth], [1] * (depth + 1))
        assert exact_density(spec) == pytest.approx(asymptotic_density(mu, depth))


class TestDensitySurface:
    def test_shape_and_orientation(self):
        surface = density_surface([2, 4], [1, 2, 3])
        assert surface.shape == (3, 2)
        # d = 1 row is all ones
        np.testing.assert_allclose(surface[0], [1.0, 1.0])
        # larger mu at fixed d > 1 is sparser
        assert surface[2, 1] < surface[2, 0]

    def test_monotonic_in_depth(self):
        surface = density_surface([3], [1, 2, 3, 4])
        assert np.all(np.diff(surface[:, 0]) < 0)

    def test_validation(self):
        with pytest.raises(ValidationError):
            density_surface([], [1])
        with pytest.raises(ValidationError):
            density_surface([1.0], [1])
        with pytest.raises(ValidationError):
            density_surface([2.0], [0])

    def test_measured_grid_matches_formula(self):
        mus, depths = (2, 3, 4), (1, 2, 3)
        formula = density_surface(mus, depths)
        measured = measured_density_grid(mus, depths)
        np.testing.assert_allclose(measured, formula, rtol=1e-12)
