"""Tests for repro.sparse.semiring and repro.sparse.convert."""

import numpy as np
import pytest

from repro.errors import ShapeError, ValidationError
from repro.sparse.convert import (
    from_dense,
    from_scipy,
    to_dense,
    to_networkx_bipartite,
    to_scipy_csr,
)
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import spgemm
from repro.sparse.semiring import (
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    semiring_chain_product,
    semiring_spgemm,
)


def _random_binary(shape, density, seed):
    rng = np.random.default_rng(seed)
    dense = (rng.random(shape) < density).astype(np.float64)
    return CSRMatrix.from_dense(dense), dense


class TestSemirings:
    def test_plus_times_matches_spgemm(self):
        a, _ = _random_binary((4, 5), 0.5, 1)
        b, _ = _random_binary((5, 3), 0.5, 2)
        np.testing.assert_allclose(
            semiring_spgemm(a, b, PLUS_TIMES).to_dense(), spgemm(a, b).to_dense()
        )

    def test_or_and_gives_reachability(self):
        a, da = _random_binary((4, 4), 0.4, 3)
        b, db = _random_binary((4, 4), 0.4, 4)
        boolean = semiring_spgemm(a, b, OR_AND).to_dense()
        expected = ((da @ db) > 0).astype(float)
        np.testing.assert_allclose(boolean, expected)

    def test_or_and_values_are_binary(self):
        a, _ = _random_binary((5, 5), 0.6, 5)
        result = semiring_spgemm(a, a, OR_AND)
        assert set(np.unique(result.to_dense())).issubset({0.0, 1.0})

    def test_min_plus_single_hop(self):
        # adjacency with unit weights: min-plus product counts 2-hop shortest distance
        dense = np.array([[0.0, 1.0], [1.0, 0.0]])
        a = CSRMatrix.from_dense(dense)
        result = semiring_spgemm(a, a, MIN_PLUS).to_dense()
        # path 0->1->0 has weight 2 (stored zeros are absent, so only 1+1 paths exist)
        assert result[0, 0] == 2.0

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            semiring_spgemm(CSRMatrix.eye(2), CSRMatrix.eye(3), PLUS_TIMES)

    def test_chain_product_matches_repeated(self):
        a, _ = _random_binary((3, 3), 0.5, 6)
        chained = semiring_chain_product([a, a, a], PLUS_TIMES).to_dense()
        stepwise = semiring_spgemm(semiring_spgemm(a, a, PLUS_TIMES), a, PLUS_TIMES).to_dense()
        np.testing.assert_allclose(chained, stepwise)

    def test_chain_product_empty_raises(self):
        with pytest.raises(ShapeError):
            semiring_chain_product([], PLUS_TIMES)

    def test_repr_names(self):
        assert "plus_times" in repr(PLUS_TIMES)


class TestConvert:
    def test_to_dense_accepts_both_types(self):
        csr = CSRMatrix.eye(3)
        np.testing.assert_array_equal(to_dense(csr), np.eye(3))
        np.testing.assert_array_equal(to_dense(np.eye(3)), np.eye(3))

    def test_to_dense_rejects_1d(self):
        with pytest.raises(ShapeError):
            to_dense(np.zeros(3))

    def test_from_dense(self):
        dense = np.array([[0.0, 2.0], [0.0, 0.0]])
        assert from_dense(dense).nnz == 1

    def test_scipy_round_trip(self):
        csr, dense = _random_binary((5, 4), 0.4, 7)
        scipy_matrix = to_scipy_csr(csr)
        back = from_scipy(scipy_matrix)
        np.testing.assert_allclose(back.to_dense(), dense)

    def test_from_scipy_rejects_dense(self):
        with pytest.raises(ValidationError):
            from_scipy(np.eye(3))

    def test_from_scipy_accepts_coo(self):
        import scipy.sparse as sp

        matrix = sp.coo_matrix(np.array([[1.0, 0.0], [0.0, 2.0]]))
        np.testing.assert_allclose(from_scipy(matrix).to_dense(), matrix.toarray())

    def test_to_networkx_bipartite(self):
        csr = CSRMatrix.from_dense(np.array([[1.0, 0.0], [1.0, 1.0]]))
        graph = to_networkx_bipartite(csr)
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3
        assert graph.has_edge(("in", 0), ("out", 0))
        assert not graph.has_edge(("in", 0), ("out", 1))

    def test_to_networkx_edge_weights(self):
        csr = CSRMatrix.from_dense(np.array([[2.5]]))
        graph = to_networkx_bipartite(csr)
        assert graph[("in", 0)][("out", 0)]["weight"] == 2.5
