"""Tests for repro.topology.properties, random_graphs, and io."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SerializationError, TopologyError, ValidationError
from repro.topology.fnnt import FNNT
from repro.topology.io import load_npz, load_tsv_layers, save_npz, save_tsv_layers
from repro.topology.properties import (
    degree_statistics,
    density,
    is_path_connected,
    is_symmetric,
    minimum_density,
    path_count_matrix,
    uniform_path_count,
)
from repro.topology.random_graphs import erdos_renyi_fnnt, fixed_out_degree_fnnt


class TestProperties:
    def test_dense_is_symmetric_with_known_count(self):
        net = FNNT([np.ones((2, 3)), np.ones((3, 4))])
        assert is_symmetric(net)
        assert uniform_path_count(net) == 3

    def test_non_symmetric_raises_on_uniform_count(self):
        sub = np.array([[1.0, 1.0], [1.0, 0.0]])
        net = FNNT([sub, np.ones((2, 2))], validate=False)
        assert not is_symmetric(net)
        with pytest.raises(TopologyError):
            uniform_path_count(net)

    def test_path_connected_boolean_path_agrees(self):
        net = FNNT([np.ones((3, 3)), np.eye(3)], validate=False)
        assert is_path_connected(net) == is_path_connected(net, use_boolean=True)

    def test_identity_chain_not_connected(self):
        net = FNNT([np.eye(4), np.eye(4)], validate=False)
        assert not is_path_connected(net)

    def test_path_count_matrix_values(self):
        # two parallel 2-hop routes between single input and single output
        w1 = np.ones((1, 2))
        w2 = np.ones((2, 1))
        counts = path_count_matrix(FNNT([w1, w2])).to_dense()
        assert counts[0, 0] == 2

    def test_density_function_matches_method(self):
        net = FNNT([np.eye(3)])
        assert density(net) == net.density()

    def test_minimum_density_formula(self):
        # paper: sum |U_{i-1}| / sum |U_{i-1}||U_i|
        assert minimum_density([4, 4]) == 4 / 16
        assert minimum_density([2, 3, 4]) == (2 + 3) / (6 + 12)

    def test_minimum_density_validation(self):
        with pytest.raises(TopologyError):
            minimum_density([5])
        with pytest.raises(TopologyError):
            minimum_density([3, 0])

    def test_degree_statistics_regularity(self):
        net = FNNT([np.eye(3) + np.roll(np.eye(3), 1, axis=1)])
        stats = degree_statistics(net)
        assert len(stats) == 1
        assert stats[0].out_regular
        assert stats[0].in_regular
        assert stats[0].out_degree_mean == 2.0

    def test_degree_statistics_irregular(self):
        sub = np.array([[1.0, 1.0, 1.0], [1.0, 0.0, 0.0], [0.0, 1.0, 1.0]])
        stats = degree_statistics(FNNT([sub]))[0]
        assert not stats.out_regular
        assert stats.out_degree_min == 1
        assert stats.out_degree_max == 3


class TestRandomGraphs:
    def test_erdos_renyi_valid_fnnt(self):
        net = erdos_renyi_fnnt([10, 12, 8], 0.3, seed=0)
        net.validate()  # no zero rows/cols after repair
        assert net.layer_sizes == (10, 12, 8)

    def test_erdos_renyi_density_close_to_p(self):
        net = erdos_renyi_fnnt([50, 50, 50], 0.4, seed=1)
        assert abs(net.density() - 0.4) < 0.08

    def test_erdos_renyi_extreme_sparsity_still_valid(self):
        net = erdos_renyi_fnnt([10, 10], 0.0, seed=2)
        net.validate()

    def test_erdos_renyi_determinism(self):
        a = erdos_renyi_fnnt([8, 8], 0.3, seed=5)
        b = erdos_renyi_fnnt([8, 8], 0.3, seed=5)
        assert a.same_topology(b)

    def test_erdos_renyi_rejects_single_layer(self):
        with pytest.raises(ValidationError):
            erdos_renyi_fnnt([4], 0.5)

    def test_erdos_renyi_rejects_bad_probability(self):
        with pytest.raises(ValidationError):
            erdos_renyi_fnnt([4, 4], 1.5)

    def test_fixed_out_degree_exact(self):
        net = fixed_out_degree_fnnt([12, 12], 3, seed=3)
        degrees = net.submatrix(0).row_degrees()
        assert degrees.min() >= 3  # repair can only add edges

    def test_fixed_out_degree_clipped_to_next_width(self):
        net = fixed_out_degree_fnnt([4, 2], 10, seed=4)
        assert net.submatrix(0).row_degrees().max() <= 2

    def test_fixed_out_degree_rejects_zero(self):
        with pytest.raises(ValidationError):
            fixed_out_degree_fnnt([4, 4], 0)

    @given(st.integers(2, 12), st.integers(2, 12), st.floats(0.1, 0.9), st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_erdos_renyi_always_valid_property(self, a, b, p, seed):
        net = erdos_renyi_fnnt([a, b], p, seed=seed)
        net.validate()


class TestIO:
    def test_npz_round_trip(self, tmp_path, small_radixnet):
        path = tmp_path / "topo.npz"
        save_npz(small_radixnet, path)
        loaded = load_npz(path)
        assert loaded.name == small_radixnet.name
        assert loaded.same_topology(small_radixnet)

    def test_npz_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_npz(tmp_path / "missing.npz")

    def test_tsv_round_trip(self, tmp_path, small_radixnet):
        paths = save_tsv_layers(small_radixnet, tmp_path)
        assert len(paths) == len(small_radixnet.submatrices)
        shapes = [w.shape for w in small_radixnet.submatrices]
        loaded = load_tsv_layers(paths, shapes)
        assert loaded.same_topology(small_radixnet)

    def test_tsv_is_one_based(self, tmp_path):
        net = FNNT([np.eye(2) + np.roll(np.eye(2), 1, axis=1)])
        paths = save_tsv_layers(net, tmp_path)
        first_line = paths[0].read_text().splitlines()[0]
        row, col, _ = first_line.split("\t")
        assert int(row) >= 1 and int(col) >= 1

    def test_tsv_shape_count_mismatch(self, tmp_path, small_radixnet):
        paths = save_tsv_layers(small_radixnet, tmp_path)
        with pytest.raises(SerializationError):
            load_tsv_layers(paths, [(2, 2)])

    def test_tsv_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_tsv_layers([tmp_path / "nope.tsv"], [(2, 2)])

    def test_tsv_malformed_line(self, tmp_path):
        bad = tmp_path / "bad.tsv"
        bad.write_text("1\t2\n")
        with pytest.raises(SerializationError, match="3 tab-separated"):
            load_tsv_layers([bad], [(2, 2)])
