"""Tests for repro.sparse.ops (SpGEMM, SpMM, Kronecker, powers, chains)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.errors import ShapeError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import (
    _spgemm_rowmerge,
    chain_product,
    kron,
    matrix_power,
    sparse_add,
    sparse_transpose,
    spgemm,
    spmm,
    spmv,
)


def random_sparse(shape, density, seed):
    rng = np.random.default_rng(seed)
    dense = rng.random(shape) * (rng.random(shape) < density)
    return CSRMatrix.from_dense(dense), dense


sparse_pair = st.tuples(
    st.integers(1, 5), st.integers(1, 5), st.integers(1, 5), st.integers(0, 1000)
)


class TestSpgemm:
    def test_matches_dense_matmul(self):
        a, da = random_sparse((4, 6), 0.4, 1)
        b, db = random_sparse((6, 3), 0.4, 2)
        np.testing.assert_allclose(spgemm(a, b).to_dense(), da @ db)

    def test_rowmerge_matches_scipy_path(self):
        a, _ = random_sparse((5, 4), 0.5, 3)
        b, _ = random_sparse((4, 6), 0.5, 4)
        np.testing.assert_allclose(
            spgemm(a, b, use_scipy=True).to_dense(),
            _spgemm_rowmerge(a, b).to_dense(),
        )

    def test_shape_mismatch_raises(self):
        with pytest.raises(ShapeError):
            spgemm(CSRMatrix.eye(2), CSRMatrix.eye(3))

    def test_identity_is_neutral(self):
        a, da = random_sparse((3, 3), 0.6, 5)
        np.testing.assert_allclose(spgemm(a, CSRMatrix.eye(3)).to_dense(), da)
        np.testing.assert_allclose(spgemm(CSRMatrix.eye(3), a).to_dense(), da)

    def test_zero_matrix_annihilates(self):
        a, _ = random_sparse((3, 3), 0.6, 6)
        assert spgemm(a, CSRMatrix.zeros((3, 3))).nnz == 0

    @given(sparse_pair)
    @settings(max_examples=40, deadline=None)
    def test_matches_dense_property(self, dims):
        m, k, n, seed = dims
        a, da = random_sparse((m, k), 0.5, seed)
        b, db = random_sparse((k, n), 0.5, seed + 1)
        np.testing.assert_allclose(spgemm(a, b).to_dense(), da @ db, atol=1e-12)


class TestSpmmSpmv:
    def test_spmm_matches_dense(self):
        a, da = random_sparse((4, 5), 0.5, 7)
        x = np.random.default_rng(8).random((5, 3))
        np.testing.assert_allclose(spmm(a, x), da @ x)

    def test_spmm_vector_delegates_to_spmv(self):
        a, da = random_sparse((4, 5), 0.5, 9)
        v = np.random.default_rng(10).random(5)
        np.testing.assert_allclose(spmm(a, v), da @ v)

    def test_spmv_matches_dense(self):
        a, da = random_sparse((6, 4), 0.5, 11)
        v = np.random.default_rng(12).random(4)
        np.testing.assert_allclose(spmv(a, v), da @ v)

    def test_spmm_shape_mismatch(self):
        with pytest.raises(ShapeError):
            spmm(CSRMatrix.eye(3), np.zeros((4, 2)))

    def test_spmv_shape_mismatch(self):
        with pytest.raises(ShapeError):
            spmv(CSRMatrix.eye(3), np.zeros(4))


class TestTransposeAdd:
    def test_transpose_matches_dense(self):
        a, da = random_sparse((3, 5), 0.5, 13)
        np.testing.assert_allclose(sparse_transpose(a).to_dense(), da.T)

    def test_double_transpose_identity(self):
        a, da = random_sparse((4, 4), 0.5, 14)
        np.testing.assert_allclose(sparse_transpose(sparse_transpose(a)).to_dense(), da)

    def test_add_matches_dense(self):
        a, da = random_sparse((3, 3), 0.5, 15)
        b, db = random_sparse((3, 3), 0.5, 16)
        np.testing.assert_allclose(sparse_add(a, b).to_dense(), da + db)

    def test_add_shape_mismatch(self):
        with pytest.raises(ShapeError):
            sparse_add(CSRMatrix.eye(2), CSRMatrix.eye(3))


class TestKron:
    def test_matches_numpy_kron(self):
        a, da = random_sparse((2, 3), 0.7, 17)
        b, db = random_sparse((3, 2), 0.7, 18)
        np.testing.assert_allclose(kron(a, b).to_dense(), np.kron(da, db))

    def test_ones_kron_gives_block_replication(self):
        ones = CSRMatrix.ones((2, 3))
        b, db = random_sparse((2, 2), 1.0, 19)
        expected = np.kron(np.ones((2, 3)), db)
        np.testing.assert_allclose(kron(ones, b).to_dense(), expected)

    def test_kron_with_empty_matrix(self):
        assert kron(CSRMatrix.zeros((2, 2)), CSRMatrix.eye(3)).nnz == 0

    def test_mixed_product_property(self):
        # (A (x) B) (C (x) D) == (AC) (x) (BD) -- the identity Theorem 1 relies on
        a, da = random_sparse((2, 3), 0.8, 20)
        c, dc = random_sparse((3, 2), 0.8, 21)
        b, db = random_sparse((2, 2), 0.8, 22)
        d, dd = random_sparse((2, 3), 0.8, 23)
        left = spgemm(kron(a, b), kron(c, d)).to_dense()
        right = np.kron(da @ dc, db @ dd)
        np.testing.assert_allclose(left, right, atol=1e-12)

    @given(st.integers(1, 3), st.integers(1, 3), st.integers(1, 3), st.integers(1, 3), st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_kron_property(self, m, n, p, q, seed):
        a, da = random_sparse((m, n), 0.6, seed)
        b, db = random_sparse((p, q), 0.6, seed + 7)
        np.testing.assert_allclose(kron(a, b).to_dense(), np.kron(da, db), atol=1e-12)


class TestPowersAndChains:
    def test_matrix_power_zero_is_identity(self):
        a, _ = random_sparse((4, 4), 0.5, 24)
        np.testing.assert_allclose(matrix_power(a, 0).to_dense(), np.eye(4))

    def test_matrix_power_matches_dense(self):
        a, da = random_sparse((4, 4), 0.5, 25)
        np.testing.assert_allclose(matrix_power(a, 3).to_dense(), np.linalg.matrix_power(da, 3), atol=1e-10)

    def test_matrix_power_requires_square(self):
        with pytest.raises(ShapeError):
            matrix_power(CSRMatrix.ones((2, 3)), 2)

    def test_matrix_power_rejects_negative(self):
        with pytest.raises(ShapeError):
            matrix_power(CSRMatrix.eye(2), -1)

    def test_chain_product_matches_dense(self):
        mats = []
        denses = []
        for i, shape in enumerate([(2, 3), (3, 4), (4, 2)]):
            m, d = random_sparse(shape, 0.7, 30 + i)
            mats.append(m)
            denses.append(d)
        expected = denses[0] @ denses[1] @ denses[2]
        np.testing.assert_allclose(chain_product(mats).to_dense(), expected, atol=1e-12)

    def test_chain_product_single(self):
        a, da = random_sparse((3, 3), 0.5, 40)
        np.testing.assert_allclose(chain_product([a]).to_dense(), da)

    def test_chain_product_empty_raises(self):
        with pytest.raises(ShapeError):
            chain_product([])
