"""Figure 7: density of RadiX-Nets as a function of mu (average radix) and d (radices per system).

Regenerates the density surface from equation (6) and from actually
constructed uniform RadiX-Nets, asserts they agree, and renders the
surface as a text heatmap (the paper's log-scale colour plot).
"""

import numpy as np

from repro.experiments.figures import figure7_density_surface
from repro.viz.ascii import heatmap


def test_fig7_density_surface(benchmark, report_table):
    data = benchmark.pedantic(
        figure7_density_surface,
        kwargs={"mus": (2, 3, 4, 5, 6, 8, 10), "depths": (1, 2, 3, 4, 5)},
        rounds=3,
        iterations=1,
    )

    # formula and constructed topologies agree to machine precision
    assert data.max_relative_error < 1e-9
    # density decreases monotonically in both mu (for d > 1) and d
    surface = data.formula_surface
    assert np.all(np.diff(surface, axis=0) < 0)
    assert np.all(np.diff(surface[1:], axis=1) < 0)
    # corner values from the paper's description: dense at d=1, ~mu^(1-d) elsewhere
    assert surface[0, 0] == 1.0
    assert surface[-1, -1] == 10.0 ** (1 - 5)

    report_table(
        "Figure 7: density vs (mu, d) -- rows are d, columns are mu",
        ["d \\ mu", *[str(m) for m in data.mus]],
        [[d, *[f"{v:.2e}" for v in surface[i]]] for i, d in enumerate(data.depths)],
    )
    print(
        heatmap(
            surface,
            row_labels=[f"d={d}" for d in data.depths],
            col_labels=[str(m) for m in data.mus],
            log_scale=True,
        )
    )
