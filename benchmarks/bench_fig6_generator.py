"""Figure 6: the RadiX-Net generator algorithm -- correctness and construction-time scaling.

Times the generator over a range of N' values; asserts that the realized
edge counts match the closed-form prediction at every size (so the timing
series really measures the algorithm of Figure 6) and that construction
time grows with the edge count.
"""

from repro.experiments.figures import figure6_generator_scaling


def test_fig6_generator_scaling(benchmark, report_table):
    rows = benchmark.pedantic(
        figure6_generator_scaling,
        kwargs={"n_primes": (8, 16, 32, 64, 128), "width": 2},
        rounds=3,
        iterations=1,
    )

    for row in rows:
        assert row["edges"] == row["predicted_edges"]
    edges = [row["edges"] for row in rows]
    assert edges == sorted(edges)

    report_table(
        "Figure 6: generator scaling over N'",
        ["N'", "edges", "seconds", "edges/s"],
        [[int(r["n_prime"]), int(r["edges"]), round(r["seconds"], 5), int(r["edges_per_second"])] for r in rows],
    )


def test_fig6_single_large_generation(benchmark):
    """One realistic-size generation call (N' = 256, widths 1/4/.../1)."""
    from repro.core.radixnet import generate_radixnet, radixnet_edge_count, RadixNetSpec

    systems = [(16, 16), (256,)]
    widths = [1, 4, 4, 1]
    net = benchmark(generate_radixnet, systems, widths)
    assert net.num_edges == radixnet_edge_count(RadixNetSpec(systems, widths))
