"""Figure 1: the mixed-radix topology N = (2, 2, 2) built from overlapping decision trees.

Regenerates the object of the paper's Figure 1 and checks its defining
properties: 4 layers of N' = 8 nodes, out-degree 2 at every level, exactly
one path between every (input, output) pair (Lemma 1), and the
decision-tree view covering every output node once per root.
"""

from repro.experiments.figures import figure1_mixed_radix_data
from repro.viz.ascii import render_adjacency


def test_fig1_mixed_radix_construction(benchmark, report_table):
    data = benchmark(figure1_mixed_radix_data, (2, 2, 2))

    assert data.layer_sizes == (8, 8, 8, 8)
    assert data.per_layer_out_degree == (2, 2, 2)
    assert data.symmetric
    assert all(leaves == tuple(range(8)) for leaves in data.decision_tree_leaf_sets)

    report_table(
        "Figure 1: mixed-radix topology N=(2,2,2)",
        ["layer", "nodes", "out_degree"],
        [[i, 8, d] for i, d in enumerate(data.per_layer_out_degree)],
    )
    print(render_adjacency(data.topology.submatrix(0)))


def test_fig1_larger_mixed_radix(benchmark):
    # the same construction at a larger, non-uniform radix list
    data = benchmark.pedantic(
        figure1_mixed_radix_data, args=((3, 3, 4),), rounds=3, iterations=1
    )
    assert data.layer_sizes == (36, 36, 36, 36)
    assert data.per_layer_out_degree == (3, 3, 4)
    assert data.symmetric
