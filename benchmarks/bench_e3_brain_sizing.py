"""Companion experiment E3: RadiX-Net parameters matching brain-like size and sparsity.

The paper's conclusion cites the use of RadiX-Net to "construct a neural
net simulating the size and sparsity of the human brain" (Wang & Kepner,
unpublished).  This benchmark reproduces the sizing arithmetic -- choosing
degree, neurons per layer, and depth to hit target neuron/synapse budgets
-- and instantiates scaled-down topologies to confirm the design is
constructible.
"""

from repro.experiments.scaling import brain_sizing_table


def test_e3_brain_sizing_table(benchmark, report_table):
    rows = benchmark.pedantic(
        brain_sizing_table, kwargs={"scale": 2e-6, "max_layers": 4}, rounds=1, iterations=1
    )

    by_target = {row["target"]: row for row in rows}
    assert set(by_target) == {"mouse", "human"}
    for row in rows:
        assert row["neuron_error"] < 0.01
        assert row["synapse_error"] < 0.5
        # the brain-scale point is extremely sparse; so is the scaled instance
        assert row["scaled_instance_density"] < 0.5
    # human target implies more neurons per layer than mouse
    assert by_target["human"]["neurons_per_layer"] > by_target["mouse"]["neurons_per_layer"]

    report_table(
        "E3: brain-scale RadiX-Net sizing",
        [
            "target",
            "neurons (target)",
            "synapses (target)",
            "degree",
            "neurons/layer",
            "neuron err",
            "synapse err",
            "scaled edges",
            "scaled density",
        ],
        [
            [
                r["target"],
                f"{r['target_neurons']:.2e}",
                f"{r['target_synapses']:.2e}",
                int(r["degree"]),
                int(r["neurons_per_layer"]),
                f"{r['neuron_error']:.1e}",
                f"{r['synapse_error']:.2f}",
                int(r["scaled_instance_edges"]),
                f"{r['scaled_instance_density']:.3f}",
            ]
            for r in rows
        ],
    )
