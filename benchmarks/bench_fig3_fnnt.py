"""Figure 3: FNNTs on a shared ordered node collection; the fully-connected one is unique.

Regenerates the dense/sparse FNNT contrast of Figure 3 and checks the
density definition's extreme values.
"""

from repro.experiments.figures import figure3_fnnt_data
from repro.topology.properties import minimum_density


def test_fig3_dense_vs_sparse_fnnt(benchmark, report_table):
    data = benchmark(figure3_fnnt_data, (3, 3, 2, 3))

    assert data.dense_density == 1.0
    assert 0.0 < data.sparse_density < 1.0
    assert data.sparse_edges < data.dense_edges
    # the sparse variant respects the attainable minimum density
    assert data.sparse_density >= minimum_density(data.layer_sizes)

    report_table(
        "Figure 3: FNNTs on the same node collection",
        ["graph", "edges", "density"],
        [
            ["G (dense, unique)", data.dense_edges, data.dense_density],
            ["G' (sparse)", data.sparse_edges, data.sparse_density],
        ],
    )
