"""Ablation A2: radix-variance sensitivity of the density approximations.

Equations (5) and (6) hold "when {N_i} has sufficiently small variance".
The ablation enumerates every radix factorization of N' = 36 of length 3,
computes the exact density (eq. 4) and the approximation (eq. 5), and
asserts that the relative error grows with the variance of the radix list
-- quantifying the paper's caveat.
"""

import numpy as np

from repro.experiments.scaling import variance_ablation


def test_a2_variance_ablation(benchmark, report_table):
    rows = benchmark.pedantic(
        variance_ablation, kwargs={"n_prime": 36, "length": 3}, rounds=3, iterations=1
    )

    assert len(rows) >= 3
    variances = np.array([row["variance"] for row in rows])
    errors = np.array([row["relative_error"] for row in rows])
    # rows are sorted by variance; zero variance would give zero error,
    # and the correlation between variance and error is strongly positive
    assert np.all(np.diff(variances) >= 0)
    assert errors[0] == min(errors)
    correlation = np.corrcoef(variances, errors)[0, 1]
    assert correlation > 0.7

    report_table(
        "A2: eq.(5) approximation error vs radix variance (N' = 36, 3 radices)",
        ["radices", "variance", "exact eq(4)", "approx eq(5)", "relative error"],
        [
            [str(r["radices"]), round(r["variance"], 3), round(r["exact_density"], 5), round(r["approx_density"], 5), round(r["relative_error"], 4)]
            for r in rows
        ],
    )


def test_a2_low_variance_regime_is_accurate(benchmark):
    """In the low-variance regime the approximation error is a few percent at most."""
    rows = benchmark.pedantic(
        variance_ablation, kwargs={"n_prime": 64, "length": 3}, rounds=3, iterations=1
    )
    low_variance_rows = [r for r in rows if r["variance"] <= 1.0]
    assert low_variance_rows
    assert all(r["relative_error"] < 0.1 for r in low_variance_rows)
