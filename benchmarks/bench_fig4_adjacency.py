"""Figure 4: the adjacency matrix / adjacency submatrix block structure of an FNNT.

Assembles the full adjacency matrix A of the Figure-4 FNNT and verifies
that its nonzeros live only in the super-diagonal blocks and that the
number of stored edges matches the submatrix total.
"""

from repro.experiments.figures import figure4_adjacency_data
from repro.viz.ascii import render_adjacency


def test_fig4_adjacency_assembly(benchmark, report_table):
    data = benchmark(figure4_adjacency_data, (3, 3, 2, 3))

    assert data.block_structure_valid
    assert data.adjacency_nnz == data.topology.num_edges
    assert data.total_nodes == sum(data.topology.layer_sizes)

    report_table(
        "Figure 4: full adjacency matrix structure",
        ["total nodes", "edges (nnz of A)", "block structure valid", "nilpotency index"],
        [[data.total_nodes, data.adjacency_nnz, data.block_structure_valid, data.nilpotency_index]],
    )
    print(render_adjacency(data.topology.full_adjacency()))


def test_fig4_radixnet_adjacency(benchmark, report_table):
    """The same assembly applied to a RadiX-Net (eq. (11) of the Appendix)."""
    from repro.core.radixnet import generate_radixnet

    net = generate_radixnet([(2, 2), (2, 2)], [1, 2, 2, 2, 1])
    adjacency = benchmark(net.full_adjacency)
    assert adjacency.shape == (net.num_nodes, net.num_nodes)
    assert adjacency.nnz == net.num_edges
