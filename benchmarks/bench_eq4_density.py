"""Equations (4), (5), (6): exact density, small-variance approximation, asymptotic form.

One row per specification in the panel: the exact density of eq. (4) must
equal the measured density of the constructed topology, and the eq. (5)
approximation must be close whenever the radix variance is small.
"""

import pytest

from repro.experiments.figures import equation4_density_table


def test_eq4_density_table(benchmark, report_table):
    rows = benchmark.pedantic(equation4_density_table, rounds=3, iterations=1)

    assert len(rows) >= 5
    for row in rows:
        # eq. (4) is exact
        assert row["exact_density_eq4"] == pytest.approx(row["measured_density"], rel=1e-12)

    report_table(
        "Equations (4)-(6): density formulas vs measurement",
        ["N'", "eq(4) exact", "eq(5) approx", "eq(6) asymptotic", "measured"],
        [
            [
                int(r["n_prime"]),
                round(r["exact_density_eq4"], 6),
                round(r["approx_density_eq5"], 6),
                round(r["asymptotic_eq6"], 6),
                round(r["measured_density"], 6),
            ]
            for r in rows
        ],
    )


def test_eq4_formula_evaluation_throughput(benchmark):
    """Closed-form density evaluation is effectively free compared with construction."""
    from repro.core.density import exact_density
    from repro.core.radixnet import RadixNetSpec

    spec = RadixNetSpec([(16, 16), (256,)], [1, 4, 4, 1])
    value = benchmark(exact_density, spec)
    assert 0.0 < value < 1.0
