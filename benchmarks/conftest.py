"""Shared helpers for the benchmark suite.

Every benchmark prints the table/series it regenerates (so the text output
of ``pytest benchmarks/ --benchmark-only`` is a self-contained reproduction
record) and asserts the *shape* of the paper's claim, not absolute timings.
"""

from __future__ import annotations

import pytest

from repro.viz.report import format_table


def print_experiment_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print one experiment's regenerated table under a banner."""
    banner = f"\n=== {title} ==="
    print(banner)
    print(format_table(headers, rows))


@pytest.fixture
def report_table():
    """Fixture exposing the table printer to benchmark functions."""
    return print_experiment_table
