"""Companion experiment E1: sparse (RadiX-Net) vs X-Net vs dense vs pruned training accuracy.

Reproduces the shape of the Alford & Kepner companion result that the paper
cites as its empirical grounding: a de-novo sparse RadiX-Net trains to an
accuracy comparable with a dense network of the same layer widths, at a
fraction of the parameters.  The dataset is the bundled synthetic
classification task (see DESIGN.md substitutions); absolute accuracies are
not expected to match the MNIST numbers, but the ordering and gap shape are.
"""

from repro.experiments.training import accuracy_vs_density


def test_e1_training_accuracy_comparison(benchmark, report_table):
    result = benchmark.pedantic(
        accuracy_vs_density,
        kwargs={
            "dataset": "gaussian_mixture",
            "num_samples": 480,
            "num_classes": 4,
            "layer_widths": (16, 32, 32, 8),
            "epochs": 12,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    radix = result.arm("radix-net")
    dense = result.arm("dense")

    # shape of the claim: the sparse de-novo net reaches accuracy in the same
    # range as dense (within 15 points on this task) with fewer parameters.
    assert radix.parameter_count < dense.parameter_count
    assert radix.density < 1.0
    assert dense.density == 1.0
    assert result.accuracy_gap("radix-net") < 0.15
    # every arm learns far better than chance (25%)
    for arm in result.arms:
        assert arm.val_accuracy > 0.5

    report_table(
        "E1: accuracy vs density (synthetic 4-class task, widths 16-32-32-8)",
        ["arm", "density", "parameters", "val accuracy", "final train loss"],
        [
            [a.name, round(a.density, 3), a.parameter_count, round(a.val_accuracy, 3), round(a.train_loss, 3)]
            for a in result.arms
        ],
    )


def test_e1_density_sweep_radixnet_only(benchmark, report_table):
    """Accuracy of RadiX-Nets across densities (the x-axis of the companion figure)."""
    import numpy as np

    from repro.core.designer import design_for_density
    from repro.core.radixnet import generate_from_spec
    from repro.datasets import gaussian_mixture
    from repro.experiments.training import train_topology_on_dataset

    features, labels = gaussian_mixture(400, num_classes=4, num_features=16, seed=1)

    def run_sweep():
        rows = []
        for target_density in (0.5, 0.25, 0.125):
            design = design_for_density(target_density, 2, max_n_prime=32, width=4)
            topology = generate_from_spec(design.spec)
            arm, _ = train_topology_on_dataset(
                topology,
                features,
                labels,
                num_classes=4,
                epochs=10,
                seed=2,
                name=f"radix-{target_density}",
            )
            rows.append((target_density, arm.density, arm.parameter_count, arm.val_accuracy))
        return rows

    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    accuracies = [r[3] for r in rows]
    assert all(a > 0.5 for a in accuracies)
    # degradation from halving density twice stays modest on this task
    assert max(accuracies) - min(accuracies) < 0.3

    report_table(
        "E1 sweep: RadiX-Net accuracy vs density",
        ["target density", "realized density", "parameters", "val accuracy"],
        [[r[0], round(r[1], 3), r[2], round(r[3], 3)] for r in rows],
    )
