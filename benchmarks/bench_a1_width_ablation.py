"""Ablation A1: effect of the dense widths D on density (equation (5)'s claim).

The paper states that for small radix variance the density of a RadiX-Net
is "negligibly affected" by the dense widths D.  The ablation sweeps the
interior widths over two orders of magnitude at fixed N* and asserts that
the exact density (eq. 4) stays pinned to the eq.-(5) value.
"""

from repro.experiments.scaling import width_ablation


def test_a1_width_ablation_uniform_radices(benchmark, report_table):
    rows = benchmark.pedantic(
        width_ablation,
        kwargs={"systems": ((2, 2), (2, 2)), "width_choices": (1, 2, 4, 8, 16, 64)},
        rounds=3,
        iterations=1,
    )

    gaps = [row["relative_gap"] for row in rows]
    densities = [row["exact_density"] for row in rows]
    # uniform radices: the width has exactly zero effect (the strong form of eq. (5))
    assert max(gaps) < 1e-12
    assert max(densities) - min(densities) < 1e-12

    report_table(
        "A1: density vs interior dense width (uniform radices 2,2 / 2,2)",
        ["interior width D", "exact density eq(4)", "approx eq(5)", "relative gap"],
        [[int(r["interior_width"]), round(r["exact_density"], 6), round(r["approx_density"], 6), f"{r['relative_gap']:.1e}"] for r in rows],
    )


def test_a1_width_ablation_nonuniform_radices(benchmark, report_table):
    """With non-uniform radices the width effect is nonzero but bounded."""
    rows = benchmark.pedantic(
        width_ablation,
        kwargs={"systems": ((2, 8), (4, 4)), "width_choices": (1, 2, 4, 8, 16)},
        rounds=3,
        iterations=1,
    )
    gaps = [row["relative_gap"] for row in rows]
    # non-uniform radices: the gap is no longer zero ...
    assert max(gaps) > 0.0
    # ... but stays bounded well below the density itself (the "negligible" claim)
    assert max(gaps) < 0.5

    report_table(
        "A1: density vs interior dense width (radices 2,8 / 4,4)",
        ["interior width D", "exact density eq(4)", "approx eq(5)", "relative gap"],
        [[int(r["interior_width"]), round(r["exact_density"], 6), round(r["approx_density"], 6), f"{r['relative_gap']:.2e}"] for r in rows],
    )
