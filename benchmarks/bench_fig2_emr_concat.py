"""Figure 2: concatenation of mixed-radix topologies into an extended mixed-radix topology.

Builds the Figure-2 style EMR topology (systems with shared product N' = 36,
last system's product dividing N') and verifies Lemma 2's symmetry and path
count on it.
"""

from repro.experiments.figures import figure2_emr_data


def test_fig2_emr_concatenation(benchmark, report_table):
    data = benchmark(figure2_emr_data)

    assert data.n_prime == 36
    assert data.symmetric
    assert data.path_count == data.lemma2_prediction

    report_table(
        "Figure 2: extended mixed-radix concatenation",
        ["systems", "N'", "layers", "paths (measured)", "paths (Lemma 2)"],
        [[
            str(data.systems),
            data.n_prime,
            data.topology.num_layers,
            data.path_count,
            data.lemma2_prediction,
        ]],
    )


def test_fig2_constraint_violations_detected(benchmark):
    """The admissibility constraints of Fig. 2 (bottom right) are enforced."""
    from repro.core.radixnet import validate_radixnet_constraints
    from repro.errors import ConstraintError

    def check_both():
        validate_radixnet_constraints([(3, 3, 4), (6, 6), (6,)])  # admissible
        try:
            validate_radixnet_constraints([(3, 3, 4), (5, 5)])  # product mismatch
        except ConstraintError:
            return True
        return False

    assert benchmark(check_both)
