"""Lemma 1, Lemma 2, Theorem 1: symmetry and exact path counts.

Verifies, for a panel of specifications, that the measured number of
input-to-output paths of the constructed RadiX-Net equals the Theorem-1
prediction (N')^(M-1) * prod(interior D), and times the verification
(a chain of sparse matrix products).
"""

from repro.experiments.figures import theorem1_path_count_table


def test_thm1_path_count_table(benchmark, report_table):
    rows = benchmark.pedantic(theorem1_path_count_table, rounds=3, iterations=1)

    assert all(row["symmetric"] for row in rows)
    assert all(row["matches"] for row in rows)

    report_table(
        "Theorem 1: predicted vs measured path counts",
        ["systems", "widths", "predicted", "measured", "symmetric"],
        [
            [str(r["systems"]), str(r["widths"]), r["predicted"], r["measured"], r["symmetric"]]
            for r in rows
        ],
    )


def test_thm1_verification_kernel(benchmark):
    """Timing of the path-count verification on a mid-size RadiX-Net."""
    from repro.core.radixnet import RadixNetSpec, generate_from_spec
    from repro.core.theory import verify_theorem_1

    spec = RadixNetSpec([(4, 4), (16,)], [1, 2, 2, 1])
    topology = generate_from_spec(spec)
    check = benchmark(verify_theorem_1, spec, topology=topology)
    assert check.matches_prediction


def test_thm1_symmetry_contrast_with_random_baseline(benchmark, report_table):
    """Random sparse baselines at matched density are generally not symmetric."""
    from repro.core.radixnet import generate_radixnet
    from repro.core.theory import path_count_spectrum
    from repro.topology.random_graphs import erdos_renyi_fnnt

    radix = generate_radixnet([(4, 4), (16,)], [1, 1, 1, 1])
    random_net = erdos_renyi_fnnt(radix.layer_sizes, radix.density(), seed=0)

    spectra = benchmark.pedantic(
        lambda: (path_count_spectrum(radix), path_count_spectrum(random_net)),
        rounds=3,
        iterations=1,
    )
    radix_spectrum, random_spectrum = spectra
    assert len(radix_spectrum) == 1  # symmetric: single path count
    assert len(random_spectrum) > 1  # random baseline: spread of path counts

    report_table(
        "Symmetry contrast at matched density",
        ["topology", "distinct path counts", "zero-path pairs"],
        [
            ["RadiX-Net", len(radix_spectrum), radix_spectrum.get(0, 0)],
            ["Erdos-Renyi", len(random_spectrum), random_spectrum.get(0, 0)],
        ],
    )
