"""Ablation A3: topological diversity of RadiX-Nets vs explicit X-Nets.

The abstract claims RadiX-Nets are "much more diverse than X-Net
topologies".  The ablation counts the admissible structural configurations
of each family at matched layer width and asserts that the RadiX-Net count
dominates and grows much faster with the width's divisor richness.
"""

from repro.experiments.scaling import diversity_table


def test_a3_diversity_counts(benchmark, report_table):
    rows = benchmark.pedantic(
        diversity_table,
        kwargs={"n_primes": (8, 12, 16, 24, 36, 48, 64), "num_systems": 2},
        rounds=3,
        iterations=1,
    )

    # RadiX-Net always offers at least as many configurations, and the ratio
    # grows with divisor-rich widths (who wins, and by how much).
    assert all(row["ratio"] >= 1.0 for row in rows)
    first, last = rows[0], rows[-1]
    assert last["radixnet_configurations"] > 100 * first["radixnet_configurations"] / 10
    assert last["ratio"] > first["ratio"]

    report_table(
        "A3: structural diversity (2 systems) vs explicit X-Net generator sets",
        ["N' (layer width)", "RadiX-Net configs", "explicit X-Net configs", "ratio"],
        [
            [int(r["n_prime"]), int(r["radixnet_configurations"]), int(r["explicit_xnet_configurations"]), round(r["ratio"], 1)]
            for r in rows
        ],
    )


def test_a3_width_freedom(benchmark, report_table):
    """RadiX-Nets additionally vary layer widths; explicit X-Nets cannot."""
    from repro.core.radixnet import generate_radixnet

    def build_three_width_profiles():
        nets = [
            generate_radixnet([(2, 2), (4,)], widths)
            for widths in ([1, 1, 1, 1], [1, 2, 2, 1], [2, 3, 3, 1])
        ]
        return [net.layer_sizes for net in nets]

    profiles = benchmark(build_three_width_profiles)
    assert len(set(profiles)) == 3  # three genuinely different width profiles

    report_table(
        "A3: width-profile freedom of RadiX-Nets at fixed N* = ((2,2),(4,))",
        ["dense widths D", "layer sizes"],
        [[str(d), str(p)] for d, p in zip(["1,1,1,1", "1,2,2,1", "2,3,3,1"], profiles)],
    )
