"""The committed performance ledger: write and compare ``BENCH_<PR>.json``.

Benchmarks that are only ever printed to a terminal do not constrain
anything; this module institutionalizes the numbers.  Each PR that
touches performance runs::

    python benchmarks/ledger.py --pr 7 --profile quick --compare auto

which measures the standard metric set -- kernel edges/s per backend,
end-to-end inference edges/s per backend x activation policy, streaming
generation throughput, serve requests/s + p99 latency, and training
steps/s (dense-masked vs CSR-trainable per backend) -- writes
``BENCH_7.json`` at the repo root, and prints a regression table against
the latest previously committed ledger (``--compare auto``).  CI renders
the same table into the job summary (``--markdown``).

The schema is deliberately flat-friendly: ``metrics`` is a nested dict
whose leaves are numbers or null, and comparisons operate on the
dotted-path flattening, so adding a metric never breaks older ledgers --
paths present on only one side are reported as added/removed, not
errors.  Backends that are not installed in the measuring environment
(e.g. numba in a scipy-only container) appear as ``null`` leaves with an
explanatory note rather than disappearing, so the ledger records *why* a
number is missing.

Profiles: ``test`` (seconds; used by the unit tests), ``quick`` (the
default; E2-sized plus the 1024x120 official-scale fused smoke), and
``full`` (adds the 60-layer deep run; minutes).
"""

from __future__ import annotations

import argparse
import json
import math
import platform
import re
import sys
import tempfile
import time
from pathlib import Path

SCHEMA_VERSION = 1
LEDGER_PATTERN = re.compile(r"^BENCH_(\d+)\.json$")

#: Relative slowdown on a higher-is-better metric that flags a regression.
DEFAULT_TOLERANCE = 0.30

#: Metric leaves where *lower* is better (matched by path suffix).
LOWER_IS_BETTER_SUFFIXES = ("_ms", "_seconds")

PROFILES = {
    # neurons/layers sized so `test` stays unit-test fast while `quick`
    # matches the bench_e2 defaults plus the official-scale fused smoke
    "test": dict(neurons=64, layers=4, batch=16, scale_neurons=128,
                 scale_layers=6, scale_batch=4, serve_requests=20,
                 serve_clients=2, sweep_clients=(1, 2), sweep_requests=10,
                 gen_layers=3, train_steps=3, repeats=1),
    "quick": dict(neurons=256, layers=24, batch=64, scale_neurons=1024,
                  scale_layers=120, scale_batch=16, serve_requests=200,
                  serve_clients=8, sweep_clients=(1, 2, 4, 8),
                  sweep_requests=60, gen_layers=12, train_steps=25, repeats=3),
    "full": dict(neurons=1024, layers=60, batch=64, scale_neurons=4096,
                 scale_layers=120, scale_batch=16, serve_requests=500,
                 serve_clients=8, sweep_clients=(1, 2, 4, 8, 16),
                 sweep_requests=100, gen_layers=24, train_steps=50, repeats=5),
}


def _repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def _ensure_importable() -> None:
    src = _repo_root() / "src"
    if str(src) not in sys.path:  # pragma: no cover - direct-script convenience
        sys.path.insert(0, str(src))


def _timed_best(fn, repeats: int) -> float:
    best = math.inf
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# --------------------------------------------------------------------------- #
# collection
# --------------------------------------------------------------------------- #
def environment_info() -> dict:
    """The measuring environment, recorded alongside the numbers."""
    _ensure_importable()
    import numpy

    info: dict = {
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": __import__("os").cpu_count(),
        "numpy": numpy.__version__,
    }
    for optional in ("scipy", "numba"):
        try:
            info[optional] = __import__(optional).__version__
        except ImportError:
            info[optional] = None
    return info


def _perf_backends() -> list[str]:
    """Performance tiers to measure (reference is an oracle, not a tier)."""
    import repro.backends as backends

    return [n for n in ("numba", "scipy", "vectorized")
            if n in backends.available_backends()]


def _kernel_metrics(cfg: dict, notes: list[str]) -> dict:
    import repro.backends as backends
    from repro.testing import random_csr

    neurons = cfg["neurons"]
    density = 8.0 / neurons  # challenge-style: ~8 connections per neuron
    y, _ = random_csr((cfg["batch"], neurons), density, seed=1)
    y = type(y)(y.shape, y.indptr, y.indices, abs(y.data))
    w, _ = random_csr((neurons, neurons), density, seed=2)
    import numpy as np

    bias = -np.full(neurons, 0.1)
    out: dict = {}
    for name in _perf_backends():
        backend = backends.get_backend(name)
        warmup = getattr(backend, "warmup", None)
        if warmup is not None:
            warmup()
        spgemm_s = _timed_best(lambda: backend.spgemm(y, w), cfg["repeats"])
        fused_s = _timed_best(
            lambda: backend.sparse_layer_step(y, w, bias, 32.0), cfg["repeats"]
        )
        edges = w.nnz * cfg["batch"]
        out[name] = {
            "spgemm_edges_per_s": edges / spgemm_s if spgemm_s > 0 else None,
            "fused_edges_per_s": edges / fused_s if fused_s > 0 else None,
        }
    for name, reason in backends.unavailable_backends().items():
        out[name] = {"spgemm_edges_per_s": None, "fused_edges_per_s": None}
        notes.append(f"kernels.{name}: not measured ({reason})")
    return out


def _inference_metrics(cfg: dict, notes: list[str]) -> dict:
    import repro.backends as backends
    from repro.challenge.generator import (
        challenge_input_batch,
        generate_challenge_network,
    )
    from repro.challenge.inference import sparse_dnn_inference

    network = generate_challenge_network(
        cfg["neurons"], cfg["layers"], connections=8, seed=1
    )
    batch = challenge_input_batch(cfg["neurons"], cfg["batch"], seed=2)
    out: dict = {}
    for name in _perf_backends():
        for policy in ("dense", "sparse"):
            result = None
            best = math.inf
            for _ in range(max(1, cfg["repeats"])):
                result = sparse_dnn_inference(
                    network, batch, backend=name, activations=policy
                )
                best = min(best, result.total_seconds)
            out[f"{name}.{policy}"] = {
                "edges_per_s": result.edges_traversed / best if best > 0 else None,
            }
    for name, reason in backends.unavailable_backends().items():
        for policy in ("dense", "sparse"):
            out[f"{name}.{policy}"] = {"edges_per_s": None}
        notes.append(f"inference.{name}: not measured ({reason})")
    return out


def _official_scale_metrics(cfg: dict, notes: list[str]) -> dict:
    """The 1024x120-style fused smoke: one layer step at official shape."""
    import numpy as np

    import repro.backends as backends
    from repro.challenge.generator import (
        challenge_input_batch,
        generate_challenge_network,
    )

    network = generate_challenge_network(
        cfg["scale_neurons"], min(cfg["scale_layers"], 2), connections=32, seed=3
    )
    weight = network.weights[0]
    batch = challenge_input_batch(cfg["scale_neurons"], cfg["scale_batch"], seed=4)
    from repro.sparse.csr import CSRMatrix

    y = CSRMatrix.from_dense(batch)
    bias = np.asarray(network.biases[0], dtype=np.float64)
    edges = weight.nnz * cfg["scale_batch"]
    out: dict = {
        "neurons": cfg["scale_neurons"],
        "layers": cfg["scale_layers"],
        "batch": cfg["scale_batch"],
    }
    for name in _perf_backends():
        backend = backends.get_backend(name)
        warmup = getattr(backend, "warmup", None)
        if warmup is not None:
            warmup()
        seconds = _timed_best(
            lambda: backend.sparse_layer_step(y, weight, bias, 32.0),
            cfg["repeats"],
        )
        out[f"fused_edges_per_s.{name}"] = edges / seconds if seconds > 0 else None
    for name, reason in backends.unavailable_backends().items():
        out[f"fused_edges_per_s.{name}"] = None
        notes.append(f"official_scale.{name}: not measured ({reason})")
    return out


def _generation_metrics(cfg: dict) -> dict:
    from repro.challenge.generator import iter_generate_challenge_layers
    from repro.challenge.io import save_challenge_layers

    neurons, layers = cfg["neurons"], cfg["gen_layers"]
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        save_challenge_layers(
            Path(tmp) / "net",
            iter_generate_challenge_layers(neurons, layers, connections=8, seed=5),
            neurons=neurons,
            num_layers=layers,
            threshold=32.0,
        )
        seconds = time.perf_counter() - start
    edges = neurons * 8 * layers
    return {"edges_per_s": edges / seconds if seconds > 0 else None}


def _serve_metrics(cfg: dict) -> dict:
    from repro.challenge.generator import generate_challenge_network
    from repro.parallel import serve_worker_count
    from repro.serve import (
        ServingEngine,
        bench_serve,
        saturation_sweep,
        serve_in_background,
    )

    network = generate_challenge_network(
        cfg["neurons"], max(2, cfg["layers"] // 4), connections=8, seed=6
    )
    engine = ServingEngine.from_network(network, activations="dense")
    workers_n = serve_worker_count()
    out: dict = {"workers": workers_n}
    # one worker (the PR 6 configuration) vs the multi-worker default; the
    # top-level keys stay on the default configuration so the ledger
    # comparison tracks what `challenge serve` actually ships
    for label, workers in (("single_worker", 1), ("default", workers_n)):
        with serve_in_background(
            engine, max_batch=32, max_wait_ms=2.0, workers=workers
        ) as handle:
            host, port = handle.address
            report = bench_serve(
                host, port,
                requests=cfg["serve_requests"],
                clients=cfg["serve_clients"],
                rows_per_request=1,
            )
            if label == "default":
                out["requests_per_s"] = report["requests_per_second"]
                out["latency_p50_ms"] = report["latency_p50_ms"]
                out["latency_p99_ms"] = report["latency_p99_ms"]
                sweep = saturation_sweep(
                    host, port,
                    clients_grid=tuple(cfg["sweep_clients"]),
                    requests_per_point=cfg["sweep_requests"],
                    seed=7,
                )
                knee = sweep["knee"]
                if knee is not None:
                    out["knee"] = {
                        "clients": knee["clients"],
                        "requests_per_s": knee["requests_per_second"],
                        "latency_p99_ms": knee["latency_p99_ms"],
                    }
            else:
                out["single_worker_requests_per_s"] = report["requests_per_second"]
    return out


# run in fresh subprocesses: a fork()ed shard worker inherits the parent's
# resident pages, so measuring inside the (numpy-heavy) ledger process
# would flatter or penalize workers depending on import history.  Each
# probe process loads only what the run itself needs.
_SHARD_PROBE = """\
import json, sys
from repro.challenge.generator import challenge_input_batch
from repro.challenge.pipeline import run_challenge_pipeline
from repro.utils import peak_rss_mb

directory, neurons, batch_rows, shards = (
    sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4]))
batch = challenge_input_batch(neurons, batch_rows, seed=9)
kwargs = {} if shards == 0 else {"shards": shards, "shard_transport": "process"}
outcome = run_challenge_pipeline(directory, neurons, batch, **kwargs)
assert outcome.completed
worker = outcome.shard_worker_rss_mb or []
print(json.dumps({
    "edges_per_s": outcome.result.edges_per_second,
    "wall_seconds": outcome.result.total_seconds,
    "rss_mb": peak_rss_mb(),
    "worker_rss_mb": max((r for r in worker if r is not None), default=None),
}))
"""


def _train_metrics(cfg: dict, notes: list[str]) -> dict:
    """Sparse training (PR 10): optimizer steps/s of dense-masked vs
    CSR-trainable layers per backend, RadiX-Net topology at fixed widths."""
    import numpy as np

    from repro.core.designer import design_for_widths
    from repro.core.radixnet import generate_from_spec
    from repro.nn.builder import model_from_topology
    from repro.nn.losses import CrossEntropyLoss
    from repro.nn.optimizers import SGD

    widths = [16, 32, 32, 8]
    topology = generate_from_spec(design_for_widths(widths).spec)
    batch, steps = cfg["batch"], cfg["train_steps"]
    rng = np.random.default_rng(5)
    x = rng.standard_normal((batch, topology.layer_sizes[0]))
    labels = rng.integers(0, topology.layer_sizes[-1], size=batch)
    targets = np.eye(topology.layer_sizes[-1])[labels]
    loss = CrossEntropyLoss()

    def step_loop(model):
        optimizer = SGD(0.01)

        def fn():
            for _ in range(steps):
                outputs = model.forward(x, training=True)
                model.backward(loss.gradient(outputs, targets))
                optimizer.step(model.parameters(), model.gradients())

        return fn

    out: dict = {
        "widths": widths,
        "batch": batch,
        "steps": steps,
        "density": topology.density(),
    }
    # force_masked on both arms so dense submatrices (if any) go through
    # the same masked/CSR machinery -- the comparison stays apples-to-apples
    masked = model_from_topology(topology, seed=0, force_masked=True)
    seconds = _timed_best(step_loop(masked), cfg["repeats"])
    out["masked_steps_per_s"] = steps / seconds if seconds > 0 else None
    out["csr"] = {}
    for name in _perf_backends():
        model = model_from_topology(
            topology, seed=0, force_masked=True, sparse_training=True, backend=name
        )
        seconds = _timed_best(step_loop(model), cfg["repeats"])
        out["csr"][name] = {"steps_per_s": steps / seconds if seconds > 0 else None}
    for name in ("numba", "scipy", "vectorized"):
        if name not in out["csr"]:
            out["csr"][name] = {"steps_per_s": None}
            notes.append(f"train.csr.{name}: backend not available here")
    return out


def _shard_metrics(cfg: dict, notes: list[str]) -> dict:
    """Tensor-parallel sharding (PR 9): edges/s + per-worker peak RSS at
    K=1,2,4 against the unsharded pipeline, official shape."""
    import os
    import subprocess

    from repro.challenge.generator import generate_challenge_network
    from repro.challenge.io import save_challenge_network

    neurons, layers = cfg["scale_neurons"], cfg["scale_layers"]
    out: dict = {"neurons": neurons, "layers": layers, "batch": cfg["scale_batch"]}
    with tempfile.TemporaryDirectory(prefix="repro-shard-bench-") as tmp:
        directory = str(Path(tmp) / "net")
        save_challenge_network(
            generate_challenge_network(neurons, layers, connections=32, seed=8),
            directory,
        )
        env = dict(os.environ)
        src = str(_repo_root() / "src")
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing

        def probe(shards: int) -> dict:
            proc = subprocess.run(
                [sys.executable, "-c", _SHARD_PROBE, directory, str(neurons),
                 str(cfg["scale_batch"]), str(shards)],
                capture_output=True, text=True, env=env,
            )
            if proc.returncode:
                raise RuntimeError(
                    f"shard probe (K={shards}) failed: {proc.stderr[-2000:]}"
                )
            return json.loads(proc.stdout.strip().splitlines()[-1])

        base = probe(0)
        out["unsharded_edges_per_s"] = base["edges_per_s"]
        out["unsharded_rss_mb"] = base["rss_mb"]
        for k in (1, 2, 4):
            reading = probe(k)
            out[f"k{k}"] = {
                "edges_per_s": reading["edges_per_s"],
                "worker_rss_mb": reading["worker_rss_mb"],
                "rss_mb": reading["rss_mb"],
            }
            if reading["worker_rss_mb"] is None:
                notes.append(
                    f"shard.k{k}: worker pool unavailable here "
                    "(serial-transport fallback); worker RSS not measured"
                )
    cores = os.cpu_count()
    if cores is not None and cores < 4:
        notes.append(
            f"shard.*: only {cores} core(s) visible -- K>1 wall-clock wins "
            "need multi-core runners (CI); RSS figures are load-bearing here"
        )
    return out


def collect_metrics(profile: str = "quick") -> tuple[dict, list[str]]:
    """Measure the standard metric set; returns ``(metrics, notes)``."""
    _ensure_importable()
    if profile not in PROFILES:
        raise ValueError(
            f"unknown profile {profile!r}; choose from {sorted(PROFILES)}"
        )
    cfg = PROFILES[profile]
    notes: list[str] = []
    metrics = {
        "kernels": _kernel_metrics(cfg, notes),
        "inference": _inference_metrics(cfg, notes),
        "official_scale": _official_scale_metrics(cfg, notes),
        "generation": _generation_metrics(cfg),
        "serve": _serve_metrics(cfg),
        "shard": _shard_metrics(cfg, notes),
        "train": _train_metrics(cfg, notes),
    }
    return metrics, notes


# --------------------------------------------------------------------------- #
# ledger files
# --------------------------------------------------------------------------- #
def write_ledger(path: str | Path, pr: int, profile: str = "quick",
                 metrics: dict | None = None, notes: list[str] | None = None) -> Path:
    """Measure (unless ``metrics`` is given) and write a ledger file."""
    if metrics is None:
        metrics, notes = collect_metrics(profile)
    ledger = {
        "schema": SCHEMA_VERSION,
        "pr": pr,
        "profile": profile,
        "generated": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "environment": environment_info(),
        "notes": notes or [],
        "metrics": metrics,
    }
    path = Path(path)
    path.write_text(json.dumps(ledger, indent=2, sort_keys=False) + "\n")
    return path


def load_ledger(path: str | Path) -> dict:
    ledger = json.loads(Path(path).read_text())
    if not isinstance(ledger, dict) or "metrics" not in ledger:
        raise ValueError(f"{path} is not a BENCH ledger (no 'metrics' key)")
    return ledger


def find_latest_ledger(root: str | Path | None = None,
                       before_pr: int | None = None) -> Path | None:
    """The committed ``BENCH_<N>.json`` with the highest N (< ``before_pr``)."""
    root = Path(root) if root is not None else _repo_root()
    best: tuple[int, Path] | None = None
    for candidate in root.glob("BENCH_*.json"):
        match = LEDGER_PATTERN.match(candidate.name)
        if not match:
            continue
        number = int(match.group(1))
        if before_pr is not None and number >= before_pr:
            continue
        if best is None or number > best[0]:
            best = (number, candidate)
    return best[1] if best else None


def flatten_metrics(metrics: dict, prefix: str = "") -> dict[str, float | None]:
    """Nested metric dict -> ``{"kernels.scipy.fused_edges_per_s": 1e8, ...}``."""
    flat: dict[str, float | None] = {}
    for key, value in metrics.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(flatten_metrics(value, path))
        elif isinstance(value, (int, float)) or value is None:
            flat[path] = value
    return flat


def compare_ledgers(old: dict, new: dict,
                    tolerance: float = DEFAULT_TOLERANCE) -> list[dict]:
    """Per-metric comparison rows: path, old, new, ratio, status.

    Status is ``regression`` when a metric moved against its direction
    (higher-is-better dropped, or a ``*_ms``/``*_seconds`` latency rose)
    by more than ``tolerance``; ``improved`` for the symmetric move;
    otherwise ``ok``/``added``/``removed``/``unmeasured``.
    """
    old_flat = flatten_metrics(old["metrics"])
    new_flat = flatten_metrics(new["metrics"])
    rows: list[dict] = []
    for path in sorted(set(old_flat) | set(new_flat)):
        old_value = old_flat.get(path)
        new_value = new_flat.get(path)
        row = {"metric": path, "old": old_value, "new": new_value,
               "ratio": None, "status": "ok"}
        if path not in old_flat:
            row["status"] = "added"
        elif path not in new_flat:
            row["status"] = "removed"
        elif old_value is None or new_value is None:
            row["status"] = "unmeasured"
        elif old_value > 0:
            ratio = new_value / old_value
            row["ratio"] = ratio
            lower_better = path.endswith(LOWER_IS_BETTER_SUFFIXES)
            worse = ratio > 1 + tolerance if lower_better else ratio < 1 - tolerance
            better = ratio < 1 - tolerance if lower_better else ratio > 1 + tolerance
            row["status"] = "regression" if worse else ("improved" if better else "ok")
        rows.append(row)
    return rows


def _format_value(value: float | None) -> str:
    if value is None:
        return "-"
    if value >= 1000:
        return f"{value:,.0f}"
    return f"{value:.3g}"


def format_comparison(rows: list[dict], markdown: bool = False) -> str:
    """Render comparison rows as a text or GitHub-markdown table."""
    status_marks = {"regression": "🔻" if markdown else "!", "improved": "🔺" if markdown else "+"}
    header = ("| metric | old | new | ratio | status |",
              "| --- | ---: | ---: | ---: | :---: |") if markdown else (
        f"{'metric':<48} {'old':>14} {'new':>14} {'ratio':>7} status",)
    lines = list(header)
    for row in rows:
        ratio = f"{row['ratio']:.2f}x" if row["ratio"] is not None else "-"
        mark = status_marks.get(row["status"], "")
        status = f"{mark} {row['status']}".strip()
        if markdown:
            lines.append(
                f"| `{row['metric']}` | {_format_value(row['old'])} | "
                f"{_format_value(row['new'])} | {ratio} | {status} |"
            )
        else:
            lines.append(
                f"{row['metric']:<48} {_format_value(row['old']):>14} "
                f"{_format_value(row['new']):>14} {ratio:>7} {status}"
            )
    regressions = sum(1 for row in rows if row["status"] == "regression")
    summary = (f"{len(rows)} metrics compared, {regressions} regression(s) "
               f"beyond {DEFAULT_TOLERANCE:.0%} tolerance")
    lines.append("")
    lines.append(f"**{summary}**" if markdown else summary)
    return "\n".join(lines)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ledger", description="write/compare BENCH_<PR>.json perf ledgers"
    )
    parser.add_argument("--pr", type=int, required=True,
                        help="PR number this ledger records (names the file)")
    parser.add_argument("--profile", choices=sorted(PROFILES), default="quick")
    parser.add_argument("--out", default=None,
                        help="output path (default <repo root>/BENCH_<PR>.json)")
    parser.add_argument("--compare", default=None, metavar="PATH|auto",
                        help="diff against a previous ledger; 'auto' finds the "
                        "latest committed BENCH_<N>.json with N < --pr")
    parser.add_argument("--markdown", default=None, metavar="PATH",
                        help="also write the comparison as a markdown table "
                        "(e.g. $GITHUB_STEP_SUMMARY)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 if any metric regressed beyond tolerance")
    args = parser.parse_args(argv)

    out = Path(args.out) if args.out else _repo_root() / f"BENCH_{args.pr}.json"
    path = write_ledger(out, args.pr, args.profile)
    ledger = load_ledger(path)
    print(f"ledger written to {path} (profile {args.profile})")
    for note in ledger["notes"]:
        print(f"note: {note}")

    if args.compare is None:
        return 0
    if args.compare == "auto":
        previous = find_latest_ledger(before_pr=args.pr)
        if previous is None:
            print("no previous ledger to compare against (first entry)")
            return 0
    else:
        previous = Path(args.compare)
    rows = compare_ledgers(load_ledger(previous), ledger)
    print(f"comparison against {previous}:")
    print(format_comparison(rows))
    if args.markdown:
        Path(args.markdown).write_text(
            f"### Perf ledger: `{path.name}` vs `{Path(previous).name}`\n\n"
            + format_comparison(rows, markdown=True) + "\n"
        )
        print(f"markdown table written to {args.markdown}")
    if args.fail_on_regression and any(r["status"] == "regression" for r in rows):
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
