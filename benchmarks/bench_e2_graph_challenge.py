"""Companion experiment E2: Graph Challenge style sparse DNN inference scaling.

The Graph Challenge distributes RadiX-Net-generated sparse DNNs and measures
inference throughput (edges traversed per second) as the network scales by
factors of four in neurons per layer.  This benchmark regenerates
challenge-style instances with this package's generator (scaled to laptop
sizes), runs the reference ReLU-threshold recurrence, verifies the result
against a dense reference, and reports the same throughput figure of merit.

``test_e2_backend_throughput`` additionally reports edges/second for every
registered sparse backend (see :mod:`repro.backends`), so a single run
compares kernel strategies.  Instance size is tunable through the
``E2_NEURONS`` / ``E2_LAYERS`` / ``E2_BATCH`` environment variables -- CI
smoke runs set tiny values, local runs default to a laptop-scale instance.
"""

import os

import pytest

from repro.backends import available_backends
from repro.challenge.generator import challenge_input_batch, generate_challenge_network
from repro.challenge.inference import InferenceEngine, sparse_dnn_inference
from repro.experiments.scaling import graph_challenge_scaling
from repro.parallel.pipeline import parallel_inference

E2_NEURONS = int(os.environ.get("E2_NEURONS", "256"))
E2_LAYERS = int(os.environ.get("E2_LAYERS", "24"))
E2_BATCH = int(os.environ.get("E2_BATCH", "64"))


def test_e2_inference_scaling(benchmark, report_table):
    rows = benchmark.pedantic(
        graph_challenge_scaling,
        kwargs={
            "base_neurons": 64,
            "sizes": 3,
            "num_layers": 24,
            "batch_size": 32,
            "connections": 8,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    # every size verified against the dense reference
    assert all(row["verified"] == 1.0 for row in rows)
    # neurons scale x4 per step, edges scale with them
    assert rows[1]["neurons"] == 4 * rows[0]["neurons"]
    assert rows[2]["edges"] > rows[1]["edges"] > rows[0]["edges"]

    report_table(
        "E2: Graph Challenge inference scaling (x4 neurons per step)",
        ["neurons/layer", "layers", "edges", "seconds", "edges/s", "categories"],
        [
            [
                int(r["neurons"]),
                int(r["layers"]),
                int(r["edges"]),
                round(r["seconds"], 4),
                int(r["edges_per_second"]),
                int(r["categories"]),
            ]
            for r in rows
        ],
    )


def test_e2_single_inference_kernel(benchmark):
    """Raw kernel timing at one fixed size (pytest-benchmark statistics)."""
    network = generate_challenge_network(E2_NEURONS, E2_LAYERS, connections=8, seed=1)
    batch = challenge_input_batch(E2_NEURONS, E2_BATCH, seed=2)
    result = benchmark(sparse_dnn_inference, network, batch)
    assert result.activations.shape == (E2_BATCH, E2_NEURONS)


@pytest.mark.parametrize("backend", available_backends())
def test_e2_backend_throughput(benchmark, backend):
    """Edges/second of the inference engine under every registered backend.

    The per-backend numbers land in the pytest-benchmark JSON (via
    ``extra_info``), so a ``--benchmark-json`` run is a self-contained
    backend comparison artifact.
    """
    network = generate_challenge_network(E2_NEURONS, E2_LAYERS, connections=8, seed=1)
    batch = challenge_input_batch(E2_NEURONS, E2_BATCH, seed=2)
    engine = InferenceEngine(network, backend=backend)
    result = benchmark(engine.run, batch)
    assert result.backend == backend
    assert result.activations.shape == (E2_BATCH, E2_NEURONS)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["edges_per_second"] = result.edges_per_second
    benchmark.extra_info["edges_traversed"] = result.edges_traversed


def test_e2_chunked_engine_matches_single_shot(benchmark, report_table):
    """Chunked mini-batch streaming is bit-identical to the single-shot path."""
    network = generate_challenge_network(E2_NEURONS, max(4, E2_LAYERS // 2), connections=8, seed=5)
    batch = challenge_input_batch(E2_NEURONS, E2_BATCH, seed=6)
    engine = InferenceEngine(network, backend=None)
    single = engine.run(batch, record_timing=False)

    chunked = benchmark.pedantic(
        engine.run, args=(batch,), kwargs={"chunk_size": max(1, E2_BATCH // 8)},
        rounds=3, iterations=1,
    )
    assert (chunked.activations == single.activations).all()
    assert list(chunked.categories) == list(single.categories)

    report_table(
        "E2: chunked vs single-shot inference",
        ["mode", "batch", "categories", "edges"],
        [
            ["single-shot", batch.shape[0], single.categories.size, single.edges_traversed],
            [f"chunked ({max(1, E2_BATCH // 8)}/chunk)", batch.shape[0], chunked.categories.size, chunked.edges_traversed],
        ],
    )


def test_e2_batch_parallel_inference_matches_serial(benchmark, report_table):
    """Batch-parallel execution is a pure partition: identical categories."""
    network = generate_challenge_network(128, 16, connections=8, seed=3)
    batch = challenge_input_batch(128, 96, seed=4)
    serial = sparse_dnn_inference(network, batch, record_timing=False)

    result = benchmark.pedantic(
        parallel_inference, args=(network, batch), kwargs={"parts": 4}, rounds=3, iterations=1
    )
    assert list(result.categories) == list(serial.categories)

    report_table(
        "E2: batch-parallel vs serial inference",
        ["mode", "batch", "categories"],
        [["serial", batch.shape[0], serial.categories.size], ["parallel (4 parts)", batch.shape[0], result.categories.size]],
    )
