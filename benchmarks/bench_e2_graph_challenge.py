"""Companion experiment E2: Graph Challenge style sparse DNN inference scaling.

The Graph Challenge distributes RadiX-Net-generated sparse DNNs and measures
inference throughput (edges traversed per second) as the network scales by
factors of four in neurons per layer.  This benchmark regenerates
challenge-style instances with this package's generator (scaled to laptop
sizes), runs the reference ReLU-threshold recurrence, verifies the result
against a dense reference, and reports the same throughput figure of merit.
"""

from repro.challenge.generator import challenge_input_batch, generate_challenge_network
from repro.challenge.inference import sparse_dnn_inference
from repro.experiments.scaling import graph_challenge_scaling
from repro.parallel.pipeline import parallel_inference


def test_e2_inference_scaling(benchmark, report_table):
    rows = benchmark.pedantic(
        graph_challenge_scaling,
        kwargs={
            "base_neurons": 64,
            "sizes": 3,
            "num_layers": 24,
            "batch_size": 32,
            "connections": 8,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    # every size verified against the dense reference
    assert all(row["verified"] == 1.0 for row in rows)
    # neurons scale x4 per step, edges scale with them
    assert rows[1]["neurons"] == 4 * rows[0]["neurons"]
    assert rows[2]["edges"] > rows[1]["edges"] > rows[0]["edges"]

    report_table(
        "E2: Graph Challenge inference scaling (x4 neurons per step)",
        ["neurons/layer", "layers", "edges", "seconds", "edges/s", "categories"],
        [
            [
                int(r["neurons"]),
                int(r["layers"]),
                int(r["edges"]),
                round(r["seconds"], 4),
                int(r["edges_per_second"]),
                int(r["categories"]),
            ]
            for r in rows
        ],
    )


def test_e2_single_inference_kernel(benchmark):
    """Raw kernel timing at one fixed size (pytest-benchmark statistics)."""
    network = generate_challenge_network(256, 24, connections=8, seed=1)
    batch = challenge_input_batch(256, 64, seed=2)
    result = benchmark(sparse_dnn_inference, network, batch)
    assert result.activations.shape == (64, 256)


def test_e2_batch_parallel_inference_matches_serial(benchmark, report_table):
    """Batch-parallel execution is a pure partition: identical categories."""
    network = generate_challenge_network(128, 16, connections=8, seed=3)
    batch = challenge_input_batch(128, 96, seed=4)
    serial = sparse_dnn_inference(network, batch, record_timing=False)

    result = benchmark.pedantic(
        parallel_inference, args=(network, batch), kwargs={"parts": 4}, rounds=3, iterations=1
    )
    assert list(result.categories) == list(serial.categories)

    report_table(
        "E2: batch-parallel vs serial inference",
        ["mode", "batch", "categories"],
        [["serial", batch.shape[0], serial.categories.size], ["parallel (4 parts)", batch.shape[0], result.categories.size]],
    )
