"""Companion experiment E2: Graph Challenge style sparse DNN inference scaling.

The Graph Challenge distributes RadiX-Net-generated sparse DNNs and measures
inference throughput (edges traversed per second) as the network scales by
factors of four in neurons per layer.  This benchmark regenerates
challenge-style instances with this package's generator (scaled to laptop
sizes), runs the reference ReLU-threshold recurrence, verifies the result
against a dense reference, and reports the same throughput figure of merit.

``test_e2_backend_throughput`` additionally reports edges/second for every
registered sparse backend (see :mod:`repro.backends`), so a single run
compares kernel strategies.  Instance size is tunable through the
``E2_NEURONS`` / ``E2_LAYERS`` / ``E2_BATCH`` environment variables -- CI
smoke runs set tiny values, local runs default to a laptop-scale instance.
``E2_ACTIVATIONS`` (``auto`` / ``dense`` / ``sparse``) selects the
activation storage policy the engine benchmarks run under, so one CI
matrix produces a per-policy comparison artifact;
``test_e2_activation_policy_memory`` reports edges/second *and* peak
activation nnz for both forced policies side by side, and
``test_e2_official_scale_sparse_policy`` runs the smallest official
challenge size (1024 neurons x 120 layers, ``E2_SCALE_*``-tunable) under
the sparse policy, asserting its peak activation storage stays below the
dense ``batch * neurons`` buffer.

``test_e2_pipeline_overlap_profile`` profiles the staged streaming
pipeline (:mod:`repro.challenge.pipeline`): wall-clock and peak RSS with
the background layer prefetch off vs on (thread and sidecar-process
transports), plus ``test_e2_pipeline_checkpoint_resume_overhead`` for
the cost of periodic atomic checkpoints and a staged
interrupt-and-resume run, and the ``slow``-marked
``test_e2_official_scale_streaming_overlap`` for the same comparison at
the 1024x120 official entry size.

``test_e2_serve_throughput`` benchmarks the serving subsystem
(:mod:`repro.serve`): a live in-process server (network resident,
requests coalesced into micro-batches) under the bundled load generator,
reporting requests/second and latency percentiles per backend (and per
``E2_ACTIVATIONS`` policy) in the benchmark JSON;
``test_e2_serve_batching_amortization`` compares ``max_wait_ms=0``
(no coalescing) against a real batching window under the same load.

``test_e2_generation_throughput`` reports the *generation* side of the
pipeline -- edges/second written through the fully sparse streaming
path (``iter_generate_challenge_layers`` -> ``save_challenge_layers``)
plus the traced per-run generation memory peak -- and
``test_e2_generation_official_scale_smoke``
(marked ``slow``) runs it at the 16384-neuron official size, where the
pre-sparse generator's dense per-layer round-trip would have allocated
2 GB per layer.
"""

import os
import time

import pytest

from repro.backends import available_backends
from repro.challenge.generator import (
    challenge_input_batch,
    generate_challenge_network,
    iter_generate_challenge_layers,
)
from repro.challenge.inference import InferenceEngine, sparse_dnn_inference
from repro.challenge.io import (
    load_challenge_network,
    save_challenge_layers,
    save_challenge_network,
)
from repro.challenge.pipeline import (
    resume_challenge_pipeline,
    run_challenge_pipeline,
)
from repro.experiments.scaling import graph_challenge_scaling
from repro.parallel.pipeline import parallel_inference
from repro.utils.timing import format_rss_mb, peak_rss_mb

E2_NEURONS = int(os.environ.get("E2_NEURONS", "256"))
E2_LAYERS = int(os.environ.get("E2_LAYERS", "24"))
E2_BATCH = int(os.environ.get("E2_BATCH", "64"))
E2_ACTIVATIONS = os.environ.get("E2_ACTIVATIONS", "auto")
E2_SCALE_NEURONS = int(os.environ.get("E2_SCALE_NEURONS", "1024"))
E2_SCALE_LAYERS = int(os.environ.get("E2_SCALE_LAYERS", "120"))
E2_SCALE_BATCH = int(os.environ.get("E2_SCALE_BATCH", "16"))
E2_GEN_NEURONS = int(os.environ.get("E2_GEN_NEURONS", "2048"))
E2_GEN_LAYERS = int(os.environ.get("E2_GEN_LAYERS", "12"))
E2_GEN_SCALE_NEURONS = int(os.environ.get("E2_GEN_SCALE_NEURONS", "16384"))
E2_GEN_SCALE_LAYERS = int(os.environ.get("E2_GEN_SCALE_LAYERS", "2"))


def test_e2_inference_scaling(benchmark, report_table):
    rows = benchmark.pedantic(
        graph_challenge_scaling,
        kwargs={
            "base_neurons": 64,
            "sizes": 3,
            "num_layers": 24,
            "batch_size": 32,
            "connections": 8,
            "seed": 0,
        },
        rounds=1,
        iterations=1,
    )

    # every size verified against the dense reference
    assert all(row["verified"] == 1.0 for row in rows)
    # neurons scale x4 per step, edges scale with them
    assert rows[1]["neurons"] == 4 * rows[0]["neurons"]
    assert rows[2]["edges"] > rows[1]["edges"] > rows[0]["edges"]

    report_table(
        "E2: Graph Challenge inference scaling (x4 neurons per step)",
        ["neurons/layer", "layers", "edges", "seconds", "edges/s", "categories"],
        [
            [
                int(r["neurons"]),
                int(r["layers"]),
                int(r["edges"]),
                round(r["seconds"], 4),
                int(r["edges_per_second"]),
                int(r["categories"]),
            ]
            for r in rows
        ],
    )


def test_e2_single_inference_kernel(benchmark):
    """Raw kernel timing at one fixed size (pytest-benchmark statistics)."""
    network = generate_challenge_network(E2_NEURONS, E2_LAYERS, connections=8, seed=1)
    batch = challenge_input_batch(E2_NEURONS, E2_BATCH, seed=2)
    result = benchmark(sparse_dnn_inference, network, batch)
    assert result.activations.shape == (E2_BATCH, E2_NEURONS)


@pytest.mark.parametrize("backend", available_backends())
def test_e2_backend_throughput(benchmark, backend):
    """Edges/second of the inference engine under every registered backend.

    The per-backend numbers land in the pytest-benchmark JSON (via
    ``extra_info``), so a ``--benchmark-json`` run is a self-contained
    backend comparison artifact.  The activation policy comes from
    ``E2_ACTIVATIONS``, so running the benchmark once per policy yields a
    per-policy comparison as well (the CI smoke does exactly that).
    """
    network = generate_challenge_network(E2_NEURONS, E2_LAYERS, connections=8, seed=1)
    batch = challenge_input_batch(E2_NEURONS, E2_BATCH, seed=2)
    engine = InferenceEngine(network, backend=backend, activations=E2_ACTIVATIONS)
    result = benchmark(engine.run, batch)
    assert result.backend == backend
    assert result.activations.shape == (E2_BATCH, E2_NEURONS)
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["activation_policy"] = E2_ACTIVATIONS
    benchmark.extra_info["edges_per_second"] = result.edges_per_second
    benchmark.extra_info["edges_traversed"] = result.edges_traversed
    benchmark.extra_info["peak_activation_nnz"] = result.peak_activation_nnz


E2_KERNEL_DENSITIES = (0.01, 0.05, 0.2)


def test_e2_kernel_throughput(benchmark, report_table):
    """Per-backend kernel microbenchmark: spgemm/spmm/fused edges/second.

    Isolates the three hot kernels from the end-to-end engine numbers at
    three weight densities, so a backend-level regression (or a JIT tier
    losing its edge at one density) is visible on its own row instead of
    being averaged into a full inference run.  Backends marked as
    performance tiers only -- ``reference`` is an audit oracle and would
    dominate the table's wall-clock for no signal.  Edges/second uses
    the challenge convention: ``nnz(W) x batch rows`` multiply-adds.
    """
    import numpy as np

    from repro.testing import random_csr

    perf_backends = [
        name for name in ("numba", "scipy", "vectorized")
        if name in available_backends()
    ]
    rows = []
    checked = {}
    for density in E2_KERNEL_DENSITIES:
        w, w_dense = random_csr((E2_NEURONS, E2_NEURONS), density, seed=7)
        y, _ = random_csr((E2_BATCH, E2_NEURONS), density, seed=8)
        y = type(y)(y.shape, y.indptr, y.indices, np.abs(y.data))
        dense = np.ascontiguousarray(w_dense.T[:, :E2_BATCH])
        bias = np.full(E2_NEURONS, -0.1)
        edges = w.nnz * E2_BATCH
        for name in perf_backends:
            from repro.backends import get_backend

            backend = get_backend(name)
            warmup = getattr(backend, "warmup", None)
            if warmup is not None:
                warmup()
            spgemm_s, _ = _timed_best(lambda: backend.spgemm(y, w))
            spmm_s, _ = _timed_best(lambda: backend.spmm(w, dense))
            fused_s, fused = _timed_best(
                lambda: backend.sparse_layer_step(y, w, bias, 32.0)
            )
            # cheap cross-backend sanity on the measured operands: every
            # backend's fused result must match the first one measured
            if density not in checked:
                checked[density] = fused.to_dense()
            else:
                np.testing.assert_allclose(
                    fused.to_dense(), checked[density], atol=1e-12
                )
            rows.append([
                name, density, w.nnz,
                int(edges / spgemm_s), int(edges / spmm_s), int(edges / fused_s),
            ])
            benchmark.extra_info[f"{name}.d{density}.spgemm_edges_per_s"] = edges / spgemm_s
            benchmark.extra_info[f"{name}.d{density}.spmm_edges_per_s"] = edges / spmm_s
            benchmark.extra_info[f"{name}.d{density}.fused_edges_per_s"] = edges / fused_s

    assert rows, "no performance-tier backends registered"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    report_table(
        "E2: kernel throughput per backend x density (edges/s)",
        ["backend", "density", "weight nnz", "spgemm", "spmm", "fused"],
        rows,
    )


@pytest.mark.skipif(
    "numba" not in available_backends(),
    reason="numba backend not registered (numba not installed)",
)
def test_e2_fused_numba_beats_scipy_official_scale(report_table):
    """The headline claim: the prange-parallel fused numba layer step beats
    the scipy backend at the 1024x120 official-scale smoke shape.

    Runs one fused ``sparse_layer_step`` at ``E2_SCALE_NEURONS`` width
    with challenge connectivity (32 connections/neuron) and asserts the
    numba tier wins outright; the same numbers are recorded in the
    committed ``BENCH_<PR>.json`` ledger when the measuring environment
    has numba installed.
    """
    import numpy as np

    from repro.backends import get_backend
    from repro.sparse.csr import CSRMatrix

    network = generate_challenge_network(
        E2_SCALE_NEURONS, 2, connections=32, seed=42
    )
    weight = network.weights[0]
    batch = challenge_input_batch(E2_SCALE_NEURONS, E2_SCALE_BATCH, seed=43)
    y = CSRMatrix.from_dense(batch)
    bias = np.asarray(network.biases[0], dtype=np.float64)
    edges = weight.nnz * E2_SCALE_BATCH

    timings = {}
    for name in ("numba", "scipy"):
        backend = get_backend(name)
        warmup = getattr(backend, "warmup", None)
        if warmup is not None:
            warmup()
        timings[name], _ = _timed_best(
            lambda: backend.sparse_layer_step(y, weight, bias, network.threshold),
            rounds=5,
        )

    report_table(
        "E2: fused layer step at official-scale shape (numba vs scipy)",
        ["backend", "seconds", "edges/s"],
        [[name, round(seconds, 5), int(edges / seconds)]
         for name, seconds in timings.items()],
    )
    assert timings["numba"] < timings["scipy"], (
        f"fused numba layer step ({timings['numba']:.5f}s) should beat "
        f"scipy ({timings['scipy']:.5f}s) at official-scale shape"
    )


def test_e2_activation_policy_memory(benchmark, report_table):
    """Dense vs sparse activation policy: identical categories, reported
    edges/second and peak activation nnz side by side."""
    network = generate_challenge_network(E2_NEURONS, E2_LAYERS, connections=8, seed=1)
    batch = challenge_input_batch(E2_NEURONS, E2_BATCH, seed=2)
    engine = InferenceEngine(network)
    dense = engine.run(batch, activations="dense")
    sparse = benchmark.pedantic(
        engine.run, args=(batch,), kwargs={"activations": "sparse"},
        rounds=3, iterations=1,
    )
    assert list(sparse.categories) == list(dense.categories)
    # the memory *win* is asserted at official scale in
    # test_e2_official_scale_sparse_policy; here the peaks are reported
    # for whatever instance the E2_* env selected
    benchmark.extra_info["dense_edges_per_second"] = dense.edges_per_second
    benchmark.extra_info["sparse_edges_per_second"] = sparse.edges_per_second
    benchmark.extra_info["dense_buffer_elements"] = batch.size
    benchmark.extra_info["sparse_peak_activation_nnz"] = sparse.peak_activation_nnz

    report_table(
        "E2: activation policy comparison (identical categories)",
        ["policy", "edges/s", "peak activation nnz", "dense buffer elements"],
        [
            ["dense", int(dense.edges_per_second), dense.peak_activation_nnz, batch.size],
            ["sparse", int(sparse.edges_per_second), sparse.peak_activation_nnz, batch.size],
        ],
    )


def test_e2_official_scale_sparse_policy(benchmark, report_table):
    """Smallest official challenge size under the sparse activation policy.

    1024 neurons x 120 layers (the entry point of the official scaling
    series; ``E2_SCALE_*`` env vars shrink it for constrained runners)
    must complete with CSR activations end-to-end, with peak activation
    storage below the dense ``batch * neurons`` buffer.  The input
    fraction keeps the instance alive through all layers without the
    early transient saturating to full density.
    """
    network = generate_challenge_network(
        E2_SCALE_NEURONS, E2_SCALE_LAYERS, connections=32, seed=42
    )
    batch = challenge_input_batch(
        E2_SCALE_NEURONS, E2_SCALE_BATCH, active_fraction=0.28, seed=43
    )
    engine = InferenceEngine(network)
    result = benchmark.pedantic(
        engine.run, args=(batch,), kwargs={"activations": "sparse"},
        rounds=1, iterations=1,
    )
    assert result.layer_modes == ["sparse"] * E2_SCALE_LAYERS
    assert result.peak_activation_nnz < batch.size
    benchmark.extra_info["edges_per_second"] = result.edges_per_second
    benchmark.extra_info["peak_activation_nnz"] = result.peak_activation_nnz
    benchmark.extra_info["dense_buffer_elements"] = batch.size

    report_table(
        "E2: official-scale sparse activation policy",
        ["neurons", "layers", "edges/s", "peak nnz", "dense buffer", "final density"],
        [[
            E2_SCALE_NEURONS,
            E2_SCALE_LAYERS,
            int(result.edges_per_second),
            result.peak_activation_nnz,
            batch.size,
            round(result.layer_density[-1], 4),
        ]],
    )


def _traced_generation_peak_mb(neurons: int, layers: int, connections: int) -> float:
    """tracemalloc peak (MB) of consuming the layer generator, disk-free.

    Isolated per call, unlike ``ru_maxrss`` (a process-lifetime
    high-water mark that earlier tests in the same pytest process would
    contaminate): this is the number that demonstrates generation memory
    is bounded by a single layer's nnz.  Measured without the TSV write
    (tracemalloc makes ``np.savetxt`` pathologically slow and per-row
    string buffers are transient anyway).
    """
    import tracemalloc

    tracemalloc.start()
    try:
        for _ in iter_generate_challenge_layers(
            neurons, layers, connections=connections, seed=7
        ):
            pass
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / 2**20


def test_e2_generation_throughput(benchmark, tmp_path, report_table):
    """Streaming generation -> disk: edges/second generated and peak memory.

    Drives the fully sparse generation path
    (:func:`iter_generate_challenge_layers` feeding
    :func:`save_challenge_layers`): one CSR layer resident at a time,
    TSV + sidecar members written as each layer is produced.  Size is
    tunable via ``E2_GEN_NEURONS`` / ``E2_GEN_LAYERS``.  Reports both
    the per-run traced generation peak (isolated; see
    :func:`_traced_generation_peak_mb`) and the process-lifetime RSS
    high-water mark for context.
    """
    neurons, layers, connections = E2_GEN_NEURONS, E2_GEN_LAYERS, 32
    if neurons % connections != 0:
        connections = 8
    edges = neurons * connections * layers

    def generate():
        return save_challenge_layers(
            tmp_path / "net",
            iter_generate_challenge_layers(
                neurons, layers, connections=connections, seed=7
            ),
            neurons=neurons,
            num_layers=layers,
            threshold=32.0,
        )

    benchmark.pedantic(generate, rounds=3, iterations=1)
    seconds = benchmark.stats.stats.mean
    traced_mb = _traced_generation_peak_mb(neurons, layers, connections)
    benchmark.extra_info["edges_generated"] = edges
    benchmark.extra_info["edges_per_second"] = edges / seconds
    benchmark.extra_info["generation_peak_traced_mb"] = traced_mb
    benchmark.extra_info["process_peak_rss_mb"] = peak_rss_mb()

    report_table(
        "E2: streaming challenge generation -> disk",
        ["neurons", "layers", "edges", "seconds", "edges/s", "gen peak (MB, traced)"],
        [[neurons, layers, edges, round(seconds, 4), int(edges / seconds), round(traced_mb, 1)]],
    )


@pytest.mark.slow
def test_e2_generation_official_scale_smoke(tmp_path, report_table):
    """16384-neuron generation smoke: the old dense path allocated an N^2
    buffer per layer (2 GB at this size); the sparse streaming path must
    complete quickly in bounded memory.  ``E2_GEN_SCALE_*``-tunable up to
    the full official 65536."""
    neurons, layers = E2_GEN_SCALE_NEURONS, E2_GEN_SCALE_LAYERS
    connections = 32
    edges = neurons * connections * layers
    start = time.perf_counter()
    save_challenge_layers(
        tmp_path / "net",
        iter_generate_challenge_layers(neurons, layers, connections=connections, seed=8),
        neurons=neurons,
        num_layers=layers,
        threshold=32.0,
    )
    seconds = time.perf_counter() - start
    traced_mb = _traced_generation_peak_mb(neurons, layers, connections)
    dense_layer_mb = neurons * neurons * 8 / 2**20
    # far below the dense per-layer buffer; the 64 MB floor keeps the
    # bound meaningful when E2_GEN_SCALE_* shrinks the run to sizes where
    # constant interpreter/numpy overhead dominates
    assert traced_mb < max(dense_layer_mb / 8, 64.0)
    report_table(
        "E2: official-scale streaming generation smoke",
        ["neurons", "layers", "edges", "seconds", "edges/s", "gen peak (MB, traced)", "dense layer (MB)"],
        [[neurons, layers, edges, round(seconds, 4), int(edges / seconds),
          round(traced_mb, 1), int(dense_layer_mb)]],
    )


E2_SERVE_REQUESTS = int(os.environ.get("E2_SERVE_REQUESTS", "80"))
E2_SERVE_CLIENTS = int(os.environ.get("E2_SERVE_CLIENTS", "4"))
E2_SERVE_ROWS = int(os.environ.get("E2_SERVE_ROWS", "2"))


@pytest.mark.parametrize("backend", available_backends())
def test_e2_serve_throughput(benchmark, backend, report_table):
    """Requests/second + tail latency of a live serve instance per backend.

    Spins an in-process server (:func:`repro.serve.serve_in_background`,
    the same app behind ``repro challenge serve``) with the network
    resident, then drives it with the bundled load generator
    (:func:`repro.serve.bench_serve`, the ``bench-serve`` CLI body).
    Every number lands in ``extra_info``, so the ``--benchmark-json``
    artifact is a per-backend (and, via ``E2_ACTIVATIONS``, per-policy)
    serving comparison.  ``auto`` is mapped to ``dense``: serving mixes
    batch sizes, and the forced policies are the reproducible ones.
    """
    from repro.serve import ServingEngine, bench_serve, serve_in_background

    policy = E2_ACTIVATIONS if E2_ACTIVATIONS in ("dense", "sparse") else "dense"
    network = generate_challenge_network(E2_NEURONS, E2_LAYERS, connections=8, seed=1)
    engine = ServingEngine.from_network(network, backend=backend, activations=policy)

    def load():
        with serve_in_background(engine, max_batch=32, max_wait_ms=2.0) as handle:
            host, port = handle.address
            return bench_serve(
                host, port,
                requests=E2_SERVE_REQUESTS,
                clients=E2_SERVE_CLIENTS,
                rows_per_request=E2_SERVE_ROWS,
                seed=3,
            )

    report = benchmark.pedantic(load, rounds=1, iterations=1)
    assert report["errors"] == 0
    assert report["completed"] == E2_SERVE_REQUESTS
    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["activation_policy"] = policy
    benchmark.extra_info["requests_per_second"] = report["requests_per_second"]
    benchmark.extra_info["rows_per_second"] = report["rows_per_second"]
    benchmark.extra_info["latency_p50_ms"] = report["latency_p50_ms"]
    benchmark.extra_info["latency_p99_ms"] = report["latency_p99_ms"]
    benchmark.extra_info["mean_batch_rows"] = report["server_stats"]["mean_batch_rows"]

    report_table(
        f"E2: serve throughput ({backend}, {policy} activations, "
        f"{E2_SERVE_CLIENTS} clients)",
        ["requests", "req/s", "rows/s", "p50 (ms)", "p99 (ms)", "mean batch rows"],
        [[
            report["completed"],
            int(report["requests_per_second"]),
            int(report["rows_per_second"]),
            round(report["latency_p50_ms"], 2),
            round(report["latency_p99_ms"], 2),
            round(report["server_stats"]["mean_batch_rows"], 1),
        ]],
    )


def test_e2_serve_batching_amortization(report_table):
    """Micro-batching under concurrent load: coalescing must actually
    coalesce (mean batch > 1 row) while staying answer-identical; the
    no-wait configuration is the baseline."""
    from repro.serve import ServingEngine, bench_serve, serve_in_background

    network = generate_challenge_network(E2_NEURONS, E2_LAYERS, connections=8, seed=1)
    engine = ServingEngine.from_network(network, activations="dense")
    rows_by_config = {}
    reports = {}
    for label, max_wait_ms in (("no coalescing (0ms)", 0.0), ("2ms window", 2.0)):
        with serve_in_background(engine, max_batch=32, max_wait_ms=max_wait_ms) as handle:
            host, port = handle.address
            reports[label] = bench_serve(
                host, port,
                requests=E2_SERVE_REQUESTS,
                clients=E2_SERVE_CLIENTS,
                rows_per_request=1,
                seed=4,
            )
        assert reports[label]["errors"] == 0
        rows_by_config[label] = reports[label]["server_stats"]["mean_batch_rows"]

    report_table(
        "E2: serve micro-batch amortization (1-row requests)",
        ["configuration", "req/s", "p99 (ms)", "mean batch rows", "engine steps"],
        [[
            label,
            int(r["requests_per_second"]),
            round(r["latency_p99_ms"], 2),
            round(r["server_stats"]["mean_batch_rows"], 1),
            r["server_stats"]["batches"],
        ] for label, r in reports.items()],
    )


def _timed_best(fn, rounds=3):
    """Best-of-N wall-clock of ``fn`` plus its last result."""
    best, result = float("inf"), None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_e2_pipeline_overlap_profile(benchmark, tmp_path, report_table):
    """Staged-pipeline profile: prefetch overlap on/off, wall-clock + peak RSS.

    Streams a saved network from its TSVs (``use_cache=False``, so the
    load stage does real parsing work) three ways: no prefetch, a
    background prefetch thread, and the sidecar-process transport (which
    overlaps even the GIL-holding parse with the compute kernels).
    Categories must be identical in all three.  On single-core runners
    no overlap is physically possible, so the timing assertions pin
    *bounded overhead*, not a strict speedup -- the reported table and
    the ``extra_info`` in the benchmark JSON are the profile artifact
    (``cpu_count`` is recorded so a reader can interpret the ratios).
    """
    neurons, layers, batch_rows = 512, 24, 128
    network = generate_challenge_network(neurons, layers, connections=8, seed=9)
    net_dir = tmp_path / "net"
    save_challenge_network(network, net_dir)
    batch = challenge_input_batch(neurons, batch_rows, seed=10)

    def run(prefetch, transport="thread"):
        return run_challenge_pipeline(
            net_dir, neurons, batch, prefetch=prefetch, transport=transport,
            use_cache=False, record_timing=False,
        )

    off_seconds, off = _timed_best(lambda: run(0))
    thread_seconds, via_thread = _timed_best(lambda: run(4))
    process_seconds, via_process = _timed_best(lambda: run(4, "process"))
    via_benchmark = benchmark.pedantic(run, args=(4,), rounds=3, iterations=1)

    for outcome in (via_thread, via_process, via_benchmark):
        assert outcome.completed
        assert list(outcome.result.categories) == list(off.result.categories)
    # overlap must never cost much even where it cannot win (1-core boxes);
    # the process transport additionally pays spawn + array shipping
    assert thread_seconds < off_seconds * 1.5
    assert process_seconds < off_seconds * 2.0

    cpus = os.cpu_count() or 1
    rss = peak_rss_mb()
    benchmark.extra_info["cpu_count"] = cpus
    benchmark.extra_info["overlap_off_seconds"] = off_seconds
    benchmark.extra_info["overlap_thread_seconds"] = thread_seconds
    benchmark.extra_info["overlap_process_seconds"] = process_seconds
    benchmark.extra_info["thread_speedup"] = off_seconds / thread_seconds
    benchmark.extra_info["process_speedup"] = off_seconds / process_seconds
    benchmark.extra_info["peak_rss_mb"] = rss  # None (JSON null) when unavailable

    report_table(
        f"E2: pipeline prefetch overlap profile ({cpus} CPUs, "
        f"peak RSS {format_rss_mb(rss)})",
        ["configuration", "seconds", "speedup vs off"],
        [
            ["prefetch off", round(off_seconds, 4), "1.00x"],
            ["prefetch 4 (thread)", round(thread_seconds, 4),
             f"{off_seconds / thread_seconds:.2f}x"],
            ["prefetch 4 (process)", round(process_seconds, 4),
             f"{off_seconds / process_seconds:.2f}x"],
        ],
    )


def test_e2_pipeline_checkpoint_resume_overhead(tmp_path, report_table):
    """Checkpointed + interrupted + resumed run: bit-identical categories,
    and periodic checkpointing stays a small fraction of the run."""
    neurons, layers = 256, 24
    network = generate_challenge_network(neurons, layers, connections=8, seed=11)
    net_dir = tmp_path / "net"
    save_challenge_network(network, net_dir)
    batch = challenge_input_batch(neurons, 64, seed=12)

    plain_seconds, plain = _timed_best(
        lambda: run_challenge_pipeline(net_dir, neurons, batch, prefetch=0,
                                       record_timing=False))
    ck_seconds, checkpointed = _timed_best(
        lambda: run_challenge_pipeline(net_dir, neurons, batch, prefetch=0,
                                       checkpoint_dir=tmp_path / "ck",
                                       checkpoint_every=4, record_timing=False))
    staged = run_challenge_pipeline(net_dir, neurons, batch, prefetch=0,
                                    checkpoint_dir=tmp_path / "ck2",
                                    checkpoint_every=4, stop_after=layers // 2,
                                    record_timing=False)
    assert not staged.completed
    resumed = resume_challenge_pipeline(tmp_path / "ck2")
    assert resumed.completed and resumed.resumed_from == layers // 2
    assert list(plain.result.categories) == list(checkpointed.result.categories)
    assert list(plain.result.categories) == list(resumed.result.categories)
    assert (plain.result.activations == resumed.result.activations).all()

    report_table(
        "E2: pipeline checkpoint/resume (identical categories)",
        ["configuration", "seconds"],
        [
            ["no checkpointing", round(plain_seconds, 4)],
            [f"checkpoint every 4 of {layers}", round(ck_seconds, 4)],
        ],
    )


@pytest.mark.slow
def test_e2_official_scale_streaming_overlap(tmp_path, report_table):
    """The 1024x120 official entry size through the staged streaming pipeline.

    Generates the network to disk, then runs checkpointed streaming
    inference with the prefetch overlap off / thread / process, straight
    from the TSVs.  ``E2_SCALE_*`` tunes the size.  Assertions pin
    identical categories and bounded overhead; the wall-clock comparison
    is the report (overlap can only win where cores are available).
    """
    neurons, layers = E2_SCALE_NEURONS, E2_SCALE_LAYERS
    connections = 32 if neurons % 32 == 0 else 8
    net_dir = tmp_path / "net"
    save_challenge_layers(
        net_dir,
        iter_generate_challenge_layers(neurons, layers, connections=connections, seed=42),
        neurons=neurons, num_layers=layers, threshold=32.0,
    )
    batch = challenge_input_batch(neurons, E2_SCALE_BATCH, active_fraction=0.28, seed=43)

    results = {}
    timings = {}
    for label, kwargs in (
        ("prefetch off", {"prefetch": 0}),
        ("prefetch 4 (thread)", {"prefetch": 4}),
        ("prefetch 4 (process)", {"prefetch": 4, "transport": "process"}),
    ):
        start = time.perf_counter()
        results[label] = run_challenge_pipeline(
            net_dir, neurons, batch, use_cache=False, record_timing=False, **kwargs
        )
        timings[label] = time.perf_counter() - start
    baseline = results["prefetch off"]
    for label, outcome in results.items():
        assert outcome.completed, label
        assert list(outcome.result.categories) == list(baseline.result.categories), label
    assert timings["prefetch 4 (thread)"] < timings["prefetch off"] * 1.5
    assert timings["prefetch 4 (process)"] < timings["prefetch off"] * 2.0

    rss = peak_rss_mb()
    report_table(
        f"E2: official-scale streaming overlap ({neurons}x{layers}, "
        f"{os.cpu_count() or 1} CPUs, peak RSS {format_rss_mb(rss)})",
        ["configuration", "seconds", "edges/s"],
        [[label, round(seconds, 3),
          int(baseline.result.edges_traversed / seconds)]
         for label, seconds in timings.items()],
    )


def test_e2_io_round_trip_speed(benchmark, tmp_path, report_table):
    """TSV round-trip is vectorized and the binary sidecar beats reparsing.

    Asserts the round-trip's *shape*: save+load preserves the network,
    and a warm (sidecar-cached, memory-mapped) load is faster than a
    cold TSV parse of the same network.  The instance size is fixed
    (independent of the ``E2_*`` smoke shrinkage) at a point where
    parsing cost, not constant per-layer overhead, dominates -- the
    comparison is meaningless on a handful of TSV lines.
    """
    import time as _time

    neurons, layers = 256, 24
    network = generate_challenge_network(neurons, layers, connections=8, seed=1)

    def round_trip():
        save_challenge_network(network, tmp_path)
        return load_challenge_network(tmp_path, neurons)

    loaded = benchmark.pedantic(round_trip, rounds=3, iterations=1)
    assert loaded.topology.same_topology(network.topology)

    start = _time.perf_counter()
    load_challenge_network(tmp_path, neurons, use_cache=False)
    tsv_seconds = _time.perf_counter() - start
    start = _time.perf_counter()
    load_challenge_network(tmp_path, neurons)
    cached_seconds = _time.perf_counter() - start
    assert cached_seconds < tsv_seconds, (
        f"sidecar cache load ({cached_seconds:.4f}s) should beat "
        f"TSV parsing ({tsv_seconds:.4f}s)"
    )
    benchmark.extra_info["tsv_load_seconds"] = tsv_seconds
    benchmark.extra_info["cached_load_seconds"] = cached_seconds

    report_table(
        "E2: challenge network I/O round trip",
        ["path", "seconds"],
        [["cold TSV parse", round(tsv_seconds, 4)], ["warm sidecar (mmap)", round(cached_seconds, 4)]],
    )


def test_e2_chunked_engine_matches_single_shot(benchmark, report_table):
    """Chunked mini-batch streaming is bit-identical to the single-shot path."""
    network = generate_challenge_network(E2_NEURONS, max(4, E2_LAYERS // 2), connections=8, seed=5)
    batch = challenge_input_batch(E2_NEURONS, E2_BATCH, seed=6)
    engine = InferenceEngine(network, backend=None)
    single = engine.run(batch, record_timing=False)

    chunked = benchmark.pedantic(
        engine.run, args=(batch,), kwargs={"chunk_size": max(1, E2_BATCH // 8)},
        rounds=3, iterations=1,
    )
    assert (chunked.activations == single.activations).all()
    assert list(chunked.categories) == list(single.categories)

    report_table(
        "E2: chunked vs single-shot inference",
        ["mode", "batch", "categories", "edges"],
        [
            ["single-shot", batch.shape[0], single.categories.size, single.edges_traversed],
            [f"chunked ({max(1, E2_BATCH // 8)}/chunk)", batch.shape[0], chunked.categories.size, chunked.edges_traversed],
        ],
    )


def test_e2_batch_parallel_inference_matches_serial(benchmark, report_table):
    """Batch-parallel execution is a pure partition: identical categories."""
    network = generate_challenge_network(128, 16, connections=8, seed=3)
    batch = challenge_input_batch(128, 96, seed=4)
    serial = sparse_dnn_inference(network, batch, record_timing=False)

    result = benchmark.pedantic(
        parallel_inference, args=(network, batch), kwargs={"parts": 4}, rounds=3, iterations=1
    )
    assert list(result.categories) == list(serial.categories)

    report_table(
        "E2: batch-parallel vs serial inference",
        ["mode", "batch", "categories"],
        [["serial", batch.shape[0], serial.categories.size], ["parallel (4 parts)", batch.shape[0], result.categories.size]],
    )
