"""Figure 5: the Kronecker-product expansion with dense layer widths.

Regenerates the Figure-5 expansion (dense widths in the spirit of
D = 3, 5, 4, 2) and checks that the expansion multiplies layer widths by
the dense factors while preserving symmetry and Theorem-1 path counts.
"""

from repro.experiments.figures import figure5_kronecker_data


def test_fig5_kronecker_expansion(benchmark, report_table):
    data = benchmark(figure5_kronecker_data)

    base = data.base_layer_sizes
    expanded = data.expanded_layer_sizes
    widths = data.spec.widths
    assert expanded == tuple(b * d for b, d in zip(base, widths))
    assert data.symmetric
    assert data.path_count == data.predicted_path_count

    report_table(
        "Figure 5: Kronecker expansion W*_i (x) W_i",
        ["layer", "EMR width (N')", "dense width D_i", "expanded width"],
        [[i, base[i], widths[i], expanded[i]] for i in range(len(widths))],
    )


def test_fig5_kron_kernel_throughput(benchmark):
    """Raw Kronecker kernel timing on a challenge-sized layer."""
    from repro.core.mixed_radix_topology import mixed_radix_submatrix
    from repro.sparse.csr import CSRMatrix
    from repro.sparse.ops import kron

    base = mixed_radix_submatrix((8, 16), 0)  # 128 x 128, degree 8
    ones = CSRMatrix.ones((4, 4))
    result = benchmark(kron, ones, base)
    assert result.shape == (512, 512)
    assert result.nnz == 16 * base.nnz
