"""The numba backend: JIT-compiled, parallel CSR kernels.

This is the compiled CPU tier of the backend registry (ROADMAP item 2,
CPU half).  The hot kernels -- SpGEMM, SpMM, SpMV, transpose, column
permutation, and above all the fused Graph Challenge layer step
``min(max(Y W + b, 0), threshold)`` -- are ``@njit(cache=True)``
nopython functions; the row-independent ones additionally run
``parallel=True`` with a ``prange`` over output rows, so the recurrence
escapes the GIL and scales across cores (which compounds with the
sidecar-process prefetch of the streaming pipeline: parse in one
process, multi-threaded compute in another).

Design notes
------------

* SpGEMM and the fused layer step share one structure: a *padded*
  Gustavson gather.  A first parallel pass computes a per-row column
  cap (sum of B-row degrees, clamped to ``ncols``), a prefix sum turns
  the caps into a scratch layout, a second parallel pass gathers each
  output row into a dense accumulator (generation-tagged marker, so the
  accumulator is never cleared), sorts the touched columns, filters
  (exact zeros for SpGEMM; the bias/ReLU/clamp for the fused step), and
  a final parallel pass compacts the scratch into canonical CSR.  Every
  accumulation happens in the same ``(k, q)`` order as the reference
  row-merge kernel, so results are bit-identical to the oracle.
* Like the other backends, kernels are *unchecked*: shapes and the
  non-positive-bias precondition are validated at the dispatch layer.
* ``kron`` and ``add`` are construction-path operations outside the
  inference hot loop; ``kron`` delegates to the vectorized NumPy
  backend, ``add`` is a compiled two-pass sorted-row merge.

Import gating
-------------

The module imports whether or not numba is installed.  When numba is
missing, ``@njit`` falls back to an identity decorator and ``prange``
to ``range`` -- the kernels then run as ordinary (slow) Python, which is
how the algorithm-parity tests exercise this module in minimal
environments -- but the backend is **registered only when numba is
importable**, so ``available_backends()`` stays truthful and ``auto``
selection falls back to scipy.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import register, register_unavailable
from repro.sparse.csr import CSRMatrix

try:  # pragma: no cover - exercised implicitly by whichever env runs this
    from numba import njit, prange

    NUMBA_AVAILABLE = True
    UNAVAILABLE_REASON = ""
except ImportError:
    NUMBA_AVAILABLE = False
    UNAVAILABLE_REASON = (
        "numba is not installed (pip install 'radixnet-repro[numba]')"
    )
    prange = range

    def njit(*args, **kwargs):  # type: ignore[misc]
        """Identity decorator: kernels run as pure Python without numba."""
        if args and callable(args[0]):
            return args[0]

        def decorate(func):
            return func

        return decorate


def numba_available() -> bool:
    """True when numba can be imported in this environment."""
    return NUMBA_AVAILABLE


# --------------------------------------------------------------------------- #
# nopython kernels (CSR buffers in, CSR buffers out)
# --------------------------------------------------------------------------- #
@njit(cache=True, parallel=True)
def _spgemm_kernel(a_indptr, a_indices, a_data, b_indptr, b_indices, b_data, n_rows, n_cols):
    # pass 1: per-row scratch cap = sum of B-row degrees, clamped to n_cols
    offsets = np.zeros(n_rows + 1, dtype=np.int64)
    for i in prange(n_rows):
        cap = 0
        for p in range(a_indptr[i], a_indptr[i + 1]):
            k = a_indices[p]
            cap += b_indptr[k + 1] - b_indptr[k]
        offsets[i + 1] = min(cap, n_cols)
    for i in range(n_rows):
        offsets[i + 1] += offsets[i]
    scratch_cols = np.empty(offsets[n_rows], dtype=np.int64)
    scratch_vals = np.empty(offsets[n_rows], dtype=np.float64)
    counts = np.zeros(n_rows, dtype=np.int64)
    # pass 2: gather each row (generation-tagged marker; (k, q) order
    # matches the reference row-merge accumulator bit-for-bit), sort the
    # touched columns, drop exact zeros
    for i in prange(n_rows):
        base = offsets[i]
        marker = np.full(n_cols, -1, dtype=np.int64)
        acc = np.empty(n_cols, dtype=np.float64)
        touched = 0
        for p in range(a_indptr[i], a_indptr[i + 1]):
            k = a_indices[p]
            av = a_data[p]
            for q in range(b_indptr[k], b_indptr[k + 1]):
                j = b_indices[q]
                if marker[j] < 0:
                    marker[j] = 1
                    scratch_cols[base + touched] = j
                    touched += 1
                    acc[j] = av * b_data[q]
                else:
                    acc[j] += av * b_data[q]
        cols = np.sort(scratch_cols[base:base + touched])
        kept = 0
        for t in range(touched):
            j = cols[t]
            v = acc[j]
            if v != 0.0:
                scratch_cols[base + kept] = j
                scratch_vals[base + kept] = v
                kept += 1
        counts[i] = kept
    # pass 3: compact the scratch layout into canonical CSR
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    for i in range(n_rows):
        indptr[i + 1] = indptr[i] + counts[i]
    out_indices = np.empty(indptr[n_rows], dtype=np.int64)
    out_data = np.empty(indptr[n_rows], dtype=np.float64)
    for i in prange(n_rows):
        src = offsets[i]
        dst = indptr[i]
        for t in range(counts[i]):
            out_indices[dst + t] = scratch_cols[src + t]
            out_data[dst + t] = scratch_vals[src + t]
    return indptr, out_indices, out_data


@njit(cache=True, parallel=True)
def _fused_layer_step_kernel(
    y_indptr, y_indices, y_data, w_indptr, w_indices, w_data,
    bias, threshold, n_rows, n_cols,
):
    # the headline kernel: SpGEMM + bias-on-active-rows + ReLU + threshold
    # clamp fused into one padded-gather pass, row-parallel across cores
    offsets = np.zeros(n_rows + 1, dtype=np.int64)
    for i in prange(n_rows):
        cap = 0
        for p in range(y_indptr[i], y_indptr[i + 1]):
            k = y_indices[p]
            cap += w_indptr[k + 1] - w_indptr[k]
        offsets[i + 1] = min(cap, n_cols)
    for i in range(n_rows):
        offsets[i + 1] += offsets[i]
    scratch_cols = np.empty(offsets[n_rows], dtype=np.int64)
    scratch_vals = np.empty(offsets[n_rows], dtype=np.float64)
    counts = np.zeros(n_rows, dtype=np.int64)
    for i in prange(n_rows):
        base = offsets[i]
        marker = np.full(n_cols, -1, dtype=np.int64)
        acc = np.empty(n_cols, dtype=np.float64)
        touched = 0
        row_sum = 0.0
        for p in range(y_indptr[i], y_indptr[i + 1]):
            k = y_indices[p]
            av = y_data[p]
            row_sum += av
            for q in range(w_indptr[k], w_indptr[k + 1]):
                j = w_indices[q]
                if marker[j] < 0:
                    marker[j] = 1
                    scratch_cols[base + touched] = j
                    touched += 1
                    acc[j] = av * w_data[q]
                else:
                    acc[j] += av * w_data[q]
        active = row_sum > 0.0
        cols = np.sort(scratch_cols[base:base + touched])
        kept = 0
        for t in range(touched):
            j = cols[t]
            v = acc[j]
            if active:
                v += bias[j]
            if v > threshold:
                v = threshold
            if v > 0.0:
                scratch_cols[base + kept] = j
                scratch_vals[base + kept] = v
                kept += 1
        counts[i] = kept
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    for i in range(n_rows):
        indptr[i + 1] = indptr[i] + counts[i]
    out_indices = np.empty(indptr[n_rows], dtype=np.int64)
    out_data = np.empty(indptr[n_rows], dtype=np.float64)
    for i in prange(n_rows):
        src = offsets[i]
        dst = indptr[i]
        for t in range(counts[i]):
            out_indices[dst + t] = scratch_cols[src + t]
            out_data[dst + t] = scratch_vals[src + t]
    return indptr, out_indices, out_data


@njit(cache=True, parallel=True)
def _sdmm_kernel(indptr, indices, x, dy, n_rows):
    # sampled dense-dense multiply on a fixed pattern: entries of one
    # pattern row are independent, so rows parallelize cleanly and the
    # inner batch reduction stays cache-friendly (column-major walks of
    # x and dy for consecutive b)
    out = np.empty(indices.size, dtype=np.float64)
    batch = x.shape[0]
    for i in prange(n_rows):
        for p in range(indptr[i], indptr[i + 1]):
            j = indices[p]
            total = 0.0
            for b in range(batch):
                total += x[b, i] * dy[b, j]
            out[p] = total
    return out


@njit(cache=True, parallel=True)
def _spmm_kernel(indptr, indices, data, dense, out):
    # out[i, :] accumulated in storage order: bit-identical to the
    # reference scatter-add
    n_rows = out.shape[0]
    width = out.shape[1]
    for i in prange(n_rows):
        for p in range(indptr[i], indptr[i + 1]):
            v = data[p]
            row = indices[p]
            for j in range(width):
                out[i, j] += v * dense[row, j]


@njit(cache=True, parallel=True)
def _spmv_kernel(indptr, indices, data, vector, out):
    n_rows = out.shape[0]
    for i in prange(n_rows):
        total = 0.0
        for p in range(indptr[i], indptr[i + 1]):
            total += data[p] * vector[indices[p]]
        out[i] = total


@njit(cache=True)
def _transpose_kernel(indptr, indices, data, n_rows, n_cols):
    # counting sort by column; the row-major input order makes each
    # output row's columns strictly increasing (canonical CSR) and
    # retains explicitly stored zeros
    nnz = indices.size
    out_indptr = np.zeros(n_cols + 1, dtype=np.int64)
    for p in range(nnz):
        out_indptr[indices[p] + 1] += 1
    for j in range(n_cols):
        out_indptr[j + 1] += out_indptr[j]
    cursor = out_indptr[:n_cols].copy()
    out_indices = np.empty(nnz, dtype=np.int64)
    out_data = np.empty(nnz, dtype=np.float64)
    for i in range(n_rows):
        for p in range(indptr[i], indptr[i + 1]):
            j = indices[p]
            pos = cursor[j]
            cursor[j] = pos + 1
            out_indices[pos] = i
            out_data[pos] = data[p]
    return out_indptr, out_indices, out_data


@njit(cache=True, parallel=True)
def _permute_columns_kernel(indptr, indices, data, inverse, n_rows):
    # pure O(nnz) reordering: remap each row's columns through the
    # inverse permutation and re-sort the row (keys are distinct)
    out_indices = np.empty(indices.size, dtype=np.int64)
    out_data = np.empty(data.size, dtype=np.float64)
    for i in prange(n_rows):
        start = indptr[i]
        stop = indptr[i + 1]
        mapped = inverse[indices[start:stop]]
        order = np.argsort(mapped)
        for t in range(stop - start):
            out_indices[start + t] = mapped[order[t]]
            out_data[start + t] = data[start + order[t]]
    return out_indices, out_data


@njit(cache=True, parallel=True)
def _add_kernel(a_indptr, a_indices, a_data, b_indptr, b_indices, b_data, n_rows):
    # two-pass sorted-row merge; explicitly stored zeros are retained
    # (matching the vectorized backend's add)
    counts = np.zeros(n_rows, dtype=np.int64)
    for i in prange(n_rows):
        pa = a_indptr[i]
        pb = b_indptr[i]
        ea = a_indptr[i + 1]
        eb = b_indptr[i + 1]
        n = 0
        while pa < ea and pb < eb:
            ca = a_indices[pa]
            cb = b_indices[pb]
            if ca == cb:
                pa += 1
                pb += 1
            elif ca < cb:
                pa += 1
            else:
                pb += 1
            n += 1
        counts[i] = n + (ea - pa) + (eb - pb)
    indptr = np.zeros(n_rows + 1, dtype=np.int64)
    for i in range(n_rows):
        indptr[i + 1] = indptr[i] + counts[i]
    out_indices = np.empty(indptr[n_rows], dtype=np.int64)
    out_data = np.empty(indptr[n_rows], dtype=np.float64)
    for i in prange(n_rows):
        pa = a_indptr[i]
        pb = b_indptr[i]
        ea = a_indptr[i + 1]
        eb = b_indptr[i + 1]
        pos = indptr[i]
        while pa < ea and pb < eb:
            ca = a_indices[pa]
            cb = b_indices[pb]
            if ca == cb:
                out_indices[pos] = ca
                out_data[pos] = a_data[pa] + b_data[pb]
                pa += 1
                pb += 1
            elif ca < cb:
                out_indices[pos] = ca
                out_data[pos] = a_data[pa]
                pa += 1
            else:
                out_indices[pos] = cb
                out_data[pos] = b_data[pb]
                pb += 1
            pos += 1
        while pa < ea:
            out_indices[pos] = a_indices[pa]
            out_data[pos] = a_data[pa]
            pa += 1
            pos += 1
        while pb < eb:
            out_indices[pos] = b_indices[pb]
            out_data[pos] = b_data[pb]
            pb += 1
            pos += 1
    return indptr, out_indices, out_data


# --------------------------------------------------------------------------- #
# the backend
# --------------------------------------------------------------------------- #
class NumbaBackend:
    """JIT-compiled parallel CSR kernels (pure Python without numba)."""

    name = "numba"

    def __init__(self) -> None:
        self._warm = False

    # -- hot kernels -------------------------------------------------------- #
    def spgemm(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        out_shape = (a.shape[0], b.shape[1])
        if a.nnz == 0 or b.nnz == 0:
            return CSRMatrix.zeros(out_shape)
        indptr, indices, data = _spgemm_kernel(
            a.indptr, a.indices, a.data, b.indptr, b.indices, b.data,
            out_shape[0], out_shape[1],
        )
        return CSRMatrix(out_shape, indptr, indices, data)

    def spmm(self, a: CSRMatrix, dense: np.ndarray) -> np.ndarray:
        out = np.zeros((a.shape[0], dense.shape[1]), dtype=np.float64)
        if a.nnz:
            _spmm_kernel(
                a.indptr, a.indices, a.data,
                np.ascontiguousarray(dense, dtype=np.float64), out,
            )
        return out

    def spmv(self, a: CSRMatrix, vector: np.ndarray) -> np.ndarray:
        out = np.zeros(a.shape[0], dtype=np.float64)
        if a.nnz:
            _spmv_kernel(
                a.indptr, a.indices, a.data,
                np.ascontiguousarray(vector, dtype=np.float64), out,
            )
        return out

    def sparse_layer_step(
        self, y: CSRMatrix, weight: CSRMatrix, bias: np.ndarray, threshold: float
    ) -> CSRMatrix:
        out_shape = (y.shape[0], weight.shape[1])
        if y.nnz == 0 or weight.nnz == 0:
            return CSRMatrix.zeros(out_shape)
        indptr, indices, data = _fused_layer_step_kernel(
            y.indptr, y.indices, y.data,
            weight.indptr, weight.indices, weight.data,
            np.ascontiguousarray(bias, dtype=np.float64), float(threshold),
            out_shape[0], out_shape[1],
        )
        return CSRMatrix(out_shape, indptr, indices, data)

    def sdmm(self, x: np.ndarray, dy: np.ndarray, pattern: CSRMatrix) -> CSRMatrix:
        if pattern.nnz == 0:
            return pattern
        data = _sdmm_kernel(
            pattern.indptr, pattern.indices,
            np.ascontiguousarray(x, dtype=np.float64),
            np.ascontiguousarray(dy, dtype=np.float64),
            pattern.shape[0],
        )
        return pattern.with_data(data)

    # -- structural kernels ------------------------------------------------- #
    def transpose(self, a: CSRMatrix) -> CSRMatrix:
        out_shape = (a.shape[1], a.shape[0])
        if a.nnz == 0:
            return CSRMatrix.zeros(out_shape)
        indptr, indices, data = _transpose_kernel(
            a.indptr, a.indices, a.data, a.shape[0], a.shape[1]
        )
        return CSRMatrix(out_shape, indptr, indices, data)

    def permute_columns(self, a: CSRMatrix, permutation: np.ndarray) -> CSRMatrix:
        if a.nnz == 0:
            return a
        from repro.core.permutation import invert_permutation

        indices, data = _permute_columns_kernel(
            a.indptr, a.indices, a.data,
            invert_permutation(np.asarray(permutation, dtype=np.int64)),
            a.shape[0],
        )
        return CSRMatrix(a.shape, a.indptr, indices, data)

    def add(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        if a.nnz == 0 and b.nnz == 0:
            return CSRMatrix.zeros(a.shape)
        indptr, indices, data = _add_kernel(
            a.indptr, a.indices, a.data, b.indptr, b.indices, b.data, a.shape[0]
        )
        return CSRMatrix(a.shape, indptr, indices, data)

    def kron(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        # construction-path operation (Kronecker expansion happens once
        # per topology, never in the inference loop): the vectorized
        # NumPy kernel is already allocation-optimal here
        from repro.backends.vectorized import BACKEND as _vectorized

        return _vectorized.kron(a, b)

    # -- warm-up / introspection -------------------------------------------- #
    def warmup(self) -> None:
        """Force JIT compilation of every kernel on tiny inputs.

        With ``cache=True`` the compiled artifacts persist under
        ``NUMBA_CACHE_DIR`` (or next to this file), so warm-up after the
        first process is a cache load, not a compile.  Idempotent.
        """
        if self._warm:
            return
        y = CSRMatrix((2, 3), [0, 2, 3], [0, 2, 1], [1.0, 2.0, 3.0])
        w = CSRMatrix((3, 3), [0, 1, 2, 3], [1, 0, 2], [1.0, 1.0, 1.0])
        self.spgemm(y, w)
        self.sparse_layer_step(y, w, np.zeros(3), 4.0)
        self.spmm(y, np.ones((3, 2)))
        self.spmv(y, np.ones(3))
        self.sdmm(np.ones((2, 2)), np.ones((2, 3)), y)
        self.transpose(y)
        self.add(w, w)
        self.permute_columns(y, np.array([2, 0, 1]))
        self._warm = True

    def is_warm(self) -> bool:
        """True once :meth:`warmup` (or equivalent traffic) has compiled the kernels."""
        if self._warm:
            return True
        signatures = getattr(_fused_layer_step_kernel, "signatures", None)
        return bool(signatures)


BACKEND = NumbaBackend()
if NUMBA_AVAILABLE:
    register(BACKEND)
else:
    register_unavailable("numba", UNAVAILABLE_REASON)
