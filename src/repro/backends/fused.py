"""Shared building blocks for the fused sparse kernels.

The bias/ReLU/clamp postprocessing of ``sparse_layer_step`` is identical
index bookkeeping whichever SpGEMM produced the product, and the
gather-based sampled dense-dense multiply (``sdmm``) is the same single
einsum pass for every pure-NumPy tier; they live here -- neutral ground
between the backends and the dispatch layer -- so the vectorized
backend, the scipy backend, and the generic fallbacks in
:mod:`repro.sparse.ops` all run the same code.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.csr import CSRMatrix


def row_ids(matrix: CSRMatrix) -> np.ndarray:
    """The COO row index of every stored entry of a CSR matrix."""
    return np.repeat(
        np.arange(matrix.shape[0], dtype=np.int64), np.diff(matrix.indptr)
    )


def row_sums(matrix: CSRMatrix) -> np.ndarray:
    """Per-row sum of stored values (a dense length-``rows`` vector)."""
    return np.bincount(
        row_ids(matrix), weights=matrix.data, minlength=matrix.shape[0]
    )


def sdmm_gather(
    x: np.ndarray, dy: np.ndarray, pattern: CSRMatrix, *, row_index: np.ndarray | None = None
) -> CSRMatrix:
    """Sampled dense-dense multiply ``x.T @ dy`` on ``pattern``, scatter-free.

    Gathers the operand columns of every stored ``(i, j)`` pair and
    contracts over the batch axis in one einsum pass, so the work is
    O(batch * nnz) and the dense ``rows x cols`` product never exists.
    ``row_index`` lets callers supply a memoized row-id expansion.
    """
    if pattern.nnz == 0:
        return pattern
    rows = row_ids(pattern) if row_index is None else row_index
    data = np.einsum("bp,bp->p", x[:, rows], dy[:, pattern.indices])
    return pattern.with_data(data)


def clamp_bias_filter(
    z: CSRMatrix,
    active_rows: np.ndarray,
    bias: np.ndarray,
    threshold: float,
) -> CSRMatrix:
    """Fused ``min(max(Z + b, 0), threshold)`` on stored entries, scatter-free.

    ``active_rows`` is a boolean mask over rows of ``z``; the bias is added
    (per column) to stored entries of active rows only.  Entries that end
    up non-positive are dropped, so the result stays sparse.
    """
    if z.nnz == 0:
        return z
    ids = row_ids(z)
    data = z.data + np.where(active_rows[ids], bias[z.indices], 0.0)
    np.minimum(data, threshold, out=data)
    keep = data > 0.0
    indptr = np.zeros(z.shape[0] + 1, dtype=np.int64)
    np.cumsum(np.bincount(ids[keep], minlength=z.shape[0]), out=indptr[1:])
    return CSRMatrix(z.shape, indptr, z.indices[keep], data[keep])
