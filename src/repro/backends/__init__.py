"""Pluggable sparse-kernel backends.

Every sparse operation in the package -- construction (Kronecker
expansion), verification (chain products), and the Graph Challenge
inference recurrence -- dispatches through one *active* backend
implementing the :class:`~repro.backends.base.SparseBackend` protocol.
Four implementations register on import: ``reference`` (pure
NumPy/Python oracle), ``scipy`` (compiled scipy.sparse kernels; the
default when scipy is importable), ``vectorized`` (pure NumPy,
scatter-free), and ``numba`` (JIT-compiled ``prange``-parallel kernels;
present only when numba is installed).

Selecting a backend
-------------------

* **API**: ``repro.backends.use("vectorized")`` switches globally and
  also works as a context manager restoring the previous backend::

      import repro.backends as backends

      backends.use("vectorized")            # global switch
      with backends.use("reference"):       # scoped switch
          ...

* **CLI**: ``python -m repro.cli challenge --backend vectorized ...``
  (and the other kernel-heavy subcommands; see ``--help``).

* **Environment**: ``REPRO_BACKEND=vectorized`` sets the initial default
  before any explicit ``use(...)`` call.

* **Auto**: the name ``auto`` (in any of the above) is not a backend but
  a selection policy -- :func:`repro.backends.selection.auto_backend`
  micro-probes the registered performance tiers once per process and
  picks the fastest (numba when installed, otherwise scipy, otherwise
  vectorized).  ``repro backends`` on the CLI prints the capability
  report behind that decision.

``active_backend()`` returns the backend currently in effect;
``available_backends()`` lists what is registered;
``capabilities()`` additionally reports known-but-missing optional tiers
and their install hints.  Registering a custom backend is a call to
:func:`repro.backends.base.register` with any object implementing the
protocol.
"""

from __future__ import annotations

import os

from repro.backends.base import (
    SparseBackend,
    available_backends,
    get_backend,
    register,
    unavailable_backends,
)
from repro.backends import reference as _reference  # noqa: F401 - registers "reference"
from repro.backends import vectorized as _vectorized  # noqa: F401 - registers "vectorized"
from repro.backends import scipy_backend as _scipy  # noqa: F401 - registers "scipy" if available
from repro.backends import numba_backend as _numba  # noqa: F401 - registers "numba" if available
from repro.backends.selection import (
    auto_backend,
    capabilities,
    format_capability_report,
    probe_backends,
)

DEFAULT_BACKEND_ENV = "REPRO_BACKEND"

#: Pseudo-name accepted wherever a backend name is: pick the fastest tier.
AUTO = "auto"

_active: SparseBackend | None = None


def _initial_backend() -> SparseBackend:
    requested = os.environ.get(DEFAULT_BACKEND_ENV)
    if requested == AUTO:
        return auto_backend()
    if requested:
        return get_backend(requested)
    if "scipy" in available_backends():
        return get_backend("scipy")
    return get_backend("vectorized")


def active_backend() -> SparseBackend:
    """The backend all dispatched kernels currently use."""
    global _active
    if _active is None:
        _active = _initial_backend()
    return _active


class _BackendSelection:
    """Result of :func:`use`: the switch is already done; optionally a context.

    Entering the context keeps the selection and exiting restores whatever
    was active before the ``use(...)`` call.
    """

    def __init__(self, backend: SparseBackend, previous: SparseBackend | None) -> None:
        self.backend = backend
        self._previous = previous

    def __enter__(self) -> SparseBackend:
        return self.backend

    def __exit__(self, *exc_info: object) -> None:
        global _active
        _active = self._previous

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"<active backend {self.backend.name!r}>"


def resolve_backend(backend: str | SparseBackend | None) -> SparseBackend:
    """Map the ubiquitous ``backend=`` keyword to an instance.

    ``None`` means the active backend, a string is a registry lookup, and
    an instance passes through -- the one resolution rule shared by every
    dispatching entry point (``sparse.ops``, ``InferenceEngine``,
    ``CSRSparseLayer``, ...).
    """
    if backend is None:
        return active_backend()
    if backend == AUTO:
        return auto_backend()
    if isinstance(backend, str):
        return get_backend(backend)
    return backend


def use(backend: str | SparseBackend) -> _BackendSelection:
    """Make ``backend`` (a name or an instance) the active backend.

    The switch takes effect immediately and persists; when the returned
    object is used as a context manager, the previous backend is restored
    on exit::

        backends.use("vectorized")          # sticky
        with backends.use("reference"):     # scoped
            ...
    """
    global _active
    previous = _active
    if backend == AUTO:
        chosen = auto_backend()
    elif isinstance(backend, str):
        chosen = get_backend(backend)
    else:
        chosen = backend
    _active = chosen
    return _BackendSelection(chosen, previous)


__all__ = [
    "SparseBackend",
    "register",
    "get_backend",
    "available_backends",
    "unavailable_backends",
    "active_backend",
    "resolve_backend",
    "use",
    "auto_backend",
    "capabilities",
    "format_capability_report",
    "probe_backends",
    "AUTO",
    "DEFAULT_BACKEND_ENV",
]
