"""Backend capability introspection and ``auto`` selection.

This implements the faceswap-style ``get_backend()`` pattern for the
sparse-kernel registry: instead of the user hard-coding a tier, the
package can report what is available (:func:`capabilities`), measure the
tiers against each other on a tiny representative workload
(:func:`probe_backends`), and pick the fastest one exactly once per
process (:func:`auto_backend`, consumed by ``REPRO_BACKEND=auto`` and
``--backend auto``).

The probe is deliberately cheap and deliberately *fused*: it times the
``sparse_layer_step`` recurrence -- the one kernel official-scale Graph
Challenge runs live in -- on a few hundred rows, best-of-``repeat``
wall-clock per backend.  JIT tiers are warmed first so compile time
never pollutes the measurement (with ``cache=True`` the warm-up is a
one-time cost per machine anyway).  The result is cached for the
process; ``repro backends`` prints it via
:func:`format_capability_report`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backends import base
from repro.sparse.csr import CSRMatrix

# tiers auto-selection considers, fastest-expected first; the order only
# breaks exact ties (the probe decides) and `reference` is deliberately
# excluded -- it is an audit oracle, never a performance choice.
AUTO_CANDIDATES: tuple[str, ...] = ("numba", "scipy", "vectorized")

_PROBE_CACHE: dict[str, float] | None = None
_AUTO_CHOICE: str | None = None


def _reset_cache() -> None:
    """Forget the cached probe + choice (test hook; cheap to re-run)."""
    global _PROBE_CACHE, _AUTO_CHOICE
    _PROBE_CACHE = None
    _AUTO_CHOICE = None


def _probe_workload(rows: int = 192, cols: int = 192, density: float = 0.05):
    """A small but kernel-shaped fused-step workload (deterministic)."""
    rng = np.random.default_rng(20190519)  # IPDPS 2019 vintage
    nnz_per_row = max(1, int(cols * density))

    def random_csr(n_rows: int, n_cols: int, positive: bool) -> CSRMatrix:
        indptr = np.arange(n_rows + 1, dtype=np.int64) * nnz_per_row
        indices = np.empty(n_rows * nnz_per_row, dtype=np.int64)
        for i in range(n_rows):
            chosen = rng.choice(n_cols, size=nnz_per_row, replace=False)
            indices[i * nnz_per_row:(i + 1) * nnz_per_row] = np.sort(chosen)
        data = rng.random(indices.size) + 0.5
        if not positive:
            data *= rng.choice([-1.0, 1.0], size=data.size)
        return CSRMatrix((n_rows, n_cols), indptr, indices, data)

    y = random_csr(rows, cols, positive=True)
    w = random_csr(cols, cols, positive=False)
    bias = -rng.random(cols) * 0.1
    return y, w, bias, 2.0


def probe_backends(
    names: tuple[str, ...] | None = None, repeat: int = 3
) -> dict[str, float]:
    """Best-of-``repeat`` fused-step seconds per available backend.

    Results are cached process-wide on the default (``names=None``)
    invocation; explicit ``names`` always measure fresh.
    """
    global _PROBE_CACHE
    default_call = names is None
    if default_call:
        if _PROBE_CACHE is not None:
            return dict(_PROBE_CACHE)
        names = tuple(n for n in AUTO_CANDIDATES if n in base.available_backends())
    y, w, bias, threshold = _probe_workload()
    timings: dict[str, float] = {}
    for name in names:
        backend = base.get_backend(name)
        warmup = getattr(backend, "warmup", None)
        if warmup is not None:
            warmup()
        backend.sparse_layer_step(y, w, bias, threshold)  # page-in / warm caches
        best = float("inf")
        for _ in range(max(1, repeat)):
            start = time.perf_counter()
            backend.sparse_layer_step(y, w, bias, threshold)
            best = min(best, time.perf_counter() - start)
        timings[name] = best
    if default_call:
        _PROBE_CACHE = dict(timings)
    return timings


def auto_backend() -> base.SparseBackend:
    """The fastest available tier, decided once per process.

    Probes :data:`AUTO_CANDIDATES` (restricted to what is registered)
    with :func:`probe_backends` and returns the winner; subsequent calls
    reuse the cached decision.  With a single registered candidate the
    probe is skipped entirely.
    """
    global _AUTO_CHOICE
    if _AUTO_CHOICE is not None and _AUTO_CHOICE in base.available_backends():
        return base.get_backend(_AUTO_CHOICE)
    candidates = tuple(n for n in AUTO_CANDIDATES if n in base.available_backends())
    if not candidates:
        candidates = base.available_backends()  # reference-only environment
    if len(candidates) == 1:
        _AUTO_CHOICE = candidates[0]
        return base.get_backend(_AUTO_CHOICE)
    timings = probe_backends()
    # candidate order breaks ties, so equal timings prefer the higher tier
    _AUTO_CHOICE = min(candidates, key=lambda n: (timings.get(n, float("inf")), candidates.index(n)))
    return base.get_backend(_AUTO_CHOICE)


def capabilities() -> dict[str, dict[str, object]]:
    """Per-backend capability map (registered and known-unavailable tiers).

    Each entry carries ``available`` (registered in this process),
    ``kind`` (a one-line characterization), and for unavailable tiers a
    ``reason``.  The numba tier additionally reports ``compiled``
    (whether JIT artifacts exist yet) and ``threads`` (the parallel
    thread count numba would use).
    """
    report: dict[str, dict[str, object]] = {}
    kinds = {
        "reference": "pure Python/NumPy oracle (audit tier)",
        "vectorized": "scatter-free NumPy (portable fallback)",
        "scipy": "compiled scipy.sparse kernels",
        "numba": "JIT-compiled parallel CSR kernels",
    }
    for name in base.available_backends():
        entry: dict[str, object] = {
            "available": True,
            "kind": kinds.get(name, "custom backend"),
        }
        if name == "numba":
            from repro.backends import numba_backend

            entry["compiled"] = numba_backend.BACKEND.is_warm()
            try:
                import numba as _numba

                entry["threads"] = int(_numba.get_num_threads())
            except Exception:  # pragma: no cover - numba present but degraded
                entry["threads"] = None
        report[name] = entry
    for name, reason in base.unavailable_backends().items():
        report[name] = {
            "available": False,
            "kind": kinds.get(name, "custom backend"),
            "reason": reason,
        }
    return report


def format_capability_report(include_probe: bool = False) -> str:
    """Human-readable capability table for the ``repro backends`` command."""
    from repro.backends import active_backend

    caps = capabilities()
    active = active_backend().name
    timings = probe_backends() if include_probe else {}
    order = [n for n in ("numba", "scipy", "vectorized", "reference") if n in caps]
    order += [n for n in sorted(caps) if n not in order]
    lines = ["backend     status       details"]
    for name in order:
        entry = caps[name]
        if entry["available"]:
            status = "active" if name == active else "available"
            details = str(entry["kind"])
            extras = []
            if "threads" in entry and entry["threads"]:
                extras.append(f"threads={entry['threads']}")
            if "compiled" in entry:
                extras.append("jit=warm" if entry["compiled"] else "jit=cold")
            if name in timings:
                extras.append(f"probe={timings[name] * 1e3:.2f}ms")
            if extras:
                details += f" [{', '.join(extras)}]"
        else:
            status = "missing"
            details = str(entry["reason"])
        lines.append(f"{name:<11} {status:<12} {details}")
    if include_probe and timings:
        winner = min(timings, key=timings.get)
        lines.append(f"auto would select: {winner}")
    return "\n".join(lines)
