"""The sparse-kernel backend protocol and registry.

A *backend* is a bundle of the sparse kernels everything else in the
package bottoms out in: SpGEMM (sparse @ sparse), SpMM (sparse @ dense
batch), SpMV (sparse @ vector), Kronecker product, transpose, entry-wise
add, column permutation, the fused Graph Challenge layer step on
sparse activations, and SDMM (sampled dense-dense multiply, the sparse
training backward primitive).
The RadiX-Net construction (Kronecker expansion, eq. (3)), its
verification (Theorem 1 chain products), and the Graph Challenge
inference recurrence all dispatch through the active backend, so an
implementation can be swapped wholesale -- for cross-checking, for
benchmarking, or to target different hardware.

Backends are *unchecked* kernels: operand shapes are validated once at
the dispatch layer (:mod:`repro.sparse.ops`) or at engine construction
(:class:`repro.challenge.inference.InferenceEngine`), and the backend may
assume conformable inputs.  This keeps hot loops free of repeated
validation.

Three implementations ship with the package:

``reference``
    Pure NumPy/Python (Gustavson row-merge SpGEMM, ``np.add.at``
    scatter).  Slow but dependency-free and easy to audit; the oracle the
    others are cross-checked against.
``scipy``
    Delegates to ``scipy.sparse`` compiled kernels.  The default when
    scipy is importable.
``vectorized``
    Pure NumPy but fully vectorized: segment sums via
    ``np.add.reduceat``/``np.bincount`` instead of ``np.add.at``, and a
    COO-expansion SpGEMM with no per-row Python loop.  The fallback
    default where scipy is unavailable, and a useful middle point when
    benchmarking kernel strategies.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

import numpy as np

from repro.errors import UnknownBackendError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.sparse.csr import CSRMatrix


@runtime_checkable
class SparseBackend(Protocol):
    """The kernel bundle every backend implements.

    All matrix arguments and results are :class:`repro.sparse.csr.CSRMatrix`
    in canonical form (sorted column indices, duplicates summed); dense
    operands are float64 ``ndarray``.

    The cross-backend contract is *numerical* equality (identical
    ``to_dense()``).  Retention of explicitly stored zeros -- e.g. a 0.0
    produced by cancellation in ``add`` -- may differ between backends
    (scipy prunes some that the pure-NumPy backends keep), so code must
    not rely on ``nnz`` of a kernel *result* being backend-independent.
    RadiX-Net topology matrices are strictly nonzero-valued, so this
    never affects edge accounting in practice.
    """

    name: str

    def spgemm(self, a: "CSRMatrix", b: "CSRMatrix") -> "CSRMatrix":
        """Sparse-sparse product ``a @ b`` over the (+, *) semiring."""
        ...

    def spmm(self, a: "CSRMatrix", dense: np.ndarray) -> np.ndarray:
        """Sparse-dense product ``a @ dense`` for a 2-D dense operand."""
        ...

    def spmv(self, a: "CSRMatrix", vector: np.ndarray) -> np.ndarray:
        """Sparse matrix times dense vector."""
        ...

    def kron(self, a: "CSRMatrix", b: "CSRMatrix") -> "CSRMatrix":
        """Kronecker product ``a (x) b`` (paper equation (3))."""
        ...

    def transpose(self, a: "CSRMatrix") -> "CSRMatrix":
        """Canonical CSR of the transpose of ``a``."""
        ...

    def add(self, a: "CSRMatrix", b: "CSRMatrix") -> "CSRMatrix":
        """Entry-wise sum of two same-shape matrices."""
        ...

    def permute_columns(self, a: "CSRMatrix", permutation: np.ndarray) -> "CSRMatrix":
        """Sparse column selection ``a[:, permutation]`` (canonical CSR).

        The result's column ``j`` is the operand's column
        ``permutation[j]``; per-row degrees (and therefore the row
        pointer) are invariant, so this is a pure O(nnz) reordering of
        stored entries -- the primitive the Graph Challenge generator
        uses to decorrelate consecutive layers without ever building an
        ``N x N`` dense buffer.  Like ``transpose``, explicitly stored
        zeros are retained.  ``permutation`` is validated once at the
        dispatch layer (:func:`repro.sparse.ops.permute_columns`);
        backends may assume a valid permutation of ``0..cols-1``.
        """
        ...

    def sparse_layer_step(
        self,
        y: "CSRMatrix",
        weight: "CSRMatrix",
        bias: np.ndarray,
        threshold: float,
    ) -> "CSRMatrix":
        """One inference layer on a *sparse* activation batch, fused.

        Computes ``min(max(Y W + b, 0), threshold)`` where ``Y`` is a CSR
        ``(batch, neurons)`` activation matrix, adding the bias only to
        stored entries of rows whose input row-sum is positive (the
        GraphBLAS stored-entry convention).  The result is again
        canonical CSR with all non-positive entries dropped, so the
        activation matrix stays sparse end-to-end.

        Correctness relative to the dense recurrence requires
        ``bias <= 0`` element-wise: a positive bias would resurrect
        entries the sparse result never stores.  The dispatch layer
        (:func:`repro.sparse.ops.sparse_layer_step`) enforces this;
        backends may assume it.
        """
        ...

    def sdmm(
        self, x: np.ndarray, dy: np.ndarray, pattern: "CSRMatrix"
    ) -> "CSRMatrix":
        """Sampled dense-dense multiply: ``x.T @ dy`` restricted to ``pattern``.

        ``x`` is a dense ``(batch, rows)`` operand and ``dy`` a dense
        ``(batch, cols)`` operand; the result has exactly ``pattern``'s
        sparsity structure (same ``indptr``/``indices``, new data), with
        stored entry ``(i, j)`` equal to ``sum_b x[b, i] * dy[b, j]``.
        This is the backward primitive of sparse training: the weight
        gradient ``X^T @ dY`` of a CSR-weighted affine layer only ever
        needs the entries on the layer's fixed connectivity pattern, so
        the gradient stays O(nnz) and the dense ``rows x cols`` product
        is never formed.  Stored values of ``pattern`` are ignored (only
        its structure matters).  Shapes are validated once at the
        dispatch layer (:func:`repro.sparse.ops.sdmm`).
        """
        ...


_REGISTRY: dict[str, SparseBackend] = {}
# name -> human-readable reason a *known* optional tier is not registered
# in this environment (scipy/numba not installed, ...).  Keeps error
# messages and the capability report truthful without registering
# non-functional backends.
_UNAVAILABLE: dict[str, str] = {}


def register(backend: SparseBackend) -> SparseBackend:
    """Register a backend under its ``name`` (later registrations replace earlier).

    Returns the backend so it can be used as a decorator on instances or
    called inline at module import time.
    """
    name = getattr(backend, "name", None)
    if not name or not isinstance(name, str):
        raise ValidationError("backend must expose a non-empty string `name`")
    _REGISTRY[name] = backend
    _UNAVAILABLE.pop(name, None)
    return backend


def register_unavailable(name: str, reason: str) -> None:
    """Record why a known optional backend tier is absent from the registry.

    Import-gated backend modules (scipy, numba) call this when their
    dependency is missing, so ``get_backend`` can explain the absence
    instead of reporting the name as simply unknown, and
    :func:`repro.backends.selection.capabilities` can report the tier.
    """
    if name not in _REGISTRY:
        _UNAVAILABLE[name] = reason


def unavailable_backends() -> dict[str, str]:
    """Known-but-unavailable backend tiers and why (name -> reason)."""
    return dict(_UNAVAILABLE)


def get_backend(name: str) -> SparseBackend:
    """Look up a registered backend by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        if name in _UNAVAILABLE:
            raise UnknownBackendError(
                f"sparse backend {name!r} is not available: {_UNAVAILABLE[name]}; "
                f"available backends: {known}"
            ) from None
        raise UnknownBackendError(
            f"unknown sparse backend {name!r}; available backends: {known}"
        ) from None


def available_backends() -> tuple[str, ...]:
    """Names of all registered backends, sorted."""
    return tuple(sorted(_REGISTRY))
