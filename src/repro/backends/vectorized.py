"""The vectorized pure-NumPy backend.

Same dependency footprint as the ``reference`` backend but with every
per-row Python loop and every ``np.add.at`` scatter (notoriously slow:
it is an unbuffered ufunc loop) replaced by vectorized equivalents:

* SpMV uses ``np.bincount`` with weights -- a single C pass.
* SpMM uses ``np.add.reduceat`` segment sums over the CSR row pointer,
  exploiting that entries are already grouped by row.
* SpGEMM expands all scalar products ``A[i,k] * B[k,j]`` in one shot
  (the COO outer-expansion formulation of Gustavson's algorithm) and
  coalesces with a lexsort + ``reduceat``.
* transpose/add/kron build their COO triples and coalesce the same way,
  never touching ``np.add.at``.

Row-id arrays (``np.repeat(arange(rows), row_degrees)``) are memoized
per matrix in a weakly-referenced cache, so the hot inference loop --
which applies the same weight matrices over and over -- pays the
expansion once per matrix rather than once per call.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.backends.base import register
from repro.backends.fused import clamp_bias_filter, sdmm_gather
from repro.sparse.csr import CSRMatrix

# id(matrix) -> (weakref to the matrix, its row-id expansion).  The weakref
# both guards against id reuse after garbage collection and lets the
# finalizer evict the entry so the cache cannot grow without bound.
_ROW_ID_CACHE: dict[int, tuple[weakref.ref, np.ndarray]] = {}


def cached_row_ids(a: CSRMatrix) -> np.ndarray:
    """The COO row index of every stored entry of ``a``, memoized per matrix."""
    key = id(a)
    hit = _ROW_ID_CACHE.get(key)
    if hit is not None and hit[0]() is a:
        return hit[1]
    row_ids = np.repeat(np.arange(a.shape[0], dtype=np.int64), np.diff(a.indptr))
    _ROW_ID_CACHE[key] = (weakref.ref(a), row_ids)
    weakref.finalize(a, _ROW_ID_CACHE.pop, key, None)
    return row_ids


def _coalesce_to_csr(
    shape: tuple[int, int],
    rows: np.ndarray,
    cols: np.ndarray,
    vals: np.ndarray,
    *,
    drop_zeros: bool = False,
) -> CSRMatrix:
    """COO triples -> canonical CSR via lexsort + segment sum (no scatter).

    ``drop_zeros`` mirrors the reference backend's per-op convention:
    its row-merge SpGEMM prunes entries whose sum is exactly 0.0, while
    its COO-based transpose/add/kron retain explicitly stored zeros --
    so structural results (nnz) agree between the two backends.
    """
    if rows.size == 0:
        return CSRMatrix.zeros(shape)
    order = np.lexsort((cols, rows))
    rows, cols, vals = rows[order], cols[order], vals[order]
    keys = rows * shape[1] + cols
    boundaries = np.flatnonzero(np.concatenate(([True], keys[1:] != keys[:-1])))
    summed = np.add.reduceat(vals, boundaries)
    rows, cols = rows[boundaries], cols[boundaries]
    if drop_zeros:
        keep = summed != 0.0
        rows, cols, summed = rows[keep], cols[keep], summed[keep]
    indptr = np.zeros(shape[0] + 1, dtype=np.int64)
    counts = np.bincount(rows, minlength=shape[0])
    np.cumsum(counts, out=indptr[1:])
    return CSRMatrix(shape, indptr, cols, summed)


class VectorizedBackend:
    """Fully vectorized NumPy kernels (bincount / reduceat segment sums)."""

    name = "vectorized"

    def spgemm(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        out_shape = (a.shape[0], b.shape[1])
        if a.nnz == 0 or b.nnz == 0:
            return CSRMatrix.zeros(out_shape)
        # For each stored A entry p (column k), pair it with every stored
        # entry of row k of B.  counts[p] is that row's length.
        b_degrees = np.diff(b.indptr)
        counts = b_degrees[a.indices]
        total = int(counts.sum())
        if total == 0:
            return CSRMatrix.zeros(out_shape)
        p_ids = np.repeat(np.arange(a.nnz, dtype=np.int64), counts)
        group_starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        within = np.arange(total, dtype=np.int64) - group_starts[p_ids]
        b_pos = b.indptr[a.indices][p_ids] + within
        rows = cached_row_ids(a)[p_ids]
        cols = b.indices[b_pos]
        vals = a.data[p_ids] * b.data[b_pos]
        return _coalesce_to_csr(out_shape, rows, cols, vals, drop_zeros=True)

    def spmm(self, a: CSRMatrix, dense: np.ndarray) -> np.ndarray:
        out = np.zeros((a.shape[0], dense.shape[1]), dtype=np.float64)
        if a.nnz == 0:
            return out
        contrib = a.data[:, None] * dense[a.indices]
        # Entries are grouped by row already; reduceat at the start offset
        # of every non-empty row yields exactly that row's segment sum
        # (empty rows in between contribute no entries).
        nonempty = np.flatnonzero(np.diff(a.indptr) > 0)
        out[nonempty] = np.add.reduceat(contrib, a.indptr[nonempty], axis=0)
        return out

    def spmv(self, a: CSRMatrix, vector: np.ndarray) -> np.ndarray:
        if a.nnz == 0:
            return np.zeros(a.shape[0], dtype=np.float64)
        products = a.data * vector[a.indices]
        return np.bincount(
            cached_row_ids(a), weights=products, minlength=a.shape[0]
        ).astype(np.float64)

    def kron(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        out_shape = (a.shape[0] * b.shape[0], a.shape[1] * b.shape[1])
        if a.nnz == 0 or b.nnz == 0:
            return CSRMatrix.zeros(out_shape)
        a_rows, b_rows = cached_row_ids(a), cached_row_ids(b)
        rows = (a_rows[:, None] * b.shape[0] + b_rows[None, :]).ravel()
        cols = (a.indices[:, None] * b.shape[1] + b.indices[None, :]).ravel()
        vals = (a.data[:, None] * b.data[None, :]).ravel()
        return _coalesce_to_csr(out_shape, rows, cols, vals)

    def transpose(self, a: CSRMatrix) -> CSRMatrix:
        out_shape = (a.shape[1], a.shape[0])
        if a.nnz == 0:
            return CSRMatrix.zeros(out_shape)
        return _coalesce_to_csr(out_shape, a.indices, cached_row_ids(a), a.data)

    def add(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        rows = np.concatenate([cached_row_ids(a), cached_row_ids(b)])
        cols = np.concatenate([a.indices, b.indices])
        vals = np.concatenate([a.data, b.data])
        return _coalesce_to_csr(a.shape, rows, cols, vals)

    def permute_columns(self, a: CSRMatrix, permutation: np.ndarray) -> CSRMatrix:
        if a.nnz == 0:
            return a
        from repro.core.permutation import invert_permutation

        cols = invert_permutation(permutation)[a.indices]
        order = np.lexsort((cols, cached_row_ids(a)))
        return CSRMatrix(a.shape, a.indptr, cols[order], a.data[order])

    def sdmm(self, x: np.ndarray, dy: np.ndarray, pattern: CSRMatrix) -> CSRMatrix:
        if pattern.nnz == 0:
            return pattern
        # the fixed pattern is the layer's connectivity, applied every
        # training step -- the memoized row-id expansion pays off here
        # exactly as it does in the inference loop
        return sdmm_gather(x, dy, pattern, row_index=cached_row_ids(pattern))

    def sparse_layer_step(
        self, y: CSRMatrix, weight: CSRMatrix, bias: np.ndarray, threshold: float
    ) -> CSRMatrix:
        if y.nnz == 0:
            return CSRMatrix.zeros((y.shape[0], weight.shape[1]))
        active_rows = (
            np.bincount(cached_row_ids(y), weights=y.data, minlength=y.shape[0]) > 0.0
        )
        return clamp_bias_filter(self.spgemm(y, weight), active_rows, bias, threshold)


BACKEND = register(VectorizedBackend())
