"""The scipy.sparse backend: compiled kernels behind the package's CSR type.

This lifts the ``use_scipy`` fast path that used to live inline in
``repro.sparse.ops.spgemm`` into a full backend.  All six kernels
round-trip through ``scipy.sparse.csr_matrix`` views of the package's
:class:`~repro.sparse.csr.CSRMatrix` buffers (no data copy on the way
in), run the compiled scipy kernel, and re-canonicalize the result.

The module imports lazily: constructing the backend does not require
scipy, only calling a kernel does, and registration is skipped entirely
when scipy is missing so ``available_backends()`` stays truthful.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import register, register_unavailable
from repro.backends.fused import clamp_bias_filter, sdmm_gather
from repro.sparse.csr import CSRMatrix


def _to_scipy(a: CSRMatrix):
    import scipy.sparse as sp

    return sp.csr_matrix((a.data, a.indices, a.indptr), shape=a.shape)


def _from_scipy(matrix) -> CSRMatrix:
    csr = matrix.tocsr()
    csr.sort_indices()
    csr.sum_duplicates()
    return CSRMatrix(
        csr.shape,
        csr.indptr.astype(np.int64),
        csr.indices.astype(np.int64),
        csr.data.astype(np.float64),
    )


class ScipyBackend:
    """Kernels delegated to scipy.sparse (the default backend)."""

    name = "scipy"

    def spgemm(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        return _from_scipy(_to_scipy(a) @ _to_scipy(b))

    def spmm(self, a: CSRMatrix, dense: np.ndarray) -> np.ndarray:
        return np.asarray(_to_scipy(a) @ dense, dtype=np.float64)

    def spmv(self, a: CSRMatrix, vector: np.ndarray) -> np.ndarray:
        return np.asarray(_to_scipy(a) @ vector, dtype=np.float64).ravel()

    def kron(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        import scipy.sparse as sp

        out_shape = (a.shape[0] * b.shape[0], a.shape[1] * b.shape[1])
        if a.nnz == 0 or b.nnz == 0:
            return CSRMatrix.zeros(out_shape)
        return _from_scipy(sp.kron(_to_scipy(a), _to_scipy(b), format="csr"))

    def transpose(self, a: CSRMatrix) -> CSRMatrix:
        return _from_scipy(_to_scipy(a).transpose())

    def add(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        return _from_scipy(_to_scipy(a) + _to_scipy(b))

    def permute_columns(self, a: CSRMatrix, permutation: np.ndarray) -> CSRMatrix:
        # scipy's fancy column indexing on CSR is a compiled column remap
        permutation = np.asarray(permutation, dtype=np.int64)
        return _from_scipy(_to_scipy(a)[:, permutation])

    def sdmm(self, x: np.ndarray, dy: np.ndarray, pattern: CSRMatrix) -> CSRMatrix:
        # scipy.sparse has no sampled-dense-dense primitive; the shared
        # gather is already a single compiled einsum pass over the batch
        return sdmm_gather(x, dy, pattern)

    def sparse_layer_step(
        self, y: CSRMatrix, weight: CSRMatrix, bias: np.ndarray, threshold: float
    ) -> CSRMatrix:
        sp_y = _to_scipy(y)
        z = sp_y @ _to_scipy(weight)
        # sort only (scipy's product has no duplicates to sum); the shared
        # clamp/filter pass then rebuilds the CSR once, skipping the
        # canonicalizing _from_scipy round-trip
        z.sort_indices()
        active_rows = np.asarray(sp_y.sum(axis=1)).ravel() > 0.0
        z_csr = CSRMatrix(z.shape, z.indptr, z.indices, z.data)
        return clamp_bias_filter(z_csr, active_rows, bias, threshold)


def scipy_available() -> bool:
    """True when scipy.sparse can be imported in this environment."""
    try:
        import scipy.sparse  # noqa: F401
    except ImportError:  # pragma: no cover - scipy ships in the toolchain
        return False
    return True


BACKEND = ScipyBackend()
if scipy_available():
    register(BACKEND)
else:  # pragma: no cover - scipy ships in the toolchain
    register_unavailable(
        "scipy", "scipy is not installed (pip install 'radixnet-repro[scipy]')"
    )
