"""The pure NumPy/Python reference backend.

These are the original kernels of the package, kept verbatim as the
cross-check oracle for the faster backends: a Gustavson row-merge SpGEMM
with an explicit per-row Python loop, ``np.add.at`` scatter for
SpMM/SpMV, and COO round-trips for transpose/add/kron.  Every other
backend's parity suite (``tests/test_backends.py``) compares against
these implementations.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import register
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix


def spgemm_rowmerge(a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
    """Reference Gustavson row-merge SpGEMM (pure NumPy/Python)."""
    nrows, ncols = a.shape[0], b.shape[1]
    out_indptr = np.zeros(nrows + 1, dtype=np.int64)
    out_indices: list[np.ndarray] = []
    out_data: list[np.ndarray] = []
    accumulator = np.zeros(ncols, dtype=np.float64)
    for i in range(nrows):
        a_cols, a_vals = a.row(i)
        touched: list[np.ndarray] = []
        for k, av in zip(a_cols, a_vals):
            b_cols, b_vals = b.row(int(k))
            accumulator[b_cols] += av * b_vals
            touched.append(b_cols)
        if touched:
            cols = np.unique(np.concatenate(touched))
            vals = accumulator[cols]
            keep = vals != 0.0
            cols, vals = cols[keep], vals[keep]
            accumulator[cols] = 0.0
            accumulator[np.concatenate(touched)] = 0.0
        else:
            cols = np.empty(0, dtype=np.int64)
            vals = np.empty(0, dtype=np.float64)
        out_indices.append(cols)
        out_data.append(vals)
        out_indptr[i + 1] = out_indptr[i] + cols.size
    indices = np.concatenate(out_indices) if out_indices else np.empty(0, dtype=np.int64)
    data = np.concatenate(out_data) if out_data else np.empty(0, dtype=np.float64)
    return CSRMatrix((nrows, ncols), out_indptr, indices, data)


class ReferenceBackend:
    """Pure NumPy kernels with scatter-add; the oracle implementation."""

    name = "reference"

    def spgemm(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        return spgemm_rowmerge(a, b)

    def spmm(self, a: CSRMatrix, dense: np.ndarray) -> np.ndarray:
        out = np.zeros((a.shape[0], dense.shape[1]), dtype=np.float64)
        row_ids = np.repeat(np.arange(a.shape[0]), np.diff(a.indptr))
        # scatter-add of value-scaled rows of the dense operand
        np.add.at(out, row_ids, a.data[:, None] * dense[a.indices])
        return out

    def spmv(self, a: CSRMatrix, vector: np.ndarray) -> np.ndarray:
        products = a.data * vector[a.indices]
        out = np.zeros(a.shape[0], dtype=np.float64)
        row_ids = np.repeat(np.arange(a.shape[0]), np.diff(a.indptr))
        np.add.at(out, row_ids, products)
        return out

    def kron(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        a_coo, b_coo = a.to_coo().coalesce(), b.to_coo().coalesce()
        out_shape = (a.shape[0] * b.shape[0], a.shape[1] * b.shape[1])
        if a_coo.nnz == 0 or b_coo.nnz == 0:
            return CSRMatrix.zeros(out_shape)
        rows = (a_coo.rows[:, None] * b.shape[0] + b_coo.rows[None, :]).ravel()
        cols = (a_coo.cols[:, None] * b.shape[1] + b_coo.cols[None, :]).ravel()
        vals = (a_coo.values[:, None] * b_coo.values[None, :]).ravel()
        return COOMatrix(out_shape, rows, cols, vals).to_csr()

    def transpose(self, a: CSRMatrix) -> CSRMatrix:
        return a.to_coo().transpose().to_csr()

    def add(self, a: CSRMatrix, b: CSRMatrix) -> CSRMatrix:
        a_coo, b_coo = a.to_coo(), b.to_coo()
        rows = np.concatenate([a_coo.rows, b_coo.rows])
        cols = np.concatenate([a_coo.cols, b_coo.cols])
        vals = np.concatenate([a_coo.values, b_coo.values])
        return COOMatrix(a.shape, rows, cols, vals).to_csr()

    def permute_columns(self, a: CSRMatrix, permutation: np.ndarray) -> CSRMatrix:
        # Deliberately naive row-by-row oracle: remap each row's columns
        # through the inverse permutation and re-sort with an explicit
        # per-row argsort (independent of the vectorized lexsort path).
        inverse = np.empty(a.shape[1], dtype=np.int64)
        inverse[np.asarray(permutation, dtype=np.int64)] = np.arange(
            a.shape[1], dtype=np.int64
        )
        out_indices: list[np.ndarray] = []
        out_data: list[np.ndarray] = []
        for i in range(a.shape[0]):
            cols, vals = a.row(i)
            mapped = inverse[cols]
            order = np.argsort(mapped, kind="stable")
            out_indices.append(mapped[order])
            out_data.append(vals[order])
        indices = np.concatenate(out_indices) if out_indices else np.empty(0, dtype=np.int64)
        data = np.concatenate(out_data) if out_data else np.empty(0, dtype=np.float64)
        return CSRMatrix(a.shape, a.indptr, indices, data)

    def sdmm(self, x: np.ndarray, dy: np.ndarray, pattern: CSRMatrix) -> CSRMatrix:
        # Deliberately naive per-entry oracle: one dot product over the
        # batch axis for every stored (i, j) of the pattern.
        data = np.empty(pattern.nnz, dtype=np.float64)
        for i in range(pattern.shape[0]):
            for p in range(pattern.indptr[i], pattern.indptr[i + 1]):
                data[p] = float(np.dot(x[:, i], dy[:, pattern.indices[p]]))
        return pattern.with_data(data)

    def sparse_layer_step(
        self, y: CSRMatrix, weight: CSRMatrix, bias: np.ndarray, threshold: float
    ) -> CSRMatrix:
        # Deliberately naive row-by-row oracle: SpGEMM via the row-merge
        # kernel, then per-row bias/ReLU/clamp with explicit Python loops.
        z = spgemm_rowmerge(y, weight)
        nrows, ncols = z.shape
        indptr = np.zeros(nrows + 1, dtype=np.int64)
        out_indices: list[np.ndarray] = []
        out_data: list[np.ndarray] = []
        for i in range(nrows):
            cols, vals = z.row(i)
            vals = vals.copy()
            _, y_vals = y.row(i)
            if float(y_vals.sum()) > 0.0:
                vals += bias[cols]
            np.minimum(vals, threshold, out=vals)
            keep = vals > 0.0
            cols, vals = cols[keep], vals[keep]
            out_indices.append(cols)
            out_data.append(vals)
            indptr[i + 1] = indptr[i] + cols.size
        indices = np.concatenate(out_indices) if out_indices else np.empty(0, dtype=np.int64)
        data = np.concatenate(out_data) if out_data else np.empty(0, dtype=np.float64)
        return CSRMatrix((nrows, ncols), indptr, indices, data)


BACKEND = register(ReferenceBackend())
