"""Replica health state and retry/backoff policy for the fleet balancer.

The resilience machinery of :mod:`repro.serve.balancer` splits into two
halves so each is testable on its own terms:

* the *decisions* live here, in plain synchronous objects driven by the
  injectable :class:`repro.utils.clock.Clock` -- when a replica is due
  for a ping, when consecutive failures cross the ejection threshold,
  when an ejected replica has answered enough to re-enter rotation, and
  what the capped exponential backoff schedule for a retried request
  looks like.  Unit tests drive these with a
  :class:`~repro.utils.clock.FakeClock` and zero sleeps;
* the *I/O* (actually opening connections and sending ``ping`` lines)
  stays in the balancer's asyncio world, which the chaos suite
  (``tests/test_serve_chaos.py``) exercises against real sockets through
  a fault-injecting proxy.

State machine per replica (:class:`ReplicaHealth`):

``healthy``
    In rotation.  ``fail_threshold`` *consecutive* failures (pings or
    in-flight request errors -- both are evidence) eject it.
``ejected``
    Out of rotation.  Health pings keep probing it; one successful ping
    (the *readiness ping*) re-admits it.  The fleet supervisor also
    lands here while a crashed replica is being restarted, and calls
    :meth:`HealthMonitor.admit` once the replacement answered its
    readiness ping.
``draining``
    Out of rotation for *new* requests, but deliberately so: outstanding
    work is finishing ahead of a warm restart.  Failures do not
    accumulate against a draining replica.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.utils.clock import Clock, SystemClock

STATE_HEALTHY = "healthy"
STATE_EJECTED = "ejected"
STATE_DRAINING = "draining"
STATES = (STATE_HEALTHY, STATE_EJECTED, STATE_DRAINING)


def backoff_delays(attempts: int, base_s: float, cap_s: float) -> list[float]:
    """The capped exponential backoff schedule for ``attempts`` retries.

    Delay ``k`` is ``base_s * 2**k``, clamped to ``cap_s`` -- the
    standard shape: immediate-ish first retry, quickly spreading out,
    never waiting longer than the cap.  Safe to apply to inference
    requests because the recurrence is stateless per request: re-running
    a lost request on another replica produces bit-identical rows.
    """
    if attempts < 0:
        raise ValidationError(f"attempts must be >= 0, got {attempts}")
    if base_s < 0 or cap_s < 0:
        raise ValidationError(
            f"backoff base/cap must be >= 0, got base={base_s}, cap={cap_s}"
        )
    return [min(base_s * (2.0 ** k), cap_s) for k in range(attempts)]


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs for active health checking and in-flight request recovery."""

    interval_s: float = 0.5        # gap between pings of one replica
    fail_threshold: int = 3        # consecutive failures that eject
    retry_limit: int = 3           # retries per lost in-flight request
    retry_base_s: float = 0.05     # first retry backoff
    retry_cap_s: float = 1.0       # backoff ceiling
    ping_timeout_s: float = 5.0    # how long one health ping may take

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ValidationError(
                f"health interval must be > 0, got {self.interval_s}"
            )
        if self.fail_threshold < 1:
            raise ValidationError(
                f"fail_threshold must be >= 1, got {self.fail_threshold}"
            )
        if self.retry_limit < 0:
            raise ValidationError(
                f"retry_limit must be >= 0, got {self.retry_limit}"
            )
        if self.retry_base_s < 0 or self.retry_cap_s < 0:
            raise ValidationError(
                "retry backoff base/cap must be >= 0, got "
                f"base={self.retry_base_s}, cap={self.retry_cap_s}"
            )
        if self.ping_timeout_s <= 0:
            raise ValidationError(
                f"ping_timeout_s must be > 0, got {self.ping_timeout_s}"
            )

    def retry_delays(self) -> list[float]:
        """The backoff schedule this policy applies to a retried request."""
        return backoff_delays(self.retry_limit, self.retry_base_s, self.retry_cap_s)


@dataclass
class ReplicaHealth:
    """One replica's health record (mutated only via :class:`HealthMonitor`)."""

    state: str = STATE_HEALTHY
    consecutive_failures: int = 0
    pings_ok: int = 0
    pings_failed: int = 0
    ejections: int = 0
    admissions: int = 0
    last_ping_s: float | None = None
    last_error: str | None = None

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "pings_ok": self.pings_ok,
            "pings_failed": self.pings_failed,
            "ejections": self.ejections,
            "admissions": self.admissions,
            "last_error": self.last_error,
        }


@dataclass
class HealthMonitor:
    """Health bookkeeping for a fixed-size fleet of replicas.

    Thread-safe: the balancer's event loop records in-flight failures,
    the health-check task records ping outcomes, and the fleet
    supervisor thread ejects/admits around restarts -- all through this
    one object.  Time comes from the injectable clock, so every
    transition is unit-testable with a
    :class:`~repro.utils.clock.FakeClock` and no sleeps.
    """

    count: int
    policy: HealthPolicy = field(default_factory=HealthPolicy)
    clock: Clock = field(default_factory=SystemClock)

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValidationError(f"a health monitor needs >= 1 replica, got {self.count}")
        self._lock = threading.Lock()
        self._replicas = [ReplicaHealth() for _ in range(self.count)]

    # ------------------------------------------------------------------ #
    # rotation queries
    # ------------------------------------------------------------------ #
    def state(self, index: int) -> str:
        with self._lock:
            return self._replicas[index].state

    def in_rotation(self) -> list[int]:
        """Indices a new request may be routed to (healthy only)."""
        with self._lock:
            return [
                i for i, r in enumerate(self._replicas) if r.state == STATE_HEALTHY
            ]

    def due_for_ping(self) -> list[int]:
        """Replicas whose last ping is older than the check interval.

        Ejected replicas stay on the probe schedule -- a successful ping
        is exactly how they earn their way back into rotation.  Draining
        replicas are skipped: they are out of rotation on purpose and
        about to be restarted.
        """
        now = self.clock.monotonic()
        with self._lock:
            return [
                i
                for i, r in enumerate(self._replicas)
                if r.state != STATE_DRAINING
                and (
                    r.last_ping_s is None
                    or now - r.last_ping_s >= self.policy.interval_s
                )
            ]

    # ------------------------------------------------------------------ #
    # evidence
    # ------------------------------------------------------------------ #
    def record_success(self, index: int, *, ping: bool = False) -> bool:
        """A replica answered.  Returns True if this re-admitted it."""
        with self._lock:
            replica = self._replicas[index]
            replica.consecutive_failures = 0
            replica.last_error = None
            if ping:
                replica.pings_ok += 1
                replica.last_ping_s = self.clock.monotonic()
            if replica.state == STATE_EJECTED:
                # the readiness ping: back into rotation
                replica.state = STATE_HEALTHY
                replica.admissions += 1
                return True
            return False

    def record_failure(
        self, index: int, *, ping: bool = False, error: str | None = None
    ) -> bool:
        """A replica failed to answer.  Returns True if this ejected it."""
        with self._lock:
            replica = self._replicas[index]
            if ping:
                replica.pings_failed += 1
                replica.last_ping_s = self.clock.monotonic()
            replica.last_error = error
            if replica.state != STATE_HEALTHY:
                return False  # already out of rotation
            replica.consecutive_failures += 1
            if replica.consecutive_failures >= self.policy.fail_threshold:
                replica.state = STATE_EJECTED
                replica.ejections += 1
                return True
            return False

    # ------------------------------------------------------------------ #
    # supervisor transitions
    # ------------------------------------------------------------------ #
    def eject(self, index: int, *, error: str | None = None) -> None:
        """Force a replica out of rotation (crash observed by the watcher)."""
        with self._lock:
            replica = self._replicas[index]
            if error is not None:
                replica.last_error = error
            if replica.state != STATE_EJECTED:
                replica.state = STATE_EJECTED
                replica.ejections += 1

    def drain(self, index: int) -> None:
        """Take a replica out of rotation deliberately (warm restart ahead)."""
        with self._lock:
            self._replicas[index].state = STATE_DRAINING

    def admit(self, index: int) -> None:
        """Put a replica (back) into rotation with a clean slate."""
        with self._lock:
            replica = self._replicas[index]
            if replica.state != STATE_HEALTHY:
                replica.admissions += 1
            replica.state = STATE_HEALTHY
            replica.consecutive_failures = 0
            replica.last_error = None
            replica.last_ping_s = self.clock.monotonic()

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def states(self) -> list[str]:
        with self._lock:
            return [r.state for r in self._replicas]

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "pings_ok": sum(r.pings_ok for r in self._replicas),
                "pings_failed": sum(r.pings_failed for r in self._replicas),
                "ejections": sum(r.ejections for r in self._replicas),
                "admissions": sum(r.admissions for r in self._replicas),
                "replicas": [r.snapshot() for r in self._replicas],
            }
