"""Client side: a blocking protocol client and the bundled load generator.

:class:`ServeClient` is a deliberately boring synchronous socket client
-- one JSON line out, one JSON line back -- so stress tests can run one
per thread and the CLI can script it.  :func:`bench_serve` is the load
generator behind ``repro challenge bench-serve``: ``clients`` threads
fire ``requests`` total inference requests (challenge-style input rows)
at a live server and the aggregate reports the serving figures of merit
-- requests/second, rows/second, and latency percentiles (p50/p95/p99)
-- plus the server's own batching counters.  :func:`saturation_sweep`
(``bench-serve --sweep``) runs a clients x rows grid of those
measurements and locates the *knee* of the throughput/latency curve --
the offered concurrency beyond which added clients stop buying
throughput and only buy latency -- the serve-path regression signal the
perf ledger records PR-to-PR.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import ServeError, ValidationError
from repro.serve import protocol


class ServeClient:
    """A blocking newline-JSON client for one server connection."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float = 60.0,
        connect_timeout_s: float = 10.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        try:
            self._sock = socket.create_connection(
                (host, self.port), timeout=connect_timeout_s
            )
        except OSError as exc:
            raise ServeError(
                f"cannot connect to serve instance at {host}:{port}: {exc}"
            ) from None
        self.timeout_s = float(timeout_s)
        self._sock.settimeout(timeout_s)
        self._file = self._sock.makefile("rwb")
        self._lock = threading.Lock()
        self._broken = False

    # ------------------------------------------------------------------ #
    def request(self, message: dict) -> dict:
        """Send one request line; block for (and return) its response.

        A request that times out (``timeout_s``) or hits a connection
        error raises a clean :class:`ServeError` *and* poisons this
        client: the protocol pairs responses to requests by stream
        order, so after a timeout a late response could be mistaken for
        the answer to the *next* request.  Open a fresh client instead.
        """
        payload = protocol.encode(message)
        with self._lock:
            if self._broken:
                raise ServeError(
                    "serve connection is broken (a previous request timed out "
                    "or failed); open a new client"
                )
            try:
                self._file.write(payload)
                self._file.flush()
                line = self._file.readline(protocol.MAX_LINE_BYTES + 2)
            except socket.timeout:
                self._broken = True
                raise ServeError(
                    f"request {message.get('op')!r} timed out after "
                    f"{self.timeout_s}s waiting for {self.host}:{self.port}"
                ) from None
            except OSError as exc:
                self._broken = True
                raise ServeError(f"serve connection failed: {exc}") from None
            if not line:
                self._broken = True
                raise ServeError("server closed the connection")
        return protocol.decode(line)

    def checked(self, message: dict) -> dict:
        """Like :meth:`request`, raising :class:`ServeError` on ``ok: false``."""
        response = self.request(message)
        if not response.get("ok"):
            raise ServeError(
                f"server rejected {message.get('op')!r}: {response.get('error')}"
            )
        return response

    def infer(
        self,
        rows: np.ndarray,
        *,
        request_id: str | None = None,
        want_activations: bool = False,
        encoding: str = "dense",
    ) -> dict:
        """Run the recurrence over ``(k, neurons)`` rows; checked response."""
        rows = np.asarray(rows, dtype=np.float64)
        message: dict[str, Any] = {
            "op": protocol.OP_INFER,
            "rows": protocol.rows_to_wire(rows, encoding=encoding),
        }
        if request_id is not None:
            message["id"] = request_id
        if want_activations:
            message["want"] = "activations"
        return self.checked(message)

    def ping(self) -> dict:
        return self.checked({"op": protocol.OP_PING})

    def meta(self) -> dict:
        return self.checked({"op": protocol.OP_META})

    def stats(self) -> dict:
        return self.checked({"op": protocol.OP_STATS})

    def shutdown(self) -> dict:
        return self.checked({"op": protocol.OP_SHUTDOWN})

    def drain(self, replica: int) -> dict:
        """Balancer-only: warm-restart one replica (zero dropped requests)."""
        return self.checked({"op": protocol.OP_DRAIN, "replica": int(replica)})

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# --------------------------------------------------------------------------- #
# the load generator (`repro challenge bench-serve`)
# --------------------------------------------------------------------------- #
@dataclass
class _ClientOutcome:
    latencies: list[float]
    errors: list[str]


def _percentile(latencies: np.ndarray, q: float) -> float:
    return float(np.percentile(latencies, q)) if latencies.size else 0.0


def bench_serve(
    host: str,
    port: int,
    *,
    requests: int = 100,
    clients: int = 4,
    rows_per_request: int = 1,
    seed: int = 0,
    encoding: str = "dense",
    shutdown: bool = False,
    timeout_s: float = 120.0,
) -> dict:
    """Fire ``requests`` inference requests from ``clients`` threads.

    Input rows are challenge-style batches
    (:func:`repro.challenge.generator.challenge_input_batch`, one
    distinct seed per request) against whatever network the server
    reports in its ``meta``.  Returns a JSON-serializable report:
    request/row throughput, latency percentiles, error count, and the
    server-side ``stats`` snapshot (batch shapes, queue waits) taken
    after the run.  ``shutdown=True`` sends a graceful ``shutdown`` op
    once the load completes -- the CI smoke uses that to tear the
    background server down deterministically.
    """
    from repro.challenge.generator import challenge_input_batch

    if requests < 1:
        raise ValidationError(f"requests must be >= 1, got {requests}")
    if clients < 1:
        raise ValidationError(f"clients must be >= 1, got {clients}")
    if rows_per_request < 1:
        raise ValidationError(f"rows_per_request must be >= 1, got {rows_per_request}")
    clients = min(clients, requests)

    with ServeClient(host, port, timeout_s=timeout_s) as probe:
        meta = probe.meta()
    neurons = int(meta["neurons"])

    # pre-generate every request's rows so the measured window is pure
    # serve traffic, not client-side RNG work
    batches = [
        challenge_input_batch(neurons, rows_per_request, seed=seed + i)
        for i in range(requests)
    ]
    shares = [batches[i::clients] for i in range(clients)]
    outcomes = [_ClientOutcome([], []) for _ in range(clients)]
    start_barrier = threading.Barrier(clients + 1)

    def _client(index: int) -> None:
        outcome = outcomes[index]
        try:
            with ServeClient(host, port, timeout_s=timeout_s) as client:
                start_barrier.wait()
                for i, rows in enumerate(shares[index]):
                    begin = time.perf_counter()
                    client.infer(
                        rows,
                        request_id=f"bench-{index}-{i}",
                        encoding=encoding,
                    )
                    outcome.latencies.append(time.perf_counter() - begin)
        except Exception as exc:  # noqa: BLE001 - reported in the aggregate
            outcome.errors.append(str(exc))
            try:
                start_barrier.abort()
            except threading.BrokenBarrierError:  # pragma: no cover
                pass

    threads = [
        threading.Thread(target=_client, args=(i,), daemon=True, name=f"bench-client-{i}")
        for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    try:
        start_barrier.wait(timeout=timeout_s)
    except threading.BrokenBarrierError:
        pass  # a client failed to connect; its error is in the aggregate
    wall_start = time.perf_counter()
    for thread in threads:
        thread.join(timeout=timeout_s)
    wall_seconds = time.perf_counter() - wall_start

    latencies = np.asarray(
        [value for outcome in outcomes for value in outcome.latencies], dtype=np.float64
    )
    errors = [message for outcome in outcomes for message in outcome.errors]
    completed = int(latencies.size)

    server_stats: dict = {}
    shutdown_ok = None
    try:
        with ServeClient(host, port, timeout_s=timeout_s) as tail:
            server_stats = {
                k: v for k, v in tail.stats().items() if k not in ("id", "ok")
            }
            if shutdown:
                shutdown_ok = bool(tail.shutdown().get("ok"))
    except ServeError as exc:
        errors.append(f"post-run stats/shutdown failed: {exc}")

    return {
        "requests": requests,
        "completed": completed,
        "errors": len(errors),
        "error_messages": errors[:10],
        "clients": clients,
        "rows_per_request": rows_per_request,
        "encoding": encoding,
        "wall_seconds": wall_seconds,
        "requests_per_second": completed / wall_seconds if wall_seconds > 0 else 0.0,
        "rows_per_second": (
            completed * rows_per_request / wall_seconds if wall_seconds > 0 else 0.0
        ),
        "latency_p50_ms": _percentile(latencies, 50) * 1000.0,
        "latency_p95_ms": _percentile(latencies, 95) * 1000.0,
        "latency_p99_ms": _percentile(latencies, 99) * 1000.0,
        "latency_max_ms": float(latencies.max() * 1000.0) if completed else 0.0,
        "server": {"neurons": neurons, "layers": meta.get("layers"),
                   "backend": meta.get("backend"), "activations": meta.get("activations"),
                   "max_batch": meta.get("max_batch"), "max_wait_ms": meta.get("max_wait_ms")},
        "server_stats": server_stats,
        "shutdown_sent": bool(shutdown),
        "shutdown_ok": shutdown_ok,
    }


# --------------------------------------------------------------------------- #
# saturation sweep (`repro challenge bench-serve --sweep`)
# --------------------------------------------------------------------------- #
def _locate_knee(points: list[dict], *, min_gain: float = 0.10) -> dict | None:
    """The knee of one rows-slice of the sweep grid.

    ``points`` must share ``rows_per_request`` and be sorted by
    ``clients``.  Walking up the concurrency ladder, the knee is the
    last point whose throughput improved by at least ``min_gain`` over
    its predecessor -- beyond it, added clients only buy latency.  A
    curve that never gains (single useful client) knees at its first
    point; a curve still gaining at the end knees at its last point
    (``saturated: False`` -- the sweep did not reach the plateau).
    """
    if not points:
        return None
    knee_index = 0
    for i in range(1, len(points)):
        prev = points[i - 1]["requests_per_second"]
        curr = points[i]["requests_per_second"]
        if prev <= 0 or curr >= prev * (1.0 + min_gain):
            knee_index = i
        else:
            break
    knee = dict(points[knee_index])
    knee["saturated"] = knee_index < len(points) - 1
    return knee


def saturation_sweep(
    host: str,
    port: int,
    *,
    clients_grid: tuple[int, ...] = (1, 2, 4, 8),
    rows_grid: tuple[int, ...] = (1,),
    requests_per_point: int = 60,
    seed: int = 0,
    encoding: str = "dense",
    timeout_s: float = 240.0,
    min_gain: float = 0.10,
) -> dict:
    """Map the throughput/latency curve of a live server and find its knee.

    For every ``rows x clients`` grid point this runs one
    :func:`bench_serve` measurement (``requests_per_point`` requests,
    distinct seeds per point so no two points replay the same rows) and
    records throughput, latency percentiles, and the *per-point*
    server-side queue-wait vs compute split (differenced from the
    cumulative ``stats`` totals between points).  The knee -- per rows
    value and overall (highest-throughput knee across rows values) -- is
    located by :func:`_locate_knee`.  The returned report is
    JSON-serializable; ``bench-serve --sweep`` writes it for the CI
    saturation artifact and :mod:`benchmarks.ledger` records the knee.
    """
    clients_grid = tuple(sorted({int(c) for c in clients_grid}))
    rows_grid = tuple(sorted({int(r) for r in rows_grid}))
    if not clients_grid or clients_grid[0] < 1:
        raise ValidationError(f"clients_grid must be >= 1, got {clients_grid}")
    if not rows_grid or rows_grid[0] < 1:
        raise ValidationError(f"rows_grid must be >= 1, got {rows_grid}")
    if requests_per_point < 1:
        raise ValidationError(
            f"requests_per_point must be >= 1, got {requests_per_point}"
        )

    grid: list[dict] = []
    knees: list[dict] = []
    # baseline the cumulative server counters so the first point's
    # queue-wait/compute attribution excludes any pre-sweep traffic
    try:
        with ServeClient(host, port, timeout_s=timeout_s) as probe:
            baseline = probe.stats()
        prev_wait = baseline.get("total_queue_wait_s")
        prev_service = baseline.get("total_service_s")
        prev_batches = baseline.get("batches")
    except ServeError:
        prev_wait = prev_service = prev_batches = None
    point_seed = seed
    for rows in rows_grid:
        slice_points: list[dict] = []
        for clients in clients_grid:
            report = bench_serve(
                host,
                port,
                requests=requests_per_point,
                clients=clients,
                rows_per_request=rows,
                seed=point_seed,
                encoding=encoding,
                timeout_s=timeout_s,
            )
            point_seed += requests_per_point
            point = {
                "clients": clients,
                "rows_per_request": rows,
                "requests": requests_per_point,
                "completed": report["completed"],
                "errors": report["errors"],
                "wall_seconds": report["wall_seconds"],
                "requests_per_second": report["requests_per_second"],
                "rows_per_second": report["rows_per_second"],
                "latency_p50_ms": report["latency_p50_ms"],
                "latency_p99_ms": report["latency_p99_ms"],
            }
            stats = report.get("server_stats") or {}
            wait = stats.get("total_queue_wait_s")
            service = stats.get("total_service_s")
            batches = stats.get("batches")
            if None not in (wait, service, batches, prev_wait):
                d_batches = batches - prev_batches
                if d_batches > 0:
                    point["queue_wait_mean_ms"] = (
                        (wait - prev_wait) / d_batches * 1000.0
                    )
                    point["service_mean_ms"] = (
                        (service - prev_service) / d_batches * 1000.0
                    )
            prev_wait, prev_service, prev_batches = wait, service, batches
            slice_points.append(point)
            grid.append(point)
        knee = _locate_knee(slice_points, min_gain=min_gain)
        if knee is not None:
            knees.append(knee)

    overall = max(knees, key=lambda k: k["requests_per_second"]) if knees else None
    return {
        "clients_grid": list(clients_grid),
        "rows_grid": list(rows_grid),
        "requests_per_point": requests_per_point,
        "encoding": encoding,
        "min_gain": min_gain,
        "grid": grid,
        "knees": knees,
        "knee": overall,
        "errors": int(sum(p["errors"] for p in grid)),
    }
