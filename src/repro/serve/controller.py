"""Adaptive batching: a feedback loop over the live serve telemetry.

``max_batch`` / ``max_wait_ms`` are a latency/throughput dial that the
operator of PR 5's server had to set blind, once, for a traffic mix they
could not know in advance.  :class:`AdaptiveBatchController` closes the
loop instead: every completed batch reports its shape and latency
breakdown (:meth:`observe`), idle workers report quiet periods
(:meth:`idle`), and the controller retunes the live batcher --

* **under load** (requests backed up behind the batch, the row budget
  filling before the window closes, or queue waits dwarfing the window)
  it *shrinks* ``max_wait_ms`` -- holding a batch open buys nothing when
  the queue already holds the next batch, it only adds latency -- and
  *grows* ``max_batch`` toward its cap so each engine step amortizes
  more requests;
* **when idle** it relaxes both back toward their configured baselines,
  restoring the coalescing window that keeps sporadic traffic cheap.

AIMD shape (multiplicative shrink, geometric relax) keeps the reaction
fast on bursts and smooth on decay.  All timing goes through the
injectable :class:`repro.utils.clock.Clock`, so the convergence
behaviour is pinned by a deterministic :class:`FakeClock` test with zero
sleeps: a synthetic burst drives ``max_wait_ms`` to its floor, a quiet
spell restores the baseline.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.errors import ValidationError
from repro.utils.clock import Clock

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (batcher binds us)
    from repro.serve.batcher import MicroBatcher


class AdaptiveBatchController:
    """Tune a :class:`MicroBatcher`'s ``max_batch``/``max_wait_ms`` live.

    Parameters
    ----------
    min_wait_ms:
        Floor for the coalescing window under load.  ``> 0`` keeps a
        sliver of coalescing even at saturation (a pure zero would make
        every queued request its own batch the instant load spikes).
    max_batch_cap:
        Ceiling for the grown row budget (default ``4x`` the batcher's
        configured ``max_batch`` at :meth:`bind` time).
    shrink / grow:
        The multiplicative factors: under load the window multiplies by
        ``shrink`` (< 1) and the budget by ``grow`` (> 1); relaxation
        walks both back by the inverse factors.
    interval_s:
        Minimum (clock) time between adjustments, so one burst's worth
        of batches counts as one load signal instead of slamming the
        window to the floor in a single micro-batch flight.  ``0``
        adjusts on every signal (deterministic tests).
    clock:
        Time source for the adjustment interval; defaults to the bound
        batcher's clock, so a ``FakeClock`` batcher gets a fake-clocked
        controller for free.
    """

    def __init__(
        self,
        *,
        min_wait_ms: float = 0.1,
        max_batch_cap: int | None = None,
        shrink: float = 0.5,
        grow: float = 1.5,
        interval_s: float = 0.05,
        clock: Clock | None = None,
    ) -> None:
        if min_wait_ms <= 0:
            raise ValidationError(f"min_wait_ms must be > 0, got {min_wait_ms}")
        if not 0 < shrink < 1:
            raise ValidationError(f"shrink must be in (0, 1), got {shrink}")
        if grow <= 1:
            raise ValidationError(f"grow must be > 1, got {grow}")
        if interval_s < 0:
            raise ValidationError(f"interval_s must be >= 0, got {interval_s}")
        if max_batch_cap is not None and max_batch_cap < 1:
            raise ValidationError(f"max_batch_cap must be >= 1, got {max_batch_cap}")
        self.min_wait_s = float(min_wait_ms) / 1000.0
        self.shrink = float(shrink)
        self.grow = float(grow)
        self.interval_s = float(interval_s)
        self._cap_arg = max_batch_cap
        self._clock = clock
        self._lock = threading.Lock()
        self._batcher: "MicroBatcher | None" = None
        self._last_adjust = -float("inf")
        self.tightened = 0
        self.relaxed = 0

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def bind(self, batcher: "MicroBatcher") -> None:
        """Adopt ``batcher``: its configured limits become the baselines."""
        with self._lock:
            if self._batcher is not None:
                raise ValidationError("controller is already bound to a batcher")
            self._batcher = batcher
            self.base_max_batch = batcher.max_batch
            self.base_max_wait_s = batcher.max_wait_s
            self.max_batch_cap = (
                self._cap_arg if self._cap_arg is not None else 4 * batcher.max_batch
            )
            if self._clock is None:
                self._clock = batcher.clock

    # ------------------------------------------------------------------ #
    # the feedback signals (called from batcher worker threads)
    # ------------------------------------------------------------------ #
    def observe(
        self,
        *,
        batch_rows: int,
        batch_requests: int,
        queue_wait_s: float,
        service_s: float,
        queue_depth: int,
    ) -> None:
        """One completed batch: decide loaded vs idle and adjust."""
        with self._lock:
            batcher = self._batcher
            if batcher is None:  # pragma: no cover - defensive
                return
            loaded = (
                queue_depth > 0  # the next batch is already waiting
                or batch_rows >= batcher.max_batch  # budget filled early
                # queueing dominates the window: coalescing is not what
                # these requests are waiting for
                or queue_wait_s > 2.0 * max(batcher.max_wait_s, self.min_wait_s)
            )
            if loaded:
                self._tighten(batcher)
            elif queue_depth == 0 and batch_rows <= max(1, batcher.max_batch // 2):
                self._relax(batcher)

    def idle(self, *, queue_depth: int) -> None:
        """A worker found nothing to do: walk the limits back to baseline."""
        with self._lock:
            if self._batcher is not None:
                self._relax(self._batcher)

    # ------------------------------------------------------------------ #
    # adjustment (lock held)
    # ------------------------------------------------------------------ #
    def _due(self) -> bool:
        now = self._clock.monotonic()
        if now - self._last_adjust < self.interval_s:
            return False
        self._last_adjust = now
        return True

    def _tighten(self, batcher: "MicroBatcher") -> None:
        if not self._due():
            return
        new_wait = max(self.min_wait_s, batcher.max_wait_s * self.shrink)
        new_batch = min(
            self.max_batch_cap,
            max(batcher.max_batch + 1, int(batcher.max_batch * self.grow)),
        )
        if new_wait != batcher.max_wait_s or new_batch != batcher.max_batch:
            batcher.max_wait_s = new_wait
            batcher.max_batch = new_batch
            self.tightened += 1

    def _relax(self, batcher: "MicroBatcher") -> None:
        at_base = (
            batcher.max_wait_s == self.base_max_wait_s
            and batcher.max_batch == self.base_max_batch
        )
        if at_base or not self._due():
            return
        batcher.max_wait_s = min(
            self.base_max_wait_s, batcher.max_wait_s / self.shrink
        )
        batcher.max_batch = max(
            self.base_max_batch, int(batcher.max_batch / self.grow)
        )
        self.relaxed += 1

    # ------------------------------------------------------------------ #
    # introspection (the stats/meta planes)
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """Live controller state for the ``stats`` response."""
        with self._lock:
            batcher = self._batcher
            return {
                "max_batch": batcher.max_batch if batcher else None,
                "max_wait_ms": batcher.max_wait_s * 1000.0 if batcher else None,
                "base_max_batch": getattr(self, "base_max_batch", None),
                "base_max_wait_ms": (
                    getattr(self, "base_max_wait_s", 0.0) * 1000.0
                    if batcher
                    else None
                ),
                "min_wait_ms": self.min_wait_s * 1000.0,
                "max_batch_cap": getattr(self, "max_batch_cap", None),
                "tightened": self.tightened,
                "relaxed": self.relaxed,
            }
