"""A resident challenge network ready for repeated serve-side batch steps.

The streaming pipeline (:mod:`repro.challenge.pipeline`) re-reads layers
per run because one official-scale pass dwarfs the load cost.  A server
inverts that trade-off: it answers thousands of small requests against
one network, so :class:`ServingEngine` pays the load exactly once --
weights streamed in via :class:`repro.challenge.pipeline.LoadStage` /
:func:`repro.challenge.io.iter_challenge_layers`, per-layer transposes
precomputed with the bound backend -- and every request batch then runs
:func:`repro.challenge.pipeline.run_pipeline` over the resident triples
with zero I/O.

Construction paths:

* :meth:`ServingEngine.from_directory` -- a saved network directory (the
  ``repro challenge serve --dir`` path; prefetch overlaps the one-time
  load);
* :meth:`ServingEngine.from_network` -- an in-memory
  :class:`~repro.challenge.generator.ChallengeNetwork` (tests, examples,
  benchmarks);
* :meth:`ServingEngine.from_checkpoint` -- a *warm restart*: a
  :class:`repro.challenge.pipeline.CheckpointStage` checkpoint records
  the network directory, neurons, threshold, backend, and activation
  policy in its context, so a restarted server process recovers its full
  configuration from the checkpoint directory alone
  (``repro challenge serve --warm-start CKPT_DIR``).
"""

from __future__ import annotations

import os

import numpy as np

from repro.backends import resolve_backend
from repro.backends.base import SparseBackend
from repro.challenge.generator import ChallengeNetwork
from repro.challenge.inference import ActivationPolicy
from repro.errors import ShapeError
from repro.serve.batcher import EngineStep
from repro.sparse.csr import CSRMatrix


class ServingEngine:
    """Resident ``(weight, weight_t, bias)`` triples + one-step recurrence.

    ``step`` is the :class:`repro.serve.batcher.MicroBatcher` hook: one
    full-recurrence pass over a stacked ``(rows, neurons)`` batch.  The
    recurrence is row-independent, so results scatter back per request
    bit-identically to single-shot runs (the serve test layer's core
    invariant).
    """

    def __init__(
        self,
        layers: list[tuple[CSRMatrix, np.ndarray]],
        *,
        neurons: int,
        threshold: float,
        backend: str | SparseBackend | None = None,
        activations: str | ActivationPolicy | None = None,
        source: str = "in-memory",
        shards: int | None = None,
    ) -> None:
        self.backend = resolve_backend(backend)
        self.policy = ActivationPolicy.resolve(activations)
        self.neurons = int(neurons)
        self.threshold = float(threshold)
        self.source = source
        self.layout = None
        if shards is not None:
            from repro.parallel.sharding import ShardLayout

            self.layout = ShardLayout.balanced(self.neurons, shards)
        if self.layout is None:
            # pay the transposes once; the request hot loop never transposes
            self.layers = tuple(
                (
                    weight,
                    self.backend.transpose(weight),
                    np.asarray(bias, dtype=np.float64),
                )
                for weight, bias in layers
            )
            self.shard_layers = ()
            self.edges_per_sample = int(sum(w.nnz for w, _, _ in self.layers))
        else:
            # resident column slices only -- the full weights (and a full
            # transpose) are never kept, so K sharded replicas split the
            # model footprint instead of multiplying it.  Per-shard
            # transposes equal row slices of the full transpose (canonical
            # CSR is unique), so steps stay bit-identical to unsharded.
            import dataclasses

            from repro.parallel.sharding import shard_layer

            self.layers = ()
            sharded = []
            for weight, bias in layers:
                sliced = shard_layer(
                    weight, None, np.asarray(bias, dtype=np.float64), self.layout
                )
                sharded.append(
                    dataclasses.replace(
                        sliced,
                        shards=tuple(
                            (w, self.backend.transpose(w), b)
                            for w, _, b in sliced.shards
                        ),
                    )
                )
            self.shard_layers = tuple(sharded)
            self.edges_per_sample = int(sum(s.nnz for s in self.shard_layers))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_directory(
        cls,
        directory: str | os.PathLike,
        neurons: int,
        *,
        backend: str | SparseBackend | None = None,
        activations: str | ActivationPolicy | None = None,
        use_cache: bool = True,
        prefetch: int = 2,
        shards: int | None = None,
    ) -> "ServingEngine":
        """Load a saved network directory resident, once, with prefetch overlap."""
        from repro.challenge.io import read_challenge_meta
        from repro.challenge.pipeline import LoadStage

        meta = read_challenge_meta(directory, neurons)
        with LoadStage.from_directory(
            directory, meta.neurons, prefetch=prefetch, use_cache=use_cache
        ) as load:
            layers = [(weight, bias) for weight, _, bias in load]
        return cls(
            layers,
            neurons=meta.neurons,
            threshold=meta.threshold,
            backend=backend,
            activations=activations,
            source=str(directory),
            shards=shards,
        )

    @classmethod
    def from_network(
        cls,
        network: ChallengeNetwork,
        *,
        backend: str | SparseBackend | None = None,
        activations: str | ActivationPolicy | None = None,
        shards: int | None = None,
    ) -> "ServingEngine":
        return cls(
            list(zip(network.weights, network.biases)),
            neurons=network.neurons,
            threshold=network.threshold,
            backend=backend,
            activations=activations,
            shards=shards,
        )

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint_dir: str | os.PathLike,
        *,
        backend: str | SparseBackend | None = None,
        activations: str | ActivationPolicy | None = None,
        use_cache: bool = True,
        prefetch: int = 2,
        shards: int | None = None,
    ) -> "ServingEngine":
        """Warm restart: recover the full serve configuration from a checkpoint.

        The checkpoint's context names the network directory and neurons;
        its recorded backend, activation policy, and shard count become
        the engine's defaults unless explicitly overridden.
        """
        from repro.challenge.pipeline import load_checkpoint
        from repro.errors import SerializationError

        ckpt = load_checkpoint(checkpoint_dir)
        directory = ckpt.context.get("directory")
        neurons = ckpt.context.get("neurons")
        if directory is None or neurons is None:
            raise SerializationError(
                f"{ckpt.path}: checkpoint context lacks the network "
                "directory/neurons needed for a warm restart"
            )
        if shards is None:
            recorded = ckpt.context.get("shards")
            shards = int(recorded) if recorded is not None else None
        return cls.from_directory(
            directory,
            int(neurons),
            backend=backend if backend is not None else ckpt.backend,
            activations=activations if activations is not None else ckpt.policy,
            use_cache=use_cache,
            prefetch=prefetch,
            shards=shards,
        )

    # ------------------------------------------------------------------ #
    # the batch step
    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        return len(self.layers) if self.layout is None else len(self.shard_layers)

    @property
    def shards(self) -> int:
        return 1 if self.layout is None else self.layout.shards

    def step(self, rows: np.ndarray) -> EngineStep:
        """Run the full recurrence over one stacked ``(rows, neurons)`` batch."""
        from repro.challenge.pipeline import PipelineState, run_pipeline

        y = np.asarray(rows, dtype=np.float64)
        if y.ndim != 2 or y.shape[1] != self.neurons:
            raise ShapeError(
                f"request rows must have shape (k, {self.neurons}), got {y.shape}"
            )
        if self.layout is not None:
            from repro.parallel.sharding import ShardedComputeStage

            state = PipelineState.initial(y)
            stage = ShardedComputeStage(
                threshold=self.threshold,
                backend=self.backend,
                policy=self.policy,
                record_timing=False,
                layout=self.layout,
            )
            for sharded in self.shard_layers:
                stage.advance_layer(state, sharded)
        else:
            state = run_pipeline(
                self.layers,
                PipelineState.initial(y),
                threshold=self.threshold,
                backend=self.backend,
                policy=self.policy,
                record_timing=False,
            )
        return EngineStep(
            activations=state.batch.to_array(),
            layer_modes=list(state.layer_modes),
        )

    def describe(self) -> dict:
        """The server-side metadata handed to clients by the ``meta`` op."""
        return {
            "neurons": self.neurons,
            "layers": self.num_layers,
            "threshold": self.threshold,
            "backend": self.backend.name,
            "activations": self.policy.mode,
            "edges_per_sample": self.edges_per_sample,
            "source": self.source,
            "shards": self.shards,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ServingEngine({self.neurons} neurons x {self.num_layers} layers, "
            f"backend={self.backend.name!r}, activations={self.policy.mode!r})"
        )
