"""A resident challenge network ready for repeated serve-side batch steps.

The streaming pipeline (:mod:`repro.challenge.pipeline`) re-reads layers
per run because one official-scale pass dwarfs the load cost.  A server
inverts that trade-off: it answers thousands of small requests against
one network, so :class:`ServingEngine` pays the load exactly once --
weights streamed in via :class:`repro.challenge.pipeline.LoadStage` /
:func:`repro.challenge.io.iter_challenge_layers`, per-layer transposes
precomputed with the bound backend -- and every request batch then runs
:func:`repro.challenge.pipeline.run_pipeline` over the resident triples
with zero I/O.

Construction paths:

* :meth:`ServingEngine.from_directory` -- a saved network directory (the
  ``repro challenge serve --dir`` path; prefetch overlaps the one-time
  load);
* :meth:`ServingEngine.from_network` -- an in-memory
  :class:`~repro.challenge.generator.ChallengeNetwork` (tests, examples,
  benchmarks);
* :meth:`ServingEngine.from_checkpoint` -- a *warm restart*: a
  :class:`repro.challenge.pipeline.CheckpointStage` checkpoint records
  the network directory, neurons, threshold, backend, and activation
  policy in its context, so a restarted server process recovers its full
  configuration from the checkpoint directory alone
  (``repro challenge serve --warm-start CKPT_DIR``).
"""

from __future__ import annotations

import os

import numpy as np

from repro.backends import resolve_backend
from repro.backends.base import SparseBackend
from repro.challenge.generator import ChallengeNetwork
from repro.challenge.inference import ActivationPolicy
from repro.errors import ShapeError
from repro.serve.batcher import EngineStep
from repro.sparse.csr import CSRMatrix


class ServingEngine:
    """Resident ``(weight, weight_t, bias)`` triples + one-step recurrence.

    ``step`` is the :class:`repro.serve.batcher.MicroBatcher` hook: one
    full-recurrence pass over a stacked ``(rows, neurons)`` batch.  The
    recurrence is row-independent, so results scatter back per request
    bit-identically to single-shot runs (the serve test layer's core
    invariant).
    """

    def __init__(
        self,
        layers: list[tuple[CSRMatrix, np.ndarray]],
        *,
        neurons: int,
        threshold: float,
        backend: str | SparseBackend | None = None,
        activations: str | ActivationPolicy | None = None,
        source: str = "in-memory",
    ) -> None:
        self.backend = resolve_backend(backend)
        self.policy = ActivationPolicy.resolve(activations)
        self.neurons = int(neurons)
        self.threshold = float(threshold)
        self.source = source
        # pay the transposes once; the request hot loop never transposes
        self.layers = tuple(
            (weight, self.backend.transpose(weight), np.asarray(bias, dtype=np.float64))
            for weight, bias in layers
        )
        self.edges_per_sample = int(sum(w.nnz for w, _, _ in self.layers))

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_directory(
        cls,
        directory: str | os.PathLike,
        neurons: int,
        *,
        backend: str | SparseBackend | None = None,
        activations: str | ActivationPolicy | None = None,
        use_cache: bool = True,
        prefetch: int = 2,
    ) -> "ServingEngine":
        """Load a saved network directory resident, once, with prefetch overlap."""
        from repro.challenge.io import read_challenge_meta
        from repro.challenge.pipeline import LoadStage

        meta = read_challenge_meta(directory, neurons)
        with LoadStage.from_directory(
            directory, meta.neurons, prefetch=prefetch, use_cache=use_cache
        ) as load:
            layers = [(weight, bias) for weight, _, bias in load]
        return cls(
            layers,
            neurons=meta.neurons,
            threshold=meta.threshold,
            backend=backend,
            activations=activations,
            source=str(directory),
        )

    @classmethod
    def from_network(
        cls,
        network: ChallengeNetwork,
        *,
        backend: str | SparseBackend | None = None,
        activations: str | ActivationPolicy | None = None,
    ) -> "ServingEngine":
        return cls(
            list(zip(network.weights, network.biases)),
            neurons=network.neurons,
            threshold=network.threshold,
            backend=backend,
            activations=activations,
        )

    @classmethod
    def from_checkpoint(
        cls,
        checkpoint_dir: str | os.PathLike,
        *,
        backend: str | SparseBackend | None = None,
        activations: str | ActivationPolicy | None = None,
        use_cache: bool = True,
        prefetch: int = 2,
    ) -> "ServingEngine":
        """Warm restart: recover the full serve configuration from a checkpoint.

        The checkpoint's context names the network directory and neurons;
        its recorded backend and activation policy become the engine's
        defaults unless explicitly overridden.
        """
        from repro.challenge.pipeline import load_checkpoint
        from repro.errors import SerializationError

        ckpt = load_checkpoint(checkpoint_dir)
        directory = ckpt.context.get("directory")
        neurons = ckpt.context.get("neurons")
        if directory is None or neurons is None:
            raise SerializationError(
                f"{ckpt.path}: checkpoint context lacks the network "
                "directory/neurons needed for a warm restart"
            )
        return cls.from_directory(
            directory,
            int(neurons),
            backend=backend if backend is not None else ckpt.backend,
            activations=activations if activations is not None else ckpt.policy,
            use_cache=use_cache,
            prefetch=prefetch,
        )

    # ------------------------------------------------------------------ #
    # the batch step
    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def step(self, rows: np.ndarray) -> EngineStep:
        """Run the full recurrence over one stacked ``(rows, neurons)`` batch."""
        from repro.challenge.pipeline import PipelineState, run_pipeline

        y = np.asarray(rows, dtype=np.float64)
        if y.ndim != 2 or y.shape[1] != self.neurons:
            raise ShapeError(
                f"request rows must have shape (k, {self.neurons}), got {y.shape}"
            )
        state = run_pipeline(
            self.layers,
            PipelineState.initial(y),
            threshold=self.threshold,
            backend=self.backend,
            policy=self.policy,
            record_timing=False,
        )
        return EngineStep(
            activations=state.batch.to_array(),
            layer_modes=list(state.layer_modes),
        )

    def describe(self) -> dict:
        """The server-side metadata handed to clients by the ``meta`` op."""
        return {
            "neurons": self.neurons,
            "layers": self.num_layers,
            "threshold": self.threshold,
            "backend": self.backend.name,
            "activations": self.policy.mode,
            "edges_per_sample": self.edges_per_sample,
            "source": self.source,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ServingEngine({self.neurons} neurons x {self.num_layers} layers, "
            f"backend={self.backend.name!r}, activations={self.policy.mode!r})"
        )
