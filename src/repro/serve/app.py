"""The asyncio front end: many client connections, one batching worker.

Concurrency model -- three layers, each single-purpose:

* the **event loop** (this module) owns the sockets: it parses one JSON
  line per request, validates it in the protocol layer, and parks the
  connection's coroutine while the request is pending (thousands of idle
  connections cost nothing);
* the **micro-batcher worker pool**
  (:class:`repro.serve.batcher.MicroBatcher`) owns the engine: each of
  its ``workers`` threads coalesces whatever accumulated while the
  previous step ran and drives one
  :meth:`repro.serve.engine.ServingEngine.step` per micro-batch -- the
  NumPy/SciPy kernels release the GIL, so the event loop stays
  responsive while batches compute and requests/second scales with
  cores;
* completion flows back through a done callback bridged onto the loop
  (``call_soon_threadsafe``) -- no thread is parked per pending request
  -- and the handler writes the response line.

:meth:`ServeApp.run` is the blocking entry point behind
``repro challenge serve``; :func:`serve_in_background` runs the same app
on a daemon thread with its own event loop and returns a handle --
the form tests, benchmarks, and the bundled example embed.

Graceful shutdown (the ``shutdown`` op, or :meth:`ServerHandle.stop`)
stops accepting work, *drains* every queued request, then exits: no
request that was accepted is ever dropped.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable

from repro.errors import ReproError, ServeError
from repro.parallel.executor import serve_worker_count
from repro.serve import protocol
from repro.serve.batcher import MicroBatcher
from repro.serve.controller import AdaptiveBatchController
from repro.serve.engine import ServingEngine
from repro.utils.clock import Clock


class ServeApp:
    """A serving instance: one engine, one batcher pool, one socket.

    ``workers`` batcher threads (default ``min(cpu_count, 4)``) drain
    the shared request queue concurrently; ``adaptive_batch=True``
    attaches an :class:`AdaptiveBatchController` that retunes
    ``max_batch``/``max_wait_ms`` from the live batch-size and
    queue-latency distributions.
    """

    def __init__(
        self,
        engine: ServingEngine,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        request_timeout_s: float = 60.0,
        clock: Clock | None = None,
        workers: int | None = None,
        adaptive_batch: bool = False,
    ) -> None:
        self.engine = engine
        self.host = host
        self.port = int(port)
        self.request_timeout_s = float(request_timeout_s)
        self.controller = AdaptiveBatchController(clock=clock) if adaptive_batch else None
        self.batcher = MicroBatcher(
            engine.step,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            clock=clock,
            workers=serve_worker_count(workers),
            controller=self.controller,
        )
        self.address: tuple[str, int] | None = None
        self.connections_opened = 0
        self.protocol_errors = 0
        self._shutdown: asyncio.Event | None = None
        self._handlers: set[asyncio.Task] = set()
        self._inflight = 0
        self._idle: asyncio.Event | None = None

    # ------------------------------------------------------------------ #
    # request dispatch
    # ------------------------------------------------------------------ #
    def stats(self) -> dict:
        """Live serving counters (the ``stats`` op's payload)."""
        payload = {
            **self.batcher.stats_dict(),
            "connections_opened": self.connections_opened,
            "protocol_errors": self.protocol_errors,
            "pending": len(self.batcher.queue),
        }
        if self.controller is not None:
            payload["adaptive"] = self.controller.snapshot()
        return payload

    async def _dispatch(self, line: bytes) -> tuple[dict, bool]:
        """One request line -> (response, shutdown_requested)."""
        request_id: Any = None
        try:
            message = protocol.decode(line)
            request_id = message.get("id")
            op = message.get("op")
            if op == protocol.OP_PING:
                return {"id": request_id, "ok": True, "op": "pong"}, False
            if op == protocol.OP_META:
                meta = self.engine.describe()
                meta.update(
                    max_batch=self.batcher.max_batch,
                    max_wait_ms=self.batcher.max_wait_s * 1000.0,
                    workers=self.batcher.workers,
                    adaptive_batch=self.controller is not None,
                )
                return {"id": request_id, "ok": True, **meta}, False
            if op == protocol.OP_STATS:
                return {"id": request_id, "ok": True, **self.stats()}, False
            if op == protocol.OP_SHUTDOWN:
                return {"id": request_id, "ok": True, "op": "shutdown"}, True
            if op == protocol.OP_INFER:
                return await self._dispatch_infer(message, request_id), False
            raise ServeError(f"unknown op {op!r} (expected one of {protocol.OPS})")
        except ReproError as exc:
            self.protocol_errors += 1
            return protocol.error_response(request_id, str(exc)), False
        except Exception as exc:  # noqa: BLE001 - a bad request must never
            # take the connection (or the handler task) down with it
            self.protocol_errors += 1
            return (
                protocol.error_response(request_id, f"internal error: {exc!r}"),
                False,
            )

    async def _dispatch_infer(self, message: dict, request_id: Any) -> dict:
        rows = protocol.rows_from_wire(
            message.get("rows"), neurons=self.engine.neurons
        )
        pending = self.batcher.submit(
            rows, request_id=None if request_id is None else str(request_id)
        )
        loop = asyncio.get_running_loop()
        # bridge the worker-thread completion into the loop with a done
        # callback -> call_soon_threadsafe: no thread is parked per
        # pending request, so request concurrency is not capped by the
        # default executor's worker count
        future: asyncio.Future = loop.create_future()

        def _completed(_: object) -> None:
            try:
                loop.call_soon_threadsafe(
                    lambda: future.done() or future.set_result(None)
                )
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

        pending.add_done_callback(_completed)
        try:
            await asyncio.wait_for(future, timeout=self.request_timeout_s)
        except asyncio.TimeoutError:
            raise ServeError(
                f"request {pending.request_id} not completed within "
                f"{self.request_timeout_s}s"
            ) from None
        result = pending.result(timeout=0)
        response = {
            "id": request_id,
            "ok": True,
            "categories": result.categories.tolist(),
            "stats": result.stats.as_dict(),
        }
        if message.get("want") == "activations":
            response["activations"] = result.activations.tolist()
        return response

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.connections_opened += 1
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # line overran the stream limit: unframeable, close
                    self.protocol_errors += 1
                    writer.write(
                        protocol.encode(
                            protocol.error_response(None, "protocol line too long")
                        )
                    )
                    break
                if not line:
                    break  # client closed
                if line.strip() == b"":
                    continue
                # count the dispatch-to-response window so shutdown can
                # wait for in-flight requests before reaping connections
                assert self._idle is not None
                self._inflight += 1
                self._idle.clear()
                try:
                    response, shutdown = await self._dispatch(line)
                    writer.write(protocol.encode(response))
                    await writer.drain()
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                if shutdown:
                    assert self._shutdown is not None
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover - client died
            pass
        except asyncio.CancelledError:
            # only our own shutdown path cancels handlers; ending the
            # coroutine normally keeps the stream protocol's done-callback
            # (which re-raises a cancelled task's "exception") quiet
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _main(
        self, on_ready: Callable[[tuple[str, int]], None] | None = None
    ) -> None:
        """Serve until a ``shutdown`` op (or cancellation), then drain."""
        self._shutdown = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self.batcher.start()
        try:
            server = await asyncio.start_server(
                self._handle, self.host, self.port, limit=protocol.MAX_LINE_BYTES
            )
        except OSError:
            self.batcher.close(drain=False)
            raise
        sockname = server.sockets[0].getsockname()
        self.address = (str(sockname[0]), int(sockname[1]))
        if on_ready is not None:
            on_ready(self.address)
        try:
            async with server:
                await self._shutdown.wait()
        finally:
            # accepted requests are never dropped: drain the batcher, let
            # every in-flight dispatch write its response, and only then
            # reap connections still parked on readline (they would be
            # destroyed mid-coroutine when the loop closes otherwise)
            self.batcher.close(drain=True)
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.request_timeout_s
                )
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
            for handler in list(self._handlers):
                handler.cancel()
            if self._handlers:
                await asyncio.gather(*self._handlers, return_exceptions=True)

    def run(self, on_ready: Callable[[tuple[str, int]], None] | None = None) -> None:
        """Blocking entry point (the ``repro challenge serve`` body)."""
        try:
            asyncio.run(self._main(on_ready))
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass


class ServerHandle:
    """A background server: address, live app, and a blocking ``stop``."""

    def __init__(self, app: ServeApp, thread: threading.Thread, loop: asyncio.AbstractEventLoop) -> None:
        self.app = app
        self._thread = thread
        self._loop = loop

    @property
    def address(self) -> tuple[str, int]:
        assert self.app.address is not None
        return self.app.address

    def stop(self, timeout: float = 30.0) -> None:
        """Request graceful shutdown (drains the queue) and join the thread."""
        def _signal() -> None:
            if self.app._shutdown is not None:
                self.app._shutdown.set()

        try:
            self._loop.call_soon_threadsafe(_signal)
        except RuntimeError:
            pass  # loop already closed: the server stopped on its own
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServeError(f"server thread did not stop within {timeout}s")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_in_background(
    engine: ServingEngine,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    request_timeout_s: float = 60.0,
    startup_timeout_s: float = 30.0,
    workers: int | None = None,
    adaptive_batch: bool = False,
) -> ServerHandle:
    """Run a :class:`ServeApp` on a daemon thread; return once it is listening.

    The returned :class:`ServerHandle` exposes the bound ``address``
    (``port=0`` picks an ephemeral port) and a graceful ``stop``; use it
    as a context manager so tests and benchmarks always drain and join.
    Startup failures (port in use, engine errors) re-raise here, in the
    caller's thread.
    """
    app = ServeApp(
        engine,
        host=host,
        port=port,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        request_timeout_s=request_timeout_s,
        workers=workers,
        adaptive_batch=adaptive_batch,
    )
    ready = threading.Event()
    holder: dict[str, Any] = {}

    def _runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        def _on_ready(address: tuple[str, int]) -> None:
            holder["loop"] = loop
            ready.set()

        try:
            loop.run_until_complete(app._main(_on_ready))
        except BaseException as exc:  # noqa: BLE001 - relayed to the starter
            holder["error"] = exc
        finally:
            ready.set()
            asyncio.set_event_loop(None)
            loop.close()

    thread = threading.Thread(target=_runner, daemon=True, name="serve-app")
    thread.start()
    if not ready.wait(startup_timeout_s):  # pragma: no cover - defensive
        raise ServeError(f"server did not start within {startup_timeout_s}s")
    if "error" in holder:
        thread.join(timeout=5.0)
        raise ServeError(f"server failed to start: {holder['error']}") from holder["error"]
    if "loop" not in holder:  # pragma: no cover - defensive
        raise ServeError("server exited before binding its socket")
    return ServerHandle(app, thread, holder["loop"])
