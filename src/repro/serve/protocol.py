"""The serve wire protocol: newline-delimited JSON over a byte stream.

One request per line, one response line per request, always in order --
trivially debuggable with ``nc`` and implementable from any language
with a JSON library.  Python's JSON float round-trip is exact for
float64 (``repr`` emits the shortest digits that parse back to the same
bits), so activation values survive the wire bit-identically -- the
property the serve parity tests rely on.

Requests are objects with an ``op``:

``{"op": "infer", "id": ..., "rows": [[...], ...]}``
    Run the recurrence over the given activation rows.  ``rows`` is
    either a dense list of ``neurons``-length rows or the sparse form
    ``{"neurons": N, "cols": [[...], ...], "vals": [[...], ...]}`` (one
    ``cols``/``vals`` pair per row -- the natural encoding for challenge
    inputs, which are mostly zero).  Optional ``"want": "activations"``
    adds the dense activation rows to the response (the default response
    carries only the categories).
``{"op": "ping"}`` / ``{"op": "meta"}`` / ``{"op": "stats"}``
    Liveness, immutable server description, and live serving counters.
``{"op": "shutdown"}``
    Graceful stop: the server drains every queued request, answers this
    one, and exits.
``{"op": "drain", "replica": i}``
    Balancer-only (a single server rejects it): warm-restart replica
    ``i`` -- stop routing to it, let its outstanding work finish,
    restart it, and answer once the replacement passed its readiness
    ping.  The response carries the replacement's ``"address"``.

Responses echo ``id`` and carry ``"ok": true`` plus op-specific fields,
or ``"ok": false`` with an ``"error"`` message.  Malformed lines get an
error response (the connection stays usable); an oversized line is a
protocol violation that closes the connection.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.errors import ServeError

# one framed line must fit a dense official-scale batch comfortably
MAX_LINE_BYTES = 64 * 2**20

OP_INFER = "infer"
OP_PING = "ping"
OP_META = "meta"
OP_STATS = "stats"
OP_SHUTDOWN = "shutdown"
OP_DRAIN = "drain"  # balancer-only: warm-restart one replica
OPS = (OP_INFER, OP_PING, OP_META, OP_STATS, OP_SHUTDOWN)
BALANCER_OPS = OPS + (OP_DRAIN,)


def encode(message: dict) -> bytes:
    """One protocol line: compact JSON + newline."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode(line: bytes) -> dict:
    """Parse one protocol line into a message object."""
    if len(line) > MAX_LINE_BYTES:
        raise ServeError(f"protocol line exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"malformed protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ServeError("protocol messages must be JSON objects")
    return message


def rows_to_wire(rows: np.ndarray, *, encoding: str = "dense") -> Any:
    """Encode a ``(k, neurons)`` row block for the ``infer`` request."""
    if encoding == "dense":
        return rows.tolist()
    if encoding == "sparse":
        cols = []
        vals = []
        for row in rows:
            nz = np.flatnonzero(row)
            cols.append(nz.tolist())
            vals.append(row[nz].tolist())
        return {"neurons": int(rows.shape[1]), "cols": cols, "vals": vals}
    raise ServeError(f"unknown row encoding {encoding!r} (use 'dense' or 'sparse')")


def rows_from_wire(payload: Any, *, neurons: int) -> np.ndarray:
    """Decode an ``infer`` request's ``rows`` into a ``(k, neurons)`` matrix.

    Accepts both wire forms of :func:`rows_to_wire` and validates shape
    eagerly so a bad request fails in the protocol layer, with a clear
    message, before it ever reaches the batcher.
    """
    if isinstance(payload, dict):
        cols = payload.get("cols")
        vals = payload.get("vals")
        wire_neurons = payload.get("neurons", neurons)
        if not isinstance(cols, list) or not isinstance(vals, list) or len(cols) != len(vals):
            raise ServeError(
                "sparse rows need parallel 'cols' and 'vals' lists of equal length"
            )
        try:
            wire_neurons = int(wire_neurons)
        except (TypeError, ValueError):
            raise ServeError(
                f"sparse rows 'neurons' must be an integer, got {wire_neurons!r}"
            ) from None
        if int(wire_neurons) != neurons:
            raise ServeError(
                f"request rows have {wire_neurons} neurons, server expects {neurons}"
            )
        if not cols:
            raise ServeError("an infer request needs at least one row")
        rows = np.zeros((len(cols), neurons), dtype=np.float64)
        for i, (row_cols, row_vals) in enumerate(zip(cols, vals)):
            try:
                idx = np.asarray(row_cols, dtype=np.int64)
                values = np.asarray(row_vals, dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise ServeError(f"malformed sparse row {i}: {exc}") from None
            if idx.ndim != 1 or values.ndim != 1 or idx.shape != values.shape:
                raise ServeError(f"sparse row {i}: cols/vals must be equal-length 1-D lists")
            if idx.size and (idx.min() < 0 or idx.max() >= neurons):
                raise ServeError(f"sparse row {i}: column index out of range 0..{neurons - 1}")
            rows[i, idx] = values
        return rows
    if not isinstance(payload, list) or not payload:
        raise ServeError("an infer request needs a non-empty 'rows' list")
    try:
        rows = np.asarray(payload, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ServeError(f"malformed dense rows: {exc}") from None
    if rows.ndim != 2 or rows.shape[1] != neurons:
        raise ServeError(
            f"request rows must have shape (k, {neurons}), got {tuple(rows.shape)}"
        )
    return rows


def error_response(request_id: Any, message: str) -> dict:
    return {"id": request_id, "ok": False, "error": str(message)}
