"""Serve-style inference: a long-lived engine behind request batching.

The serving subsystem keeps one challenge network resident
(:class:`~repro.serve.engine.ServingEngine`: weights + precomputed
transposes loaded once) and answers many concurrent clients by
coalescing their requests into micro-batches
(:class:`~repro.serve.batcher.MicroBatcher`) -- one
:func:`repro.challenge.pipeline.run_pipeline` step per batch, rows
scattered back per request bit-identically to single-shot runs.  The
asyncio front end (:class:`~repro.serve.app.ServeApp`) speaks a
newline-delimited JSON protocol (:mod:`repro.serve.protocol`);
:class:`~repro.serve.client.ServeClient` /
:func:`~repro.serve.client.bench_serve` are the bundled client and load
generator.  CLI: ``repro challenge serve`` / ``repro challenge
bench-serve``.

Scale-out (PR 7): the batcher runs ``workers`` threads against the one
queue (engine steps in parallel, results still bit-identical);
:mod:`repro.serve.balancer` forks shared-nothing process replicas behind
an asyncio load balancer speaking the same protocol (``--replicas K``);
:class:`~repro.serve.controller.AdaptiveBatchController` retunes
``max_batch``/``max_wait_ms`` from the live batch/latency distributions
(``--adaptive-batch``); and :func:`~repro.serve.client.saturation_sweep`
locates the knee of the throughput/latency curve
(``bench-serve --sweep``).

Resilience (PR 8): the fleet is self-healing.  The balancer actively
health-checks replicas (:mod:`repro.serve.health` holds the
FakeClock-testable decision logic), ejects one after consecutive
failures, retries in-flight requests lost to a dead connection on
another replica with capped exponential backoff (exactly-once,
bit-identical -- the recurrence is stateless per request), and the
:class:`~repro.serve.balancer.FleetSupervisor` restarts crashed replica
processes (``--max-restarts``) and drives zero-drop rolling restarts
via ``drain``.
"""

from repro.serve.app import ServeApp, ServerHandle, serve_in_background
from repro.serve.balancer import (
    BalancerHandle,
    FleetHandle,
    FleetSupervisor,
    LoadBalancer,
    ReplicaFleet,
    ReplicaProcess,
    aggregate_stats,
    serve_balancer_in_background,
    serve_fleet_in_background,
)
from repro.serve.batcher import (
    BatcherStats,
    EngineStep,
    MicroBatcher,
    PendingRequest,
    RequestQueue,
    RequestStats,
    ServeResult,
)
from repro.serve.client import ServeClient, bench_serve, saturation_sweep
from repro.serve.controller import AdaptiveBatchController
from repro.serve.engine import ServingEngine
from repro.serve.health import (
    HealthMonitor,
    HealthPolicy,
    ReplicaHealth,
    backoff_delays,
)

__all__ = [
    "AdaptiveBatchController",
    "BalancerHandle",
    "BatcherStats",
    "EngineStep",
    "FleetHandle",
    "FleetSupervisor",
    "HealthMonitor",
    "HealthPolicy",
    "LoadBalancer",
    "ReplicaHealth",
    "MicroBatcher",
    "PendingRequest",
    "ReplicaFleet",
    "ReplicaProcess",
    "RequestQueue",
    "RequestStats",
    "ServeApp",
    "ServeClient",
    "ServeResult",
    "ServerHandle",
    "ServingEngine",
    "aggregate_stats",
    "backoff_delays",
    "bench_serve",
    "saturation_sweep",
    "serve_balancer_in_background",
    "serve_fleet_in_background",
    "serve_in_background",
]
