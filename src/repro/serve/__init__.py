"""Serve-style inference: a long-lived engine behind request batching.

The serving subsystem keeps one challenge network resident
(:class:`~repro.serve.engine.ServingEngine`: weights + precomputed
transposes loaded once) and answers many concurrent clients by
coalescing their requests into micro-batches
(:class:`~repro.serve.batcher.MicroBatcher`) -- one
:func:`repro.challenge.pipeline.run_pipeline` step per batch, rows
scattered back per request bit-identically to single-shot runs.  The
asyncio front end (:class:`~repro.serve.app.ServeApp`) speaks a
newline-delimited JSON protocol (:mod:`repro.serve.protocol`);
:class:`~repro.serve.client.ServeClient` /
:func:`~repro.serve.client.bench_serve` are the bundled client and load
generator.  CLI: ``repro challenge serve`` / ``repro challenge
bench-serve``.
"""

from repro.serve.app import ServeApp, ServerHandle, serve_in_background
from repro.serve.batcher import (
    BatcherStats,
    EngineStep,
    MicroBatcher,
    PendingRequest,
    RequestQueue,
    RequestStats,
    ServeResult,
)
from repro.serve.client import ServeClient, bench_serve
from repro.serve.engine import ServingEngine

__all__ = [
    "BatcherStats",
    "EngineStep",
    "MicroBatcher",
    "PendingRequest",
    "RequestQueue",
    "RequestStats",
    "ServeApp",
    "ServeClient",
    "ServeResult",
    "ServerHandle",
    "ServingEngine",
    "bench_serve",
    "serve_in_background",
]
