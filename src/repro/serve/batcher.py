"""Request coalescing: a bounded queue and a micro-batching worker.

The serving hot loop is one engine step per *micro-batch*: requests that
arrive while the previous batch computes are coalesced -- their row
blocks stacked into a single ``(rows, neurons)`` activation matrix --
and one :func:`repro.challenge.pipeline.run_pipeline` pass amortizes the
per-step overhead (policy decisions, kernel dispatch, Python layer loop)
over every waiting client.  Because the challenge recurrence is
row-independent (both the dense SpMM and the fused SpGEMM path compute
each activation row from that row alone), scattering the batch result
back into per-request slices is *bit-identical* to running each request
single-shot -- the property the serve test layer pins on every backend.

Pieces:

* :class:`PendingRequest` -- a submitted request: its rows, its identity,
  and a one-shot completion event carrying the :class:`ServeResult` (or
  the error) back to the submitting thread;
* :class:`RequestQueue` -- the thread-safe FIFO between front ends and
  the worker, with an eventful "something is waiting" signal and
  front-of-queue push-back (a request that would overflow the batch
  budget goes back unharmed, preserving arrival order);
* :class:`MicroBatcher` -- the worker pool: each worker collects up to
  ``max_batch`` rows, waiting at most ``max_wait_ms`` after the first
  request arrives, runs one engine step, and scatters the rows back.
  With ``workers > 1`` several engine steps run concurrently against the
  *same* queue -- the recurrence is row-independent and the kernels
  release the GIL, so requests/second scales with cores while every
  per-request result stays bit-identical to a single-shot run (each
  batch is a disjoint slice of the queue; the stats counters are
  lock-protected against concurrent consumers).  All waiting goes
  through an injectable :class:`repro.utils.clock.Clock`, so tests drive
  the batching logic deterministically with a
  :class:`repro.utils.clock.FakeClock` and zero real sleeps
  (:meth:`MicroBatcher.run_once` with ``wait=False``).
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.errors import ServeError, ValidationError
from repro.utils.clock import Clock, SystemClock


class BatchController(Protocol):
    """What the batcher needs from a feedback controller.

    :class:`repro.serve.controller.AdaptiveBatchController` is the
    shipped implementation; the batcher only relies on this shape, so
    tests can plug in recording doubles.
    """

    def bind(self, batcher: "MicroBatcher") -> None:
        """Called once from ``MicroBatcher.__init__`` with its batcher."""
        ...  # pragma: no cover - protocol

    def observe(
        self,
        *,
        batch_rows: int,
        batch_requests: int,
        queue_wait_s: float,
        service_s: float,
        queue_depth: int,
    ) -> None:
        """One completed batch: shape + latency breakdown + backlog."""
        ...  # pragma: no cover - protocol

    def idle(self, *, queue_depth: int) -> None:
        """A worker found the queue empty and is about to park."""
        ...  # pragma: no cover - protocol


@dataclass
class RequestStats:
    """Per-request serving telemetry, returned alongside every result."""

    queue_wait_s: float = 0.0
    service_s: float = 0.0
    batch_rows: int = 0
    batch_requests: int = 0
    layer_modes: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "queue_wait_s": self.queue_wait_s,
            "service_s": self.service_s,
            "batch_rows": self.batch_rows,
            "batch_requests": self.batch_requests,
            "layer_modes": list(self.layer_modes),
        }


@dataclass
class ServeResult:
    """What one request gets back: its activation rows, its categories
    (request-local row indices with any positive output, the Graph
    Challenge convention), and the stats of the batch it rode in."""

    activations: np.ndarray
    categories: np.ndarray
    stats: RequestStats


class PendingRequest:
    """A submitted request waiting for (or holding) its result.

    The submitting thread blocks in :meth:`result`; the batcher worker
    completes the request exactly once via :meth:`_complete` /
    :meth:`_fail`.  ``request_id`` is caller-chosen (the wire protocol
    echoes it) with a process-unique fallback.
    """

    _ids = itertools.count(1)

    def __init__(self, rows: np.ndarray, request_id: str | None, enqueued_at: float) -> None:
        self.rows = rows
        self.request_id = request_id if request_id is not None else f"req-{next(self._ids)}"
        self.enqueued_at = enqueued_at
        self._event = threading.Event()
        self._result: ServeResult | None = None
        self._error: BaseException | None = None
        self._lock = threading.Lock()
        self._callbacks: list = []

    @property
    def num_rows(self) -> int:
        return int(self.rows.shape[0])

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ServeResult:
        """Block until the batcher completes this request; re-raise its error."""
        if not self._event.wait(timeout):
            raise ServeError(
                f"request {self.request_id} not completed within {timeout}s"
            )
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result

    def add_done_callback(self, callback) -> None:
        """Run ``callback(self)`` once completed (immediately if already done).

        Callbacks fire on the *completing* thread (the batcher worker);
        async front ends use this to bridge completion into an event loop
        (``loop.call_soon_threadsafe``) instead of parking a blocking
        wait per request.
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    # worker side ------------------------------------------------------- #
    def _finish(self) -> None:
        with self._lock:
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # noqa: BLE001 - callbacks must not kill the worker
                pass

    def _complete(self, result: ServeResult) -> None:
        self._result = result
        self._finish()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._finish()


class RequestQueue:
    """Thread-safe FIFO of :class:`PendingRequest` with an arrival event.

    ``available`` is set whenever the queue is non-empty, so the worker
    can park in ``clock.wait(queue.available, timeout)`` instead of
    polling.  :meth:`push_back` returns an item to the *front* (used when
    the next request does not fit the remaining batch budget), keeping
    arrival order intact.  Closing the queue refuses new work but leaves
    queued requests for the worker to drain.
    """

    def __init__(self) -> None:
        self._items: deque[PendingRequest] = deque()
        self._lock = threading.Lock()
        self._closed = False
        self.available = threading.Event()

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def put(self, item: PendingRequest) -> None:
        with self._lock:
            if self._closed:
                raise ServeError("request queue is closed")
            self._items.append(item)
            self.available.set()

    def push_back(self, item: PendingRequest) -> None:
        """Return ``item`` to the front of the queue (batch-budget overflow)."""
        with self._lock:
            self._items.appendleft(item)
            self.available.set()

    def pop(self) -> PendingRequest | None:
        """Non-blocking pop; ``None`` when empty."""
        with self._lock:
            if not self._items:
                return None
            item = self._items.popleft()
            if not self._items:
                self.available.clear()
            return item

    def close(self) -> None:
        """Refuse new requests; wake any parked worker so it can drain."""
        with self._lock:
            self._closed = True
            # wake waiters even when empty: the worker must observe the
            # close rather than sleep out its full idle timeout
            self.available.set()


def _recent_summary(samples: list[tuple[int, int, float, float]]) -> dict:
    """Percentile summary of recent ``(rows, requests, queue_wait, service)``."""
    if not samples:
        return {"batches": 0}
    rows = np.asarray([s[0] for s in samples], dtype=np.float64)
    waits = np.asarray([s[2] for s in samples], dtype=np.float64)
    services = np.asarray([s[3] for s in samples], dtype=np.float64)
    return {
        "batches": len(samples),
        "mean_batch_rows": float(rows.mean()),
        "queue_wait_p50_ms": float(np.percentile(waits, 50)) * 1000.0,
        "queue_wait_p99_ms": float(np.percentile(waits, 99)) * 1000.0,
        "service_p50_ms": float(np.percentile(services, 50)) * 1000.0,
        "service_p99_ms": float(np.percentile(services, 99)) * 1000.0,
    }


@dataclass
class EngineStep:
    """What the batcher needs back from one engine step over a stacked batch."""

    activations: np.ndarray
    layer_modes: list[str] = field(default_factory=list)


@dataclass
class BatcherStats:
    """Aggregate batcher counters (served totals and batch-shape telemetry)."""

    requests: int = 0
    rows: int = 0
    batches: int = 0
    failures: int = 0
    max_batch_rows: int = 0
    total_queue_wait_s: float = 0.0
    total_service_s: float = 0.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "rows": self.rows,
            "batches": self.batches,
            "failures": self.failures,
            "max_batch_rows": self.max_batch_rows,
            "mean_batch_rows": self.rows / self.batches if self.batches else 0.0,
            # queue-wait vs compute breakdown: totals *and* means, so a
            # stats reader (the adaptive controller, the saturation sweep)
            # can attribute end-to-end latency to queueing or the kernels
            "total_queue_wait_s": self.total_queue_wait_s,
            "total_service_s": self.total_service_s,
            "mean_queue_wait_s": (
                self.total_queue_wait_s / self.requests if self.requests else 0.0
            ),
            "mean_service_s": (
                self.total_service_s / self.requests if self.requests else 0.0
            ),
        }


class MicroBatcher:
    """Coalesce pending requests into one engine step per micro-batch.

    Parameters
    ----------
    step:
        The engine hook: ``step(stacked_rows) -> EngineStep`` runs the
        full layer recurrence over a ``(rows, neurons)`` float64 matrix
        (see :meth:`repro.serve.engine.ServingEngine.step`).
    max_batch:
        Row budget per engine step.  A batch closes as soon as adding the
        next queued request would exceed it (that request waits,
        unharmed, at the front of the queue); a single request larger
        than the budget runs alone -- requests are never split.
    max_wait_ms:
        How long the worker holds an *open* batch waiting for more rows
        after the first request arrived.  ``0`` disables coalescing
        waits: every collection takes whatever is already queued.
    clock:
        Time source for all waits (default :class:`SystemClock`); tests
        pass a :class:`repro.utils.clock.FakeClock` and drive
        :meth:`run_once` directly for fully deterministic batching.
    workers:
        How many worker threads :meth:`start` launches.  Each loops
        :meth:`run_once` against the shared queue, so up to ``workers``
        engine steps run concurrently (the kernels release the GIL).
        Per-request results are unaffected: every batch is a disjoint
        slice of the queue and the recurrence is row-independent.
    controller:
        Optional feedback controller (duck-typed like
        :class:`repro.serve.controller.AdaptiveBatchController`): after
        every batch the executing worker calls
        ``controller.observe(...)`` with the batch shape and latency
        breakdown, and idle workers call ``controller.idle(...)``; the
        controller may retune :attr:`max_batch` / :attr:`max_wait_s` in
        response.

    The worker threads (:meth:`start`) loop :meth:`run_once`; embedders
    that want the batching semantics without a thread (property tests,
    benchmarks) call :meth:`run_once` themselves.
    """

    #: Batches whose shape/latency samples feed the live distributions
    #: (adaptive controller input, ``stats`` percentiles).
    RECENT_WINDOW = 256

    def __init__(
        self,
        step: Callable[[np.ndarray], EngineStep],
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        clock: Clock | None = None,
        idle_wait_s: float = 0.05,
        workers: int = 1,
        controller: "BatchController | None" = None,
    ) -> None:
        if max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_ms < 0:
            raise ValidationError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if idle_wait_s <= 0:
            raise ValidationError(f"idle_wait_s must be > 0, got {idle_wait_s}")
        if workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        self._step = step
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_ms) / 1000.0
        self.idle_wait_s = float(idle_wait_s)
        self.workers = int(workers)
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.queue = RequestQueue()
        self.stats = BatcherStats()
        self._stats_lock = threading.Lock()
        self._recent: deque[tuple[int, int, float, float]] = deque(
            maxlen=self.RECENT_WINDOW
        )
        self._threads: list[threading.Thread] = []
        self._live_workers = 0
        self._stopped = threading.Event()
        self._controller = controller
        if controller is not None:
            controller.bind(self)

    # ------------------------------------------------------------------ #
    # submission (front-end side)
    # ------------------------------------------------------------------ #
    def submit(self, rows: np.ndarray, *, request_id: str | None = None) -> PendingRequest:
        """Enqueue one request of ``(k, neurons)`` rows; returns its handle."""
        rows = np.asarray(rows, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[0] < 1:
            raise ValidationError(
                f"a request needs a 2-D (rows >= 1, neurons) matrix, got shape {rows.shape}"
            )
        pending = PendingRequest(rows, request_id, self.clock.monotonic())
        self.queue.put(pending)
        return pending

    # ------------------------------------------------------------------ #
    # the batching loop (worker side)
    # ------------------------------------------------------------------ #
    def _collect(self, *, wait: bool) -> list[PendingRequest] | None:
        """Gather the next micro-batch.

        Returns ``None`` when there is nothing to do: immediately with
        ``wait=False``, or -- for the worker loop -- once the queue is
        closed and drained.  With ``wait=True`` an empty open queue parks
        on the arrival event in ``idle_wait_s`` slices.
        """
        while True:
            first = self.queue.pop()
            if first is not None:
                break
            if self.queue.closed or not wait:
                return None
            if self._controller is not None:
                self._controller.idle(queue_depth=0)
            self.clock.wait(self.queue.available, self.idle_wait_s)
        batch = [first]
        rows = first.num_rows
        deadline = self.clock.monotonic() + self.max_wait_s
        while rows < self.max_batch:
            item = self.queue.pop()
            if item is None:
                if self.queue.closed:
                    break
                remaining = deadline - self.clock.monotonic()
                if remaining <= 0:
                    break
                self.clock.wait(self.queue.available, remaining)
                continue
            if rows + item.num_rows > self.max_batch:
                self.queue.push_back(item)
                break
            batch.append(item)
            rows += item.num_rows
        return batch

    def _execute(self, batch: list[PendingRequest]) -> None:
        """One engine step over the stacked batch, scattered back per request."""
        started = self.clock.monotonic()
        total_rows = sum(item.num_rows for item in batch)
        try:
            # stacking happens inside the failure guard: requests with
            # mismatched widths make np.concatenate itself raise, and that
            # must fail the batch, not kill the worker thread
            stacked = (
                batch[0].rows
                if len(batch) == 1
                else np.concatenate([item.rows for item in batch], axis=0)
            )
            outcome = self._step(stacked)
        except BaseException as exc:  # noqa: BLE001 - relayed per request
            with self._stats_lock:
                self.stats.failures += len(batch)
            for item in batch:
                item._fail(exc)
            return
        service_s = self.clock.monotonic() - started
        batch_queue_wait_s = sum(
            max(0.0, started - item.enqueued_at) for item in batch
        )
        # aggregate counters update BEFORE any request completes: a client
        # that just received its response must never read a stats snapshot
        # that does not count it yet.  With multiple workers this lock is
        # also what keeps the counters exact under concurrent batches.
        with self._stats_lock:
            self.stats.requests += len(batch)
            self.stats.rows += total_rows
            self.stats.batches += 1
            self.stats.max_batch_rows = max(self.stats.max_batch_rows, total_rows)
            self.stats.total_service_s += service_s * len(batch)
            self.stats.total_queue_wait_s += batch_queue_wait_s
            self._recent.append(
                (total_rows, len(batch), batch_queue_wait_s / len(batch), service_s)
            )
        if self._controller is not None:
            self._controller.observe(
                batch_rows=total_rows,
                batch_requests=len(batch),
                queue_wait_s=batch_queue_wait_s / len(batch),
                service_s=service_s,
                queue_depth=len(self.queue),
            )
        offset = 0
        for item in batch:
            rows = outcome.activations[offset : offset + item.num_rows]
            offset += item.num_rows
            stats = RequestStats(
                queue_wait_s=max(0.0, started - item.enqueued_at),
                service_s=service_s,
                batch_rows=total_rows,
                batch_requests=len(batch),
                layer_modes=list(outcome.layer_modes),
            )
            item._complete(
                ServeResult(
                    activations=rows,
                    # non-negative activations: a row categorizes iff any
                    # entry is positive, same as ActivationBatch.categories
                    categories=np.flatnonzero(rows.sum(axis=1) > 0),
                    stats=stats,
                )
            )

    def stats_dict(self) -> dict:
        """A consistent snapshot of the aggregate counters.

        Readers on other threads (the ``stats`` op) must come through
        here: workers update several counters per batch under
        ``_stats_lock``, and an unlocked ``stats.as_dict()`` could see a
        torn in-between state (rows counted, batches not yet).  Besides
        the lifetime totals the snapshot carries the *recent-window*
        latency distribution (per-batch queue-wait and service-time
        percentiles over the last :attr:`RECENT_WINDOW` batches) -- the
        signal the adaptive controller and the saturation sweep read to
        attribute latency to queueing vs compute."""
        with self._stats_lock:
            snapshot = self.stats.as_dict()
            recent = list(self._recent)
        snapshot["workers"] = self.workers
        snapshot["max_batch"] = self.max_batch
        snapshot["max_wait_ms"] = self.max_wait_s * 1000.0
        snapshot["recent"] = _recent_summary(recent)
        return snapshot

    def run_once(self, *, wait: bool = True) -> bool:
        """Collect and execute one micro-batch.

        Returns ``False`` when nothing was processed: the queue was empty
        (``wait=False``) or closed and fully drained (the worker's exit
        condition).  This is the whole batching loop body -- the worker
        thread is just ``while run_once(): pass`` -- so deterministic
        tests can drive it directly.
        """
        batch = self._collect(wait=wait)
        if batch is None:
            return False
        self._execute(batch)
        return True

    def _worker(self) -> None:
        try:
            while self.run_once(wait=True):
                pass
        finally:
            # the LAST worker out flips the stopped event
            with self._stats_lock:
                self._live_workers -= 1
                if self._live_workers == 0:
                    self._stopped.set()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "MicroBatcher":
        """Launch the :attr:`workers` worker threads."""
        if self._threads:
            raise ServeError("batcher already started")
        self._live_workers = self.workers
        self._threads = [
            threading.Thread(
                target=self._worker, daemon=True, name=f"micro-batcher-{i}"
            )
            for i in range(self.workers)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def close(self, *, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting requests; drain (default) or fail what is queued.

        With ``drain=True`` every already-queued request is still served
        before the workers exit -- the clean-shutdown guarantee the
        stress tests pin.  With ``drain=False`` queued requests fail
        promptly with :class:`ServeError`.
        """
        self.queue.close()
        if not drain:
            while True:
                item = self.queue.pop()
                if item is None:
                    break
                item._fail(ServeError("batcher shut down before the request ran"))
        if self._threads:
            for thread in self._threads:
                thread.join(timeout=timeout)
                if thread.is_alive():  # pragma: no cover - defensive
                    raise ServeError(
                        f"batcher worker did not stop within {timeout}s"
                    )
            self._threads = []
        else:
            # no worker threads: drain in-line so embedded users get the
            # same "close completes the queue" semantics
            while self.run_once(wait=False):
                pass

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
