"""Process replicas behind a self-healing asyncio load balancer.

Worker threads (:class:`repro.serve.batcher.MicroBatcher` with
``workers > 1``) scale one engine across cores until the engine
process itself saturates -- the Python layer loop, protocol parsing,
and the event loop all share one interpreter.  The next rung is
*shared-nothing process replicas*: K independent server processes, each
loading its own copy of the network via the existing
:class:`repro.challenge.pipeline.LoadStage` path (warm starts
included), behind a front-end balancer that speaks the exact same
newline-JSON protocol, so clients (and ``bench_serve``) cannot tell a
fleet from a single engine.

Pieces:

* :class:`ReplicaProcess` -- one ``repro challenge serve`` subprocess:
  spawned with ``--port 0 --port-file``, readiness = the atomically
  written port file appearing;
* :class:`ReplicaFleet` -- K replicas as a unit: start, wait-ready,
  graceful stop, and :meth:`ReplicaFleet.restart` -- replace one
  replica's process with a fresh one (new port file generation) for
  crash recovery and rolling warm restarts;
* :class:`LoadBalancer` -- the asyncio front end: routes each ``infer``
  to the healthy replica with the fewest outstanding requests (over a
  per-replica connection pool; one pooled connection per in-flight
  request, because a replica serializes requests per connection),
  answers ``ping`` locally, forwards ``meta`` to replica 0 (plus fleet
  fields), *aggregates* ``stats`` across replicas (fleet totals at the
  top level -- same shape as a single server's -- with per-replica
  snapshots under ``"replicas"``, each carrying its rotation
  ``"state"``), and broadcasts ``shutdown`` so every replica drains
  before the balancer answers and exits;
* :class:`FleetSupervisor` -- the watcher thread that makes the fleet
  self-healing: restarts crashed replicas (bounded by ``max_restarts``,
  back into rotation only after a readiness ping) and drives
  :meth:`FleetSupervisor.drain` / rolling restarts;
* :func:`serve_fleet_in_background` / :func:`serve_balancer_in_background`
  -- fleet + balancer (or a bare balancer over externally managed
  backends) on a background thread, the embeddings used by tests and
  benchmarks.

Resilience (see :mod:`repro.serve.health` for the decision logic): the
balancer actively pings every replica on the health interval and ejects
one from rotation after ``fail_threshold`` consecutive failures -- an
ejected replica keeps being probed and one successful ping re-admits it.
An ``infer`` lost to a dead connection is retried on another healthy
replica with capped exponential backoff (safe because the recurrence is
stateless per request), so clients see exactly-once results instead of
connection resets.

Request lines are forwarded *verbatim* (bytes in, bytes out), so the
fleet inherits the single-server bit-identity guarantee: whatever
replica a request lands on runs the same row-independent recurrence.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.errors import ServeError, ValidationError
from repro.serve import protocol
from repro.serve.health import (
    STATE_EJECTED,
    HealthMonitor,
    HealthPolicy,
)
from repro.utils.clock import Clock, SystemClock

# connection-level failures that justify retrying an infer on another
# replica: the request never produced a client-visible response, and the
# recurrence is stateless per request, so a re-run is bit-identical
_RETRYABLE = (ServeError, OSError, asyncio.TimeoutError)


def _python_env() -> dict:
    """Subprocess env whose ``PYTHONPATH`` can import :mod:`repro`.

    Replicas must import the same source tree as the parent even when
    the package is not installed (tests run with pytest's
    ``pythonpath = ["src"]``, which subprocesses do not inherit).
    """
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


class ReplicaProcess:
    """One shared-nothing ``repro challenge serve`` subprocess."""

    def __init__(self, argv: list[str], port_file: Path) -> None:
        self.argv = argv
        self.port_file = port_file
        self.process: subprocess.Popen | None = None
        self.address: tuple[str, int] | None = None

    def start(self) -> "ReplicaProcess":
        self.process = subprocess.Popen(
            self.argv,
            env=_python_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        return self

    def wait_ready(self, timeout_s: float = 60.0) -> tuple[str, int]:
        """Block until the replica wrote its port file; returns its address."""
        assert self.process is not None, "start() the replica first"
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.port_file.exists():
                text = self.port_file.read_text().strip()
                if text:  # written atomically (write-then-rename), so complete
                    host, port = text.split()
                    self.address = (host, int(port))
                    return self.address
            if self.process.poll() is not None:
                stderr = (self.process.stderr.read() or b"").decode(errors="replace")
                raise ServeError(
                    f"replica exited with code {self.process.returncode} before "
                    f"binding its port: {stderr.strip()[-500:]}"
                )
            time.sleep(0.02)
        raise ServeError(f"replica did not become ready within {timeout_s}s")

    @property
    def pid(self) -> int | None:
        return None if self.process is None else self.process.pid

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def stop(self, timeout_s: float = 30.0) -> None:
        """Reap the subprocess, escalating politely (wait, terminate, kill)."""
        if self.process is None:
            return
        try:
            self.process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                self.process.kill()
                self.process.wait(timeout=5.0)
        finally:
            if self.process.stderr is not None:
                self.process.stderr.close()


class ReplicaFleet:
    """K replica processes of one saved network, managed as a unit.

    Each replica slot can be *restarted*: the old process is reaped and
    a fresh one spawned with the same configuration and a new
    generation-suffixed port file (so a stale port file can never be
    mistaken for the new replica's readiness signal).
    """

    def __init__(
        self,
        replicas: int,
        *,
        directory: str | os.PathLike | None = None,
        neurons: int | None = None,
        warm_start: str | os.PathLike | None = None,
        workdir: str | os.PathLike,
        host: str = "127.0.0.1",
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        workers: int | None = None,
        adaptive_batch: bool = False,
        backend: str | None = None,
        activations: str | None = None,
        shards: int | None = None,
    ) -> None:
        if replicas < 1:
            raise ValidationError(f"replicas must be >= 1, got {replicas}")
        if warm_start is None and (directory is None or neurons is None):
            raise ValidationError(
                "a replica fleet needs --dir + --neurons (or --warm-start)"
            )
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.host = host
        self._argv_tail: list[str] = [
            "--max-batch", str(max_batch), "--max-wait-ms", str(max_wait_ms)
        ]
        if warm_start is not None:
            self._argv_tail += ["--warm-start", str(warm_start)]
        else:
            self._argv_tail += ["--dir", str(directory), "--neurons", str(neurons)]
        if workers is not None:
            self._argv_tail += ["--workers", str(workers)]
        if adaptive_batch:
            self._argv_tail += ["--adaptive-batch"]
        if backend is not None:
            self._argv_tail += ["--backend", backend]
        if activations is not None:
            self._argv_tail += ["--activations", activations]
        if shards is not None:
            self._argv_tail += ["--shards", str(shards)]
        self.generations = [0] * replicas
        self.restarted = 0
        self.replicas: list[ReplicaProcess] = [
            self._make_replica(index) for index in range(replicas)
        ]

    def _make_replica(self, index: int) -> ReplicaProcess:
        port_file = self.workdir / (
            f"replica-{index}-g{self.generations[index]}.port"
        )
        argv = [sys.executable, "-m", "repro.cli", "challenge", "serve",
                "--host", self.host, "--port", "0",
                "--port-file", str(port_file), *self._argv_tail]
        return ReplicaProcess(argv, port_file)

    def start(self, timeout_s: float = 120.0) -> list[tuple[str, int]]:
        """Launch every replica (concurrently) and wait for all addresses."""
        for replica in self.replicas:
            replica.start()
        try:
            return [replica.wait_ready(timeout_s) for replica in self.replicas]
        except ServeError:
            self.terminate()
            raise

    def restart(self, index: int, timeout_s: float = 120.0) -> tuple[str, int]:
        """Replace replica ``index`` with a fresh process; returns its address.

        The old process (crashed, or deliberately shut down for a warm
        restart) is reaped first -- terminated if still running -- so a
        restart never leaks a subprocess.
        """
        if not 0 <= index < len(self.replicas):
            raise ValidationError(
                f"replica index {index} out of range 0..{len(self.replicas) - 1}"
            )
        old = self.replicas[index]
        if old.process is not None:
            if old.alive():
                old.process.terminate()
            old.stop(timeout_s=10.0)
        self.generations[index] += 1
        replica = self._make_replica(index)
        self.replicas[index] = replica
        replica.start()
        address = replica.wait_ready(timeout_s)
        self.restarted += 1
        return address

    @property
    def addresses(self) -> list[tuple[str, int]]:
        return [r.address for r in self.replicas if r.address is not None]

    @property
    def pids(self) -> list[int | None]:
        return [r.pid for r in self.replicas]

    def alive_count(self) -> int:
        return sum(1 for r in self.replicas if r.alive())

    def stop(self, timeout_s: float = 30.0) -> None:
        """Reap replicas (they exit on their own after a shutdown broadcast)."""
        for replica in self.replicas:
            replica.stop(timeout_s)

    def terminate(self) -> None:
        """Hard stop: terminate whatever is still running (error paths)."""
        for replica in self.replicas:
            if replica.alive():
                replica.process.terminate()
        self.stop(timeout_s=5.0)

    def __enter__(self) -> "ReplicaFleet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.terminate()


def aggregate_stats(per_replica: list[dict]) -> dict:
    """Fleet totals in the same shape as one server's ``stats`` payload.

    Counters sum, ``max_batch_rows`` takes the max, and the means are
    re-derived from the summed totals (a mean of means would weight a
    cold replica the same as a saturated one).
    """
    summed = ("requests", "rows", "batches", "failures", "pending",
              "connections_opened", "protocol_errors", "workers",
              "total_queue_wait_s", "total_service_s")
    fleet: dict[str, Any] = {key: 0 for key in summed}
    fleet["max_batch_rows"] = 0
    for stats in per_replica:
        for key in summed:
            fleet[key] += stats.get(key, 0)
        fleet["max_batch_rows"] = max(
            fleet["max_batch_rows"], stats.get("max_batch_rows", 0)
        )
    fleet["mean_batch_rows"] = (
        fleet["rows"] / fleet["batches"] if fleet["batches"] else 0.0
    )
    fleet["mean_queue_wait_s"] = (
        fleet["total_queue_wait_s"] / fleet["requests"] if fleet["requests"] else 0.0
    )
    fleet["mean_service_s"] = (
        fleet["total_service_s"] / fleet["requests"] if fleet["requests"] else 0.0
    )
    return fleet


class LoadBalancer:
    """The fleet front end: one listening socket, K replica backends.

    Speaks the single-server protocol verbatim.  ``infer`` lines are
    routed whole (bytes untouched) to the *healthy* replica with the
    fewest outstanding requests -- the cheapest balancing signal that
    still tracks real backend load, since a slow replica accumulates
    outstanding requests and stops being picked.

    Health checking (on by default): a background task pings every
    replica each ``health.interval_s`` through the injectable clock's
    timestamps; ``health.fail_threshold`` consecutive failures -- ping
    *or* in-flight -- eject a replica from rotation, and one successful
    ping re-admits it.  A lost in-flight ``infer`` is retried on another
    healthy replica under ``health.retry_delays()`` backoff.  The
    :class:`FleetSupervisor` (when attached) additionally restarts
    crashed replica processes and re-points the slot at the new address
    via :meth:`admit_replica`.
    """

    def __init__(
        self,
        addresses: list[tuple[str, int]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 120.0,
        health: HealthPolicy | None = None,
        health_checks: bool = True,
        clock: Clock | None = None,
    ) -> None:
        if not addresses:
            raise ValidationError("a load balancer needs at least one replica")
        self.replica_addresses = [tuple(address) for address in addresses]
        self.host = host
        self.port = int(port)
        self.request_timeout_s = float(request_timeout_s)
        self.clock: Clock = clock if clock is not None else SystemClock()
        self.monitor = HealthMonitor(
            len(addresses), policy=health or HealthPolicy(), clock=self.clock
        )
        self.health_checks = bool(health_checks)
        self.supervisor: "FleetSupervisor | None" = None
        self.address: tuple[str, int] | None = None
        self.connections_opened = 0
        self.protocol_errors = 0
        self.retries = 0
        self.restarts = 0
        self.routed = [0] * len(addresses)
        self._outstanding = [0] * len(addresses)
        # guards cross-thread state: addresses, pool generations, restart
        # counter (the supervisor thread mutates these around the event
        # loop's back; stats snapshots copy under the same lock)
        self._lock = threading.Lock()
        self._generations = [0] * len(addresses)
        self._pools: list[
            list[tuple[int, asyncio.StreamReader, asyncio.StreamWriter]]
        ] = [[] for _ in addresses]
        self._shutdown: asyncio.Event | None = None
        self._handlers: set[asyncio.Task] = set()
        self._health_task: asyncio.Task | None = None
        self._inflight = 0
        self._idle: asyncio.Event | None = None

    # ------------------------------------------------------------------ #
    # replica connections
    # ------------------------------------------------------------------ #
    def outstanding(self, index: int) -> int:
        """In-flight forwards to replica ``index`` (drain watches this)."""
        return self._outstanding[index]

    async def _acquire(
        self, index: int
    ) -> tuple[int, asyncio.StreamReader, asyncio.StreamWriter]:
        with self._lock:
            generation = self._generations[index]
            pool = self._pools[index]
            stale: list[asyncio.StreamWriter] = []
            entry = None
            while pool:
                gen, reader, writer = pool.pop()
                if gen == generation:
                    entry = (gen, reader, writer)
                    break
                stale.append(writer)  # replica was replaced: discard
            address = self.replica_addresses[index]
        for writer in stale:
            writer.close()
        if entry is not None:
            return entry
        reader, writer = await asyncio.open_connection(
            *address, limit=protocol.MAX_LINE_BYTES
        )
        return generation, reader, writer

    def _release(
        self,
        index: int,
        generation: int,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        with self._lock:
            if generation == self._generations[index]:
                self._pools[index].append((generation, reader, writer))
                return
        writer.close()  # the slot moved on while this request was in flight

    async def _forward(self, index: int, line: bytes) -> dict:
        """One request line to replica ``index``; its decoded response.

        Connection-level failures count as health evidence against the
        replica (consecutive failures eject it); successes reset the
        failure streak.
        """
        self._outstanding[index] += 1
        self.routed[index] += 1
        try:
            try:
                generation, reader, writer = await self._acquire(index)
                try:
                    writer.write(line if line.endswith(b"\n") else line + b"\n")
                    await writer.drain()
                    response = await asyncio.wait_for(
                        reader.readline(), timeout=self.request_timeout_s
                    )
                    if not response:
                        raise ServeError(f"replica {index} closed the connection")
                    decoded = protocol.decode(response)
                except BaseException:
                    writer.close()
                    raise
                self._release(index, generation, reader, writer)
            except _RETRYABLE as exc:
                self.monitor.record_failure(index, error=str(exc))
                raise
            self.monitor.record_success(index)
            return decoded
        finally:
            self._outstanding[index] -= 1

    def _pick_replica(self, exclude: frozenset | set = frozenset()) -> int:
        """Least-outstanding routing over the replicas still in rotation.

        ``exclude`` holds replicas that already failed *this* request;
        they are avoided so a retry actually fails over, unless that
        would leave no candidate at all.
        """
        rotation = self.monitor.in_rotation()
        if not rotation:
            raise ServeError("no healthy replicas in rotation")
        candidates = [i for i in rotation if i not in exclude] or rotation
        return min(candidates, key=self._outstanding.__getitem__)

    async def _forward_with_retry(self, line: bytes, op: str) -> dict:
        """Route a stateless request; recover in-flight losses elsewhere.

        Retrying is safe -- and keeps the client contract exactly-once --
        because a failed forward never produced a response line, and the
        ops routed here (``infer``, ``meta``) are stateless per request:
        the retried run returns bit-identical rows.  Backoff is the
        policy's capped exponential schedule; each failed replica is
        excluded from the next pick so a retry fails over instead of
        re-dialing the dead connection.
        """
        delays = self.monitor.policy.retry_delays()
        exclude: set[int] = set()
        last_error: BaseException | None = None
        for attempt in range(len(delays) + 1):
            if attempt > 0:
                self.retries += 1
                await asyncio.sleep(delays[attempt - 1])
            try:
                index = self._pick_replica(exclude)
            except ServeError as exc:
                # nothing routable right now: back off and re-check --
                # the supervisor may be restarting a crashed replica
                last_error = exc
                exclude.clear()
                continue
            try:
                return await self._forward(index, line)
            except _RETRYABLE as exc:
                last_error = exc
                exclude.add(index)
        raise ServeError(
            f"{op} failed after {len(delays) + 1} attempts across the fleet: "
            f"{last_error}"
        )

    async def _broadcast(
        self, message: dict, indices: list[int] | None = None
    ) -> list[dict]:
        """The same request to the given replicas (default: all), concurrently."""
        if indices is None:
            indices = list(range(len(self.replica_addresses)))
        results = await asyncio.gather(
            *(self._forward(i, protocol.encode(message)) for i in indices),
            return_exceptions=True,
        )
        out: list[dict] = []
        for index, result in zip(indices, results):
            if isinstance(result, BaseException):
                out.append({"ok": False, "error": f"replica {index}: {result}"})
            else:
                out.append(result)
        return out

    # ------------------------------------------------------------------ #
    # health checking
    # ------------------------------------------------------------------ #
    async def _ping_replica(self, index: int) -> bool:
        """One health probe on a dedicated connection; True if it answered."""
        timeout = self.monitor.policy.ping_timeout_s
        with self._lock:
            address = self.replica_addresses[index]
        writer = None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(*address, limit=protocol.MAX_LINE_BYTES),
                timeout=timeout,
            )
            writer.write(protocol.encode({"op": protocol.OP_PING}))
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=timeout)
            return bool(line) and bool(protocol.decode(line).get("ok"))
        except (ServeError, OSError, asyncio.TimeoutError):
            return False
        finally:
            if writer is not None:
                writer.close()

    async def _health_check_once(self) -> None:
        """Ping every replica due per the policy interval; update rotation.

        Ejected replicas stay on the schedule: their first successful
        ping is the readiness signal that re-admits them (the heal path
        for a replica that was unreachable but never actually died).
        """
        due = self.monitor.due_for_ping()
        if not due:
            return
        results = await asyncio.gather(*(self._ping_replica(i) for i in due))
        for index, ok in zip(due, results):
            if ok:
                self.monitor.record_success(index, ping=True)
            else:
                self.monitor.record_failure(
                    index, ping=True, error="health ping failed"
                )

    async def _health_loop(self) -> None:
        interval = self.monitor.policy.interval_s
        while True:
            await asyncio.sleep(interval)
            await self._health_check_once()

    # ------------------------------------------------------------------ #
    # supervisor hooks (called from the watcher thread)
    # ------------------------------------------------------------------ #
    def eject_replica(self, index: int, *, error: str | None = None) -> None:
        """Force a replica out of rotation (e.g. its process crashed)."""
        self.monitor.eject(index, error=error)

    def admit_replica(
        self, index: int, address: tuple[str, int], *, restarted: bool = False
    ) -> None:
        """(Re-)admit a replica at ``address`` with a clean health slate.

        Bumping the pool generation retires every pooled connection to
        the old process lazily -- the event loop discards them on the
        next acquire/release, so no cross-thread socket teardown.
        """
        with self._lock:
            self.replica_addresses[index] = tuple(address)
            self._generations[index] += 1
            if restarted:
                self.restarts += 1
        self.monitor.admit(index)

    # ------------------------------------------------------------------ #
    # request dispatch
    # ------------------------------------------------------------------ #
    def balancer_stats(self) -> dict:
        with self._lock:
            routed = list(self.routed)
            outstanding = list(self._outstanding)
            retries = self.retries
            restarts = self.restarts
        health = self.monitor.snapshot()
        return {
            "replicas": len(routed),
            "routed": routed,
            "outstanding": outstanding,
            "connections_opened": self.connections_opened,
            "protocol_errors": self.protocol_errors,
            "retries": retries,
            "restarts": restarts,
            "states": self.monitor.states(),
            "health": {
                key: health[key]
                for key in ("pings_ok", "pings_failed", "ejections", "admissions")
            },
        }

    async def _dispatch(self, line: bytes) -> tuple[dict, bool]:
        request_id: Any = None
        try:
            message = protocol.decode(line)
            request_id = message.get("id")
            op = message.get("op")
            if op == protocol.OP_PING:
                return {"id": request_id, "ok": True, "op": "pong"}, False
            if op == protocol.OP_INFER:
                response = await self._forward_with_retry(line, "infer")
                return response, False
            if op == protocol.OP_META:
                meta = await self._forward_with_retry(
                    protocol.encode({"op": protocol.OP_META}), "meta"
                )
                meta.update(
                    id=request_id,
                    replicas=len(self.replica_addresses),
                    fleet=True,
                )
                return meta, False
            if op == protocol.OP_STATS:
                # snapshot the rotation *before* awaiting anything: an
                # ejection (health task) or restart (supervisor thread)
                # mid-aggregation must not shift which replica a snapshot
                # belongs to, or tear the states list out from under us
                states = self.monitor.states()
                queried = [
                    i for i, state in enumerate(states) if state != STATE_EJECTED
                ]
                snapshots = await self._broadcast(
                    {"op": protocol.OP_STATS}, indices=queried
                )
                by_index = dict(zip(queried, snapshots))
                per_replica: list[dict] = []
                for index, state in enumerate(states):
                    snap = by_index.get(index)
                    if snap is not None and snap.get("ok"):
                        entry = {
                            k: v for k, v in snap.items() if k not in ("id", "ok")
                        }
                    else:
                        entry = {} if snap is None else {"error": snap.get("error")}
                    entry["state"] = state
                    per_replica.append(entry)
                fleet = aggregate_stats(
                    [entry for entry in per_replica if "requests" in entry]
                )
                return {
                    "id": request_id,
                    "ok": True,
                    **fleet,
                    "replicas": per_replica,
                    "balancer": self.balancer_stats(),
                }, False
            if op == protocol.OP_DRAIN:
                return await self._dispatch_drain(message, request_id), False
            if op == protocol.OP_SHUTDOWN:
                # stop the supervisor resurrecting replicas that exit on
                # purpose, then drain: every replica answers its shutdown
                # only once its accepted requests completed, so
                # acknowledging here means the whole fleet is drained
                if self.supervisor is not None:
                    self.supervisor.suspend()
                states = self.monitor.states()
                acks = await self._broadcast({"op": protocol.OP_SHUTDOWN})
                ok = all(
                    ack.get("ok")
                    for state, ack in zip(states, acks)
                    if state != STATE_EJECTED  # a dead replica has nothing to drain
                )
                return {"id": request_id, "ok": ok, "op": "shutdown"}, True
            raise ServeError(
                f"unknown op {op!r} (expected one of {protocol.BALANCER_OPS})"
            )
        except ServeError as exc:
            self.protocol_errors += 1
            return protocol.error_response(request_id, str(exc)), False
        except Exception as exc:  # noqa: BLE001 - a bad request/replica must
            # never take the balancer down
            self.protocol_errors += 1
            return (
                protocol.error_response(request_id, f"balancer error: {exc!r}"),
                False,
            )

    async def _dispatch_drain(self, message: dict, request_id: Any) -> dict:
        """``{"op": "drain", "replica": i}``: warm-restart one replica.

        Runs the supervisor's blocking drain on an executor thread so
        the event loop keeps serving traffic to the rest of the fleet
        while the drained replica finishes its outstanding work and
        restarts.  Answers once the replacement is back in rotation.
        """
        if self.supervisor is None:
            raise ServeError(
                "drain requires a supervised fleet (challenge serve --replicas)"
            )
        index = message.get("replica")
        if not isinstance(index, int) or isinstance(index, bool):
            raise ServeError("drain needs an integer 'replica' index")
        if not 0 <= index < len(self.replica_addresses):
            raise ServeError(
                f"replica index {index} out of range "
                f"0..{len(self.replica_addresses) - 1}"
            )
        loop = asyncio.get_running_loop()
        address = await loop.run_in_executor(None, self.supervisor.drain, index)
        return {
            "id": request_id,
            "ok": True,
            "op": "drain",
            "replica": index,
            "address": list(address),
        }

    # ------------------------------------------------------------------ #
    # connection handling (mirrors ServeApp: one line in, one line out)
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.connections_opened += 1
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.protocol_errors += 1
                    writer.write(protocol.encode(
                        protocol.error_response(None, "protocol line too long")
                    ))
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                # count the dispatch-to-response window so shutdown can
                # wait for in-flight forwards before reaping connections
                assert self._idle is not None
                self._inflight += 1
                self._idle.clear()
                try:
                    response, shutdown = await self._dispatch(line)
                    writer.write(protocol.encode(response))
                    await writer.drain()
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                if shutdown:
                    assert self._shutdown is not None
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _close_pools(self) -> None:
        with self._lock:
            parked = [entry for pool in self._pools for entry in pool]
            for pool in self._pools:
                pool.clear()
        for _, _, writer in parked:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _main(
        self, on_ready: Callable[[tuple[str, int]], None] | None = None
    ) -> None:
        self._shutdown = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=protocol.MAX_LINE_BYTES
        )
        sockname = server.sockets[0].getsockname()
        self.address = (str(sockname[0]), int(sockname[1]))
        if self.health_checks:
            self._health_task = asyncio.ensure_future(self._health_loop())
        if on_ready is not None:
            on_ready(self.address)
        try:
            async with server:
                await self._shutdown.wait()
        finally:
            if self._health_task is not None:
                self._health_task.cancel()
                try:
                    await self._health_task
                except asyncio.CancelledError:
                    pass
                self._health_task = None
            # let every in-flight forward write its response before the
            # connections still parked on readline are reaped
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.request_timeout_s
                )
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
            for handler in list(self._handlers):
                if handler is not asyncio.current_task():
                    handler.cancel()
            if self._handlers:
                await asyncio.gather(*self._handlers, return_exceptions=True)
            await self._close_pools()

    def run(self, on_ready: Callable[[tuple[str, int]], None] | None = None) -> None:
        """Blocking entry point (``repro challenge serve --replicas K``)."""
        try:
            asyncio.run(self._main(on_ready))
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass


class FleetSupervisor:
    """The self-healing half of the fleet: watch, restart, drain.

    A daemon thread polls replica subprocess liveness.  A crashed
    replica is ejected from the balancer's rotation immediately and --
    while its crash-restart budget (``max_restarts`` per replica) lasts
    -- replaced with a fresh process, which re-enters rotation only
    after answering a readiness ping.  :meth:`drain` is the deliberate
    counterpart: stop routing to a replica, let its outstanding work
    finish, shut it down gracefully, and warm-restart it --
    :meth:`rolling_restart` walks the whole fleet that way with zero
    dropped requests.
    """

    def __init__(
        self,
        fleet: ReplicaFleet,
        balancer: LoadBalancer,
        *,
        max_restarts: int = 2,
        poll_interval_s: float = 0.2,
        restart_timeout_s: float = 120.0,
    ) -> None:
        if max_restarts < 0:
            raise ValidationError(f"max_restarts must be >= 0, got {max_restarts}")
        if poll_interval_s <= 0:
            raise ValidationError(
                f"poll_interval_s must be > 0, got {poll_interval_s}"
            )
        self.fleet = fleet
        self.balancer = balancer
        self.max_restarts = int(max_restarts)
        self.poll_interval_s = float(poll_interval_s)
        self.restart_timeout_s = float(restart_timeout_s)
        count = len(fleet.replicas)
        self.crash_restarts = [0] * count
        self.gave_up = [False] * count
        self._busy = [False] * count
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._suspended = threading.Event()
        self._thread: threading.Thread | None = None
        balancer.supervisor = self

    # ------------------------------------------------------------------ #
    def start(self) -> "FleetSupervisor":
        self._thread = threading.Thread(
            target=self._watch, daemon=True, name="fleet-supervisor"
        )
        self._thread.start()
        return self

    def suspend(self) -> None:
        """Stop reacting to crashes (the fleet is shutting down on purpose)."""
        self._suspended.set()

    def stop(self, timeout_s: float = 30.0) -> None:
        self.suspend()
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            if self._thread.is_alive():  # pragma: no cover - defensive
                raise ServeError(f"fleet supervisor did not stop within {timeout_s}s")

    # ------------------------------------------------------------------ #
    def _watch(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            if self._suspended.is_set():
                continue
            for index in range(len(self.fleet.replicas)):
                with self._lock:
                    if self._busy[index] or self.gave_up[index]:
                        continue
                    replica = self.fleet.replicas[index]
                    if replica.process is None or replica.alive():
                        continue
                    self._busy[index] = True
                try:
                    self._handle_crash(index)
                finally:
                    with self._lock:
                        self._busy[index] = False

    def _handle_crash(self, index: int) -> None:
        self.balancer.eject_replica(
            index, error="replica process exited unexpectedly"
        )
        if self.crash_restarts[index] >= self.max_restarts:
            self.gave_up[index] = True
            return
        self.crash_restarts[index] += 1
        try:
            address = self.fleet.restart(index, timeout_s=self.restart_timeout_s)
            self._readiness_ping(address)
        except (ServeError, OSError) as exc:
            # stays ejected; the next watch pass sees the dead process
            # and spends another restart from the budget
            self.balancer.eject_replica(index, error=f"restart failed: {exc}")
            return
        self.balancer.admit_replica(index, address, restarted=True)

    def _readiness_ping(self, address: tuple[str, int]) -> None:
        """A restarted replica joins rotation only after it answers."""
        from repro.serve.client import ServeClient

        with ServeClient(
            *address, timeout_s=self.restart_timeout_s
        ) as client:
            client.ping()

    # ------------------------------------------------------------------ #
    def drain(self, index: int, *, timeout_s: float | None = None) -> tuple[str, int]:
        """Warm-restart replica ``index`` with zero dropped requests.

        Stops routing (state ``draining``), waits for the replica's
        outstanding forwards to finish, asks the old process to shut
        down gracefully, starts a replacement, and re-admits it after a
        readiness ping.  Returns the new address.
        """
        if not 0 <= index < len(self.fleet.replicas):
            raise ValidationError(
                f"replica index {index} out of range 0..{len(self.fleet.replicas) - 1}"
            )
        if self._suspended.is_set():
            raise ServeError("cannot drain: the fleet is shutting down")
        timeout = self.restart_timeout_s if timeout_s is None else float(timeout_s)
        with self._lock:
            if self._busy[index]:
                raise ServeError(f"replica {index} is already being restarted")
            self._busy[index] = True
        try:
            self.balancer.monitor.drain(index)
            deadline = time.monotonic() + timeout
            while self.balancer.outstanding(index) > 0:
                if time.monotonic() > deadline:
                    raise ServeError(
                        f"replica {index} did not drain within {timeout}s "
                        f"({self.balancer.outstanding(index)} outstanding)"
                    )
                time.sleep(0.01)
            with self.balancer._lock:
                old_address = self.balancer.replica_addresses[index]
            try:
                from repro.serve.client import ServeClient

                with ServeClient(*old_address, timeout_s=30.0) as client:
                    client.shutdown()
            except ServeError:
                pass  # wedged or already dead: restart() terminates it
            address = self.fleet.restart(index, timeout_s=timeout)
            self._readiness_ping(address)
            self.balancer.admit_replica(index, address, restarted=True)
            # a drain is deliberate: clear any crash budget bookkeeping
            self.gave_up[index] = False
            return address
        except BaseException:
            self.balancer.eject_replica(index, error="drain failed")
            raise
        finally:
            with self._lock:
                self._busy[index] = False

    def rolling_restart(self, *, timeout_s: float | None = None) -> list[tuple[str, int]]:
        """Drain + warm-restart every replica, one at a time.

        Sequential on purpose: the rest of the fleet keeps serving while
        each replica cycles, so a client never sees an empty rotation
        and no accepted request is dropped.
        """
        return [
            self.drain(index, timeout_s=timeout_s)
            for index in range(len(self.fleet.replicas))
        ]


# --------------------------------------------------------------------------- #
# background embeddings
# --------------------------------------------------------------------------- #
def _start_balancer_thread(
    balancer: LoadBalancer, startup_timeout_s: float
) -> tuple[threading.Thread, asyncio.AbstractEventLoop]:
    """Run ``balancer._main`` on a daemon thread; return once listening."""
    ready = threading.Event()
    holder: dict[str, Any] = {}

    def _runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        def _on_ready(address: tuple[str, int]) -> None:
            holder["loop"] = loop
            ready.set()

        try:
            loop.run_until_complete(balancer._main(_on_ready))
        except BaseException as exc:  # noqa: BLE001 - relayed to the starter
            holder["error"] = exc
        finally:
            ready.set()
            asyncio.set_event_loop(None)
            loop.close()

    thread = threading.Thread(target=_runner, daemon=True, name="serve-balancer")
    thread.start()
    if not ready.wait(startup_timeout_s):  # pragma: no cover - defensive
        raise ServeError(f"balancer did not start within {startup_timeout_s}s")
    if "error" in holder:
        thread.join(timeout=5.0)
        raise ServeError(
            f"balancer failed to start: {holder['error']}"
        ) from holder["error"]
    if "loop" not in holder:  # pragma: no cover - defensive
        raise ServeError("balancer exited before binding its socket")
    return thread, holder["loop"]


class BalancerHandle:
    """A background balancer over externally managed backends.

    ``stop`` signals the balancer's own shutdown (drains in-flight
    forwards, closes pools) *without* broadcasting ``shutdown`` to the
    backends -- they belong to someone else (the chaos suite fronts one
    live server with fault proxies, for example).
    """

    def __init__(
        self,
        balancer: LoadBalancer,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.balancer = balancer
        self._thread = thread
        self._loop = loop

    @property
    def address(self) -> tuple[str, int]:
        assert self.balancer.address is not None
        return self.balancer.address

    def _signal_shutdown(self) -> None:
        def _signal() -> None:
            if self.balancer._shutdown is not None:
                self.balancer._shutdown.set()

        try:
            self._loop.call_soon_threadsafe(_signal)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def stop(self, timeout: float = 60.0) -> None:
        if self._thread.is_alive():
            self._signal_shutdown()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServeError(f"balancer thread did not stop within {timeout}s")

    def __enter__(self) -> "BalancerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_balancer_in_background(
    addresses: list[tuple[str, int]],
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    startup_timeout_s: float = 30.0,
    **balancer_kwargs: Any,
) -> BalancerHandle:
    """A bare :class:`LoadBalancer` on a background thread.

    For embedding a balancer over backends the caller manages (live
    servers, fault proxies).  Keyword arguments pass through to
    :class:`LoadBalancer` (``health=``, ``health_checks=``, ...).
    """
    balancer = LoadBalancer(addresses, host=host, port=port, **balancer_kwargs)
    thread, loop = _start_balancer_thread(balancer, startup_timeout_s)
    return BalancerHandle(balancer, thread, loop)


class FleetHandle(BalancerHandle):
    """A background fleet: balancer address, live pieces, blocking stop."""

    def __init__(
        self,
        fleet: ReplicaFleet,
        balancer: LoadBalancer,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
        supervisor: FleetSupervisor | None = None,
    ) -> None:
        super().__init__(balancer, thread, loop)
        self.fleet = fleet
        self.supervisor = supervisor

    def drain(self, index: int) -> tuple[str, int]:
        """Warm-restart one replica with zero dropped requests."""
        if self.supervisor is None:
            raise ServeError("drain requires a supervised fleet")
        return self.supervisor.drain(index)

    def rolling_restart(self) -> list[tuple[str, int]]:
        """Drain + warm-restart every replica, one at a time."""
        if self.supervisor is None:
            raise ServeError("rolling restart requires a supervised fleet")
        return self.supervisor.rolling_restart()

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful fleet stop: broadcast shutdown, join everything.

        Stops the supervisor first (so deliberately exiting replicas are
        not resurrected), then uses the wire protocol (a ``shutdown`` op
        through the balancer) so every replica drains; falls back to
        signalling the balancer if the wire path is already gone.
        """
        from repro.serve.client import ServeClient

        if self.supervisor is not None:
            self.supervisor.stop(timeout_s=timeout)
        if self._thread.is_alive():
            try:
                with ServeClient(*self.address, timeout_s=timeout) as client:
                    client.shutdown()
            except ServeError:
                self._signal_shutdown()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServeError(f"balancer thread did not stop within {timeout}s")
        self.fleet.stop(timeout_s=timeout)


def serve_fleet_in_background(
    *,
    replicas: int,
    workdir: str | os.PathLike,
    directory: str | os.PathLike | None = None,
    neurons: int | None = None,
    warm_start: str | os.PathLike | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    workers: int | None = None,
    adaptive_batch: bool = False,
    backend: str | None = None,
    activations: str | None = None,
    startup_timeout_s: float = 120.0,
    health: HealthPolicy | None = None,
    health_checks: bool = True,
    supervise: bool = True,
    max_restarts: int = 2,
    supervisor_poll_s: float = 0.2,
) -> FleetHandle:
    """K replica processes + balancer (+ supervisor) on a background thread.

    The replica analogue of :func:`repro.serve.app.serve_in_background`:
    returns once the balancer is listening (every replica already bound
    and ready), and the handle's context-manager exit drains the whole
    fleet.  ``workdir`` holds the replica port files.  With
    ``supervise=True`` (the default) a :class:`FleetSupervisor` watches
    the subprocesses and restarts crashed replicas up to ``max_restarts``
    times each.
    """
    fleet = ReplicaFleet(
        replicas,
        directory=directory,
        neurons=neurons,
        warm_start=warm_start,
        workdir=workdir,
        host=host,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        workers=workers,
        adaptive_batch=adaptive_batch,
        backend=backend,
        activations=activations,
    )
    addresses = fleet.start(timeout_s=startup_timeout_s)
    balancer = LoadBalancer(
        addresses, host=host, port=port, health=health, health_checks=health_checks
    )
    supervisor: FleetSupervisor | None = None
    if supervise:
        supervisor = FleetSupervisor(
            fleet,
            balancer,
            max_restarts=max_restarts,
            poll_interval_s=supervisor_poll_s,
            restart_timeout_s=startup_timeout_s,
        )
    try:
        thread, loop = _start_balancer_thread(balancer, startup_timeout_s)
    except ServeError:
        fleet.terminate()
        raise
    if supervisor is not None:
        supervisor.start()
    return FleetHandle(fleet, balancer, thread, loop, supervisor=supervisor)
