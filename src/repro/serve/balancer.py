"""Process replicas behind a thin asyncio load balancer.

Worker threads (:class:`repro.serve.batcher.MicroBatcher` with
``workers > 1``) scale one engine across cores until the engine
process itself saturates -- the Python layer loop, protocol parsing,
and the event loop all share one interpreter.  The next rung is
*shared-nothing process replicas*: K independent server processes, each
loading its own copy of the network via the existing
:class:`repro.challenge.pipeline.LoadStage` path (warm starts
included), behind a front-end balancer that speaks the exact same
newline-JSON protocol, so clients (and ``bench_serve``) cannot tell a
fleet from a single engine.

Pieces:

* :class:`ReplicaProcess` -- one ``repro challenge serve`` subprocess:
  spawned with ``--port 0 --port-file``, readiness = the atomically
  written port file appearing;
* :class:`ReplicaFleet` -- K replicas as a unit: start, wait-ready,
  graceful stop (shutdown op first, terminate as the fallback);
* :class:`LoadBalancer` -- the asyncio front end: routes each ``infer``
  to the replica with the fewest outstanding requests (over a per-replica
  connection pool; one pooled connection per in-flight request, because a
  replica serializes requests per connection), answers ``ping`` locally,
  forwards ``meta`` to replica 0 (plus fleet fields), *aggregates*
  ``stats`` across replicas (fleet totals at the top level -- same shape
  as a single server's -- with per-replica snapshots under
  ``"replicas"``), and broadcasts ``shutdown`` so every replica drains
  before the balancer answers and exits;
* :func:`serve_fleet_in_background` -- fleet + balancer on a background
  thread, the embedding used by tests and benchmarks.

Request lines are forwarded *verbatim* (bytes in, bytes out), so the
fleet inherits the single-server bit-identity guarantee: whatever
replica a request lands on runs the same row-independent recurrence.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable

from repro.errors import ServeError, ValidationError
from repro.serve import protocol


def _python_env() -> dict:
    """Subprocess env whose ``PYTHONPATH`` can import :mod:`repro`.

    Replicas must import the same source tree as the parent even when
    the package is not installed (tests run with pytest's
    ``pythonpath = ["src"]``, which subprocesses do not inherit).
    """
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = src if not existing else src + os.pathsep + existing
    return env


class ReplicaProcess:
    """One shared-nothing ``repro challenge serve`` subprocess."""

    def __init__(self, argv: list[str], port_file: Path) -> None:
        self.argv = argv
        self.port_file = port_file
        self.process: subprocess.Popen | None = None
        self.address: tuple[str, int] | None = None

    def start(self) -> "ReplicaProcess":
        self.process = subprocess.Popen(
            self.argv,
            env=_python_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        return self

    def wait_ready(self, timeout_s: float = 60.0) -> tuple[str, int]:
        """Block until the replica wrote its port file; returns its address."""
        assert self.process is not None, "start() the replica first"
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            if self.port_file.exists():
                text = self.port_file.read_text().strip()
                if text:  # written atomically (write-then-rename), so complete
                    host, port = text.split()
                    self.address = (host, int(port))
                    return self.address
            if self.process.poll() is not None:
                stderr = (self.process.stderr.read() or b"").decode(errors="replace")
                raise ServeError(
                    f"replica exited with code {self.process.returncode} before "
                    f"binding its port: {stderr.strip()[-500:]}"
                )
            time.sleep(0.02)
        raise ServeError(f"replica did not become ready within {timeout_s}s")

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def stop(self, timeout_s: float = 30.0) -> None:
        """Reap the subprocess, escalating politely (wait, terminate, kill)."""
        if self.process is None:
            return
        try:
            self.process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            self.process.terminate()
            try:
                self.process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover - defensive
                self.process.kill()
                self.process.wait(timeout=5.0)
        finally:
            if self.process.stderr is not None:
                self.process.stderr.close()


class ReplicaFleet:
    """K replica processes of one saved network, managed as a unit."""

    def __init__(
        self,
        replicas: int,
        *,
        directory: str | os.PathLike | None = None,
        neurons: int | None = None,
        warm_start: str | os.PathLike | None = None,
        workdir: str | os.PathLike,
        host: str = "127.0.0.1",
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        workers: int | None = None,
        adaptive_batch: bool = False,
        backend: str | None = None,
        activations: str | None = None,
    ) -> None:
        if replicas < 1:
            raise ValidationError(f"replicas must be >= 1, got {replicas}")
        if warm_start is None and (directory is None or neurons is None):
            raise ValidationError(
                "a replica fleet needs --dir + --neurons (or --warm-start)"
            )
        self.replicas: list[ReplicaProcess] = []
        workdir = Path(workdir)
        workdir.mkdir(parents=True, exist_ok=True)
        for index in range(replicas):
            port_file = workdir / f"replica-{index}.port"
            argv = [sys.executable, "-m", "repro.cli", "challenge", "serve",
                    "--host", host, "--port", "0",
                    "--port-file", str(port_file),
                    "--max-batch", str(max_batch),
                    "--max-wait-ms", str(max_wait_ms)]
            if warm_start is not None:
                argv += ["--warm-start", str(warm_start)]
            else:
                argv += ["--dir", str(directory), "--neurons", str(neurons)]
            if workers is not None:
                argv += ["--workers", str(workers)]
            if adaptive_batch:
                argv += ["--adaptive-batch"]
            if backend is not None:
                argv += ["--backend", backend]
            if activations is not None:
                argv += ["--activations", activations]
            self.replicas.append(ReplicaProcess(argv, port_file))

    def start(self, timeout_s: float = 120.0) -> list[tuple[str, int]]:
        """Launch every replica (concurrently) and wait for all addresses."""
        for replica in self.replicas:
            replica.start()
        try:
            return [replica.wait_ready(timeout_s) for replica in self.replicas]
        except ServeError:
            self.terminate()
            raise

    @property
    def addresses(self) -> list[tuple[str, int]]:
        return [r.address for r in self.replicas if r.address is not None]

    def stop(self, timeout_s: float = 30.0) -> None:
        """Reap replicas (they exit on their own after a shutdown broadcast)."""
        for replica in self.replicas:
            replica.stop(timeout_s)

    def terminate(self) -> None:
        """Hard stop: terminate whatever is still running (error paths)."""
        for replica in self.replicas:
            if replica.alive():
                replica.process.terminate()
        self.stop(timeout_s=5.0)

    def __enter__(self) -> "ReplicaFleet":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.terminate()


def aggregate_stats(per_replica: list[dict]) -> dict:
    """Fleet totals in the same shape as one server's ``stats`` payload.

    Counters sum, ``max_batch_rows`` takes the max, and the means are
    re-derived from the summed totals (a mean of means would weight a
    cold replica the same as a saturated one).
    """
    summed = ("requests", "rows", "batches", "failures", "pending",
              "connections_opened", "protocol_errors", "workers",
              "total_queue_wait_s", "total_service_s")
    fleet: dict[str, Any] = {key: 0 for key in summed}
    fleet["max_batch_rows"] = 0
    for stats in per_replica:
        for key in summed:
            fleet[key] += stats.get(key, 0)
        fleet["max_batch_rows"] = max(
            fleet["max_batch_rows"], stats.get("max_batch_rows", 0)
        )
    fleet["mean_batch_rows"] = (
        fleet["rows"] / fleet["batches"] if fleet["batches"] else 0.0
    )
    fleet["mean_queue_wait_s"] = (
        fleet["total_queue_wait_s"] / fleet["requests"] if fleet["requests"] else 0.0
    )
    fleet["mean_service_s"] = (
        fleet["total_service_s"] / fleet["requests"] if fleet["requests"] else 0.0
    )
    return fleet


class LoadBalancer:
    """The fleet front end: one listening socket, K replica backends.

    Speaks the single-server protocol verbatim.  ``infer`` lines are
    routed whole (bytes untouched) to the replica with the fewest
    outstanding requests -- the cheapest balancing signal that still
    tracks real backend load, since a slow replica accumulates
    outstanding requests and stops being picked.
    """

    def __init__(
        self,
        addresses: list[tuple[str, int]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout_s: float = 120.0,
    ) -> None:
        if not addresses:
            raise ValidationError("a load balancer needs at least one replica")
        self.replica_addresses = list(addresses)
        self.host = host
        self.port = int(port)
        self.request_timeout_s = float(request_timeout_s)
        self.address: tuple[str, int] | None = None
        self.connections_opened = 0
        self.protocol_errors = 0
        self.routed = [0] * len(addresses)
        self._outstanding = [0] * len(addresses)
        self._pools: list[list[tuple[asyncio.StreamReader, asyncio.StreamWriter]]] = [
            [] for _ in addresses
        ]
        self._shutdown: asyncio.Event | None = None
        self._handlers: set[asyncio.Task] = set()
        self._inflight = 0
        self._idle: asyncio.Event | None = None

    # ------------------------------------------------------------------ #
    # replica connections
    # ------------------------------------------------------------------ #
    async def _acquire(self, index: int) -> tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        pool = self._pools[index]
        if pool:
            return pool.pop()
        host, port = self.replica_addresses[index]
        return await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )

    async def _forward(self, index: int, line: bytes) -> dict:
        """One request line to replica ``index``; its decoded response."""
        self._outstanding[index] += 1
        self.routed[index] += 1
        try:
            reader, writer = await self._acquire(index)
            try:
                writer.write(line if line.endswith(b"\n") else line + b"\n")
                await writer.drain()
                response = await asyncio.wait_for(
                    reader.readline(), timeout=self.request_timeout_s
                )
                if not response:
                    raise ServeError(f"replica {index} closed the connection")
                self._pools[index].append((reader, writer))
                return protocol.decode(response)
            except BaseException:
                writer.close()
                raise
        finally:
            self._outstanding[index] -= 1

    def _pick_replica(self) -> int:
        """Least-outstanding-requests routing (ties go to the lowest index)."""
        return min(range(len(self._outstanding)), key=self._outstanding.__getitem__)

    async def _broadcast(self, message: dict) -> list[dict]:
        """The same request to every replica, concurrently."""
        results = await asyncio.gather(
            *(self._forward(i, protocol.encode(message))
              for i in range(len(self.replica_addresses))),
            return_exceptions=True,
        )
        out: list[dict] = []
        for index, result in enumerate(results):
            if isinstance(result, BaseException):
                out.append({"ok": False, "error": f"replica {index}: {result}"})
            else:
                out.append(result)
        return out

    # ------------------------------------------------------------------ #
    # request dispatch
    # ------------------------------------------------------------------ #
    def balancer_stats(self) -> dict:
        return {
            "replicas": len(self.replica_addresses),
            "routed": list(self.routed),
            "outstanding": list(self._outstanding),
            "connections_opened": self.connections_opened,
            "protocol_errors": self.protocol_errors,
        }

    async def _dispatch(self, line: bytes) -> tuple[dict, bool]:
        request_id: Any = None
        try:
            message = protocol.decode(line)
            request_id = message.get("id")
            op = message.get("op")
            if op == protocol.OP_PING:
                return {"id": request_id, "ok": True, "op": "pong"}, False
            if op == protocol.OP_INFER:
                response = await self._forward(self._pick_replica(), line)
                return response, False
            if op == protocol.OP_META:
                meta = await self._forward(0, protocol.encode({"op": protocol.OP_META}))
                meta.update(
                    id=request_id,
                    replicas=len(self.replica_addresses),
                    fleet=True,
                )
                return meta, False
            if op == protocol.OP_STATS:
                snapshots = await self._broadcast({"op": protocol.OP_STATS})
                per_replica = [
                    {k: v for k, v in snap.items() if k not in ("id", "ok")}
                    for snap in snapshots
                    if snap.get("ok")
                ]
                fleet = aggregate_stats(per_replica)
                return {
                    "id": request_id,
                    "ok": True,
                    **fleet,
                    "replicas": per_replica,
                    "balancer": self.balancer_stats(),
                }, False
            if op == protocol.OP_SHUTDOWN:
                # every replica drains its accepted requests before
                # answering, so acknowledging here means the whole fleet
                # is drained
                acks = await self._broadcast({"op": protocol.OP_SHUTDOWN})
                ok = all(ack.get("ok") for ack in acks)
                return {"id": request_id, "ok": ok, "op": "shutdown"}, True
            raise ServeError(f"unknown op {op!r} (expected one of {protocol.OPS})")
        except ServeError as exc:
            self.protocol_errors += 1
            return protocol.error_response(request_id, str(exc)), False
        except Exception as exc:  # noqa: BLE001 - a bad request/replica must
            # never take the balancer down
            self.protocol_errors += 1
            return (
                protocol.error_response(request_id, f"balancer error: {exc!r}"),
                False,
            )

    # ------------------------------------------------------------------ #
    # connection handling (mirrors ServeApp: one line in, one line out)
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self.connections_opened += 1
        task = asyncio.current_task()
        if task is not None:
            self._handlers.add(task)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self.protocol_errors += 1
                    writer.write(protocol.encode(
                        protocol.error_response(None, "protocol line too long")
                    ))
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                # count the dispatch-to-response window so shutdown can
                # wait for in-flight forwards before reaping connections
                assert self._idle is not None
                self._inflight += 1
                self._idle.clear()
                try:
                    response, shutdown = await self._dispatch(line)
                    writer.write(protocol.encode(response))
                    await writer.drain()
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                if shutdown:
                    assert self._shutdown is not None
                    self._shutdown.set()
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        except asyncio.CancelledError:
            pass
        finally:
            if task is not None:
                self._handlers.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _close_pools(self) -> None:
        for pool in self._pools:
            while pool:
                _, writer = pool.pop()
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                    pass

    async def _main(
        self, on_ready: Callable[[tuple[str, int]], None] | None = None
    ) -> None:
        self._shutdown = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=protocol.MAX_LINE_BYTES
        )
        sockname = server.sockets[0].getsockname()
        self.address = (str(sockname[0]), int(sockname[1]))
        if on_ready is not None:
            on_ready(self.address)
        try:
            async with server:
                await self._shutdown.wait()
        finally:
            # let every in-flight forward write its response before the
            # connections still parked on readline are reaped
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.request_timeout_s
                )
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass
            for handler in list(self._handlers):
                if handler is not asyncio.current_task():
                    handler.cancel()
            if self._handlers:
                await asyncio.gather(*self._handlers, return_exceptions=True)
            await self._close_pools()

    def run(self, on_ready: Callable[[tuple[str, int]], None] | None = None) -> None:
        """Blocking entry point (``repro challenge serve --replicas K``)."""
        try:
            asyncio.run(self._main(on_ready))
        except KeyboardInterrupt:  # pragma: no cover - interactive stop
            pass


class FleetHandle:
    """A background fleet: balancer address, live pieces, blocking stop."""

    def __init__(
        self,
        fleet: ReplicaFleet,
        balancer: LoadBalancer,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.fleet = fleet
        self.balancer = balancer
        self._thread = thread
        self._loop = loop

    @property
    def address(self) -> tuple[str, int]:
        assert self.balancer.address is not None
        return self.balancer.address

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful fleet stop: broadcast shutdown, join everything.

        Uses the wire protocol (a ``shutdown`` op through the balancer)
        so every replica drains; falls back to terminating the
        subprocesses if the balancer is already gone.
        """
        from repro.serve.client import ServeClient

        if self._thread.is_alive():
            try:
                with ServeClient(*self.address, timeout_s=timeout) as client:
                    client.shutdown()
            except ServeError:
                def _signal() -> None:
                    if self.balancer._shutdown is not None:
                        self.balancer._shutdown.set()

                try:
                    self._loop.call_soon_threadsafe(_signal)
                except RuntimeError:  # pragma: no cover - loop already closed
                    pass
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover - defensive
            raise ServeError(f"balancer thread did not stop within {timeout}s")
        self.fleet.stop(timeout_s=timeout)

    def __enter__(self) -> "FleetHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_fleet_in_background(
    *,
    replicas: int,
    workdir: str | os.PathLike,
    directory: str | os.PathLike | None = None,
    neurons: int | None = None,
    warm_start: str | os.PathLike | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    workers: int | None = None,
    adaptive_batch: bool = False,
    backend: str | None = None,
    activations: str | None = None,
    startup_timeout_s: float = 120.0,
) -> FleetHandle:
    """K replica processes + balancer on a background thread.

    The replica analogue of :func:`repro.serve.app.serve_in_background`:
    returns once the balancer is listening (every replica already bound
    and ready), and the handle's context-manager exit drains the whole
    fleet.  ``workdir`` holds the replica port files.
    """
    fleet = ReplicaFleet(
        replicas,
        directory=directory,
        neurons=neurons,
        warm_start=warm_start,
        workdir=workdir,
        host=host,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
        workers=workers,
        adaptive_batch=adaptive_batch,
        backend=backend,
        activations=activations,
    )
    addresses = fleet.start(timeout_s=startup_timeout_s)
    balancer = LoadBalancer(addresses, host=host, port=port)
    ready = threading.Event()
    holder: dict[str, Any] = {}

    def _runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)

        def _on_ready(address: tuple[str, int]) -> None:
            holder["loop"] = loop
            ready.set()

        try:
            loop.run_until_complete(balancer._main(_on_ready))
        except BaseException as exc:  # noqa: BLE001 - relayed to the starter
            holder["error"] = exc
        finally:
            ready.set()
            asyncio.set_event_loop(None)
            loop.close()

    thread = threading.Thread(target=_runner, daemon=True, name="serve-balancer")
    thread.start()
    if not ready.wait(startup_timeout_s):  # pragma: no cover - defensive
        fleet.terminate()
        raise ServeError(f"balancer did not start within {startup_timeout_s}s")
    if "error" in holder:
        thread.join(timeout=5.0)
        fleet.terminate()
        raise ServeError(
            f"balancer failed to start: {holder['error']}"
        ) from holder["error"]
    if "loop" not in holder:  # pragma: no cover - defensive
        fleet.terminate()
        raise ServeError("balancer exited before binding its socket")
    return FleetHandle(fleet, balancer, thread, holder["loop"])
