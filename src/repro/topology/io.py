"""Topology serialization.

Two formats are supported:

* ``.npz`` -- a single NumPy archive holding every adjacency submatrix in
  CSR component form (fast, lossless, the package-native format);
* per-layer TSV -- the MIT/IEEE/Amazon Graph Challenge Sparse DNN format:
  one file per layer, each line ``row_index<TAB>col_index<TAB>value`` with
  **1-based** indices.  This is the format in which the RadiX-Net-generated
  challenge networks were distributed, so round-tripping it is part of the
  reproduction.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.errors import SerializationError
from repro.sparse.coo import COOMatrix
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT


def save_npz(topology: FNNT, path: str | os.PathLike) -> Path:
    """Save a topology (all submatrices plus name) to a ``.npz`` archive."""
    path = Path(path)
    payload: dict[str, np.ndarray] = {
        "num_submatrices": np.asarray([len(topology.submatrices)]),
        "name": np.asarray([topology.name]),
    }
    for i, w in enumerate(topology.submatrices):
        payload[f"shape_{i}"] = np.asarray(w.shape, dtype=np.int64)
        payload[f"indptr_{i}"] = w.indptr
        payload[f"indices_{i}"] = w.indices
        payload[f"data_{i}"] = w.data
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path


def load_npz(path: str | os.PathLike) -> FNNT:
    """Load a topology saved with :func:`save_npz`."""
    path = Path(path)
    if not path.exists():
        raise SerializationError(f"topology file not found: {path}")
    try:
        with np.load(path, allow_pickle=False) as archive:
            count = int(archive["num_submatrices"][0])
            name = str(archive["name"][0])
            submatrices = []
            for i in range(count):
                shape = tuple(int(x) for x in archive[f"shape_{i}"])
                submatrices.append(
                    CSRMatrix(
                        shape,
                        archive[f"indptr_{i}"],
                        archive[f"indices_{i}"],
                        archive[f"data_{i}"],
                    )
                )
    except KeyError as exc:
        raise SerializationError(f"malformed topology archive {path}: missing {exc}") from exc
    return FNNT(submatrices, validate=False, name=name)


def save_tsv_layers(topology: FNNT, directory: str | os.PathLike, *, prefix: str = "layer") -> list[Path]:
    """Write one Graph Challenge style TSV file per adjacency submatrix.

    Each line is ``row<TAB>col<TAB>value`` with 1-based indices, matching
    the Sparse DNN Graph Challenge distribution format.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, w in enumerate(topology.submatrices):
        coo = w.to_coo().coalesce()
        path = directory / f"{prefix}-{i + 1}.tsv"
        with path.open("w", encoding="utf-8") as handle:
            for r, c, v in zip(coo.rows, coo.cols, coo.values):
                handle.write(f"{int(r) + 1}\t{int(c) + 1}\t{v:.17g}\n")
        paths.append(path)
    return paths


def load_tsv_layers(
    paths: Sequence[str | os.PathLike],
    shapes: Sequence[tuple[int, int]],
    *,
    name: str = "tsv-topology",
) -> FNNT:
    """Load a topology from Graph Challenge style per-layer TSV files.

    ``shapes`` must give the (rows, cols) of each layer's submatrix because
    the TSV format does not carry dimensions.
    """
    if len(paths) != len(shapes):
        raise SerializationError("paths and shapes must have the same length")
    submatrices = []
    for path, shape in zip(paths, shapes):
        path = Path(path)
        if not path.exists():
            raise SerializationError(f"layer file not found: {path}")
        rows, cols, vals = [], [], []
        with path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                parts = line.split("\t")
                if len(parts) != 3:
                    raise SerializationError(
                        f"{path}:{line_number}: expected 3 tab-separated fields, got {len(parts)}"
                    )
                rows.append(int(parts[0]) - 1)
                cols.append(int(parts[1]) - 1)
                vals.append(float(parts[2]))
        submatrices.append(
            COOMatrix(
                (int(shape[0]), int(shape[1])),
                np.asarray(rows, dtype=np.int64),
                np.asarray(cols, dtype=np.int64),
                np.asarray(vals, dtype=np.float64),
            ).to_csr()
        )
    return FNNT(submatrices, validate=False, name=name)
