"""Graph-theoretic properties of FNNTs.

These functions implement the definitions of the paper's Mathematical
Preliminaries section:

* **path-connectedness** -- every output node is reachable from every
  input node;
* **symmetry** -- the number of directed paths from input ``u`` to output
  ``v`` is the same positive integer ``m`` for every pair ``(u, v)``
  (symmetry implies path-connectedness);
* **density** -- edges divided by the edges of the fully-connected FNNT on
  the same layer sizes, together with its attainable minimum;
* per-pair **path counts**, computed as the chain product of the adjacency
  submatrices (equivalently a block of ``A^n``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TopologyError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import chain_product
from repro.sparse.semiring import OR_AND, semiring_chain_product
from repro.topology.fnnt import FNNT


def path_count_matrix(topology: FNNT) -> CSRMatrix:
    """The ``|U_0| x |U_n|`` matrix of path counts between inputs and outputs.

    Entry ``[u, v]`` is the number of distinct directed paths from input
    node ``u`` to output node ``v``.  This equals the nonzero block of
    ``A^n`` in the paper's symmetry definition.
    """
    return chain_product(list(topology.submatrices))


def is_path_connected(topology: FNNT, *, use_boolean: bool = False) -> bool:
    """Check path-connectedness.

    With ``use_boolean=True`` the reachability is computed over the OR-AND
    semiring, which avoids forming potentially astronomically large path
    counts for very deep topologies; the default arithmetic product is
    faster for the sizes used in tests and benchmarks.
    """
    if use_boolean:
        reach = semiring_chain_product(list(topology.submatrices), OR_AND)
        return reach.nnz == reach.shape[0] * reach.shape[1]
    counts = path_count_matrix(topology)
    return counts.nnz == counts.shape[0] * counts.shape[1]


def is_symmetric(topology: FNNT) -> bool:
    """Check the paper's symmetry property.

    True iff there exists a positive integer ``m`` such that every
    (input, output) pair is joined by exactly ``m`` paths.
    """
    counts = path_count_matrix(topology).to_dense()
    first = counts.flat[0]
    return bool(first > 0 and np.all(counts == first))


def uniform_path_count(topology: FNNT) -> int:
    """The common path count ``m`` of a symmetric FNNT.

    Raises :class:`TopologyError` if the topology is not symmetric.
    """
    counts = path_count_matrix(topology).to_dense()
    first = counts.flat[0]
    if not (first > 0 and np.all(counts == first)):
        raise TopologyError(
            "topology is not symmetric: path counts differ across (input, output) pairs"
        )
    return int(round(float(first)))


def density(topology: FNNT) -> float:
    """Density of an FNNT per the paper's definition."""
    return topology.density()


def minimum_density(layer_sizes: tuple[int, ...] | list[int]) -> float:
    """The lowest attainable FNNT density for the given layer sizes.

    The paper gives this as ``sum |U_{i-1}| / sum |U_{i-1}||U_i|`` -- every
    non-output node must keep at least one outgoing edge.
    """
    sizes = [int(s) for s in layer_sizes]
    if len(sizes) < 2 or any(s <= 0 for s in sizes):
        raise TopologyError("layer_sizes must contain at least two positive integers")
    numerator = sum(sizes[:-1])
    denominator = sum(sizes[i] * sizes[i + 1] for i in range(len(sizes) - 1))
    return numerator / denominator


@dataclass(frozen=True)
class DegreeStatistics:
    """Per-layer in/out degree summary of an FNNT."""

    layer: int
    out_degree_min: int
    out_degree_max: int
    out_degree_mean: float
    in_degree_min: int
    in_degree_max: int
    in_degree_mean: float

    @property
    def out_regular(self) -> bool:
        """True if every node in the layer has the same out-degree."""
        return self.out_degree_min == self.out_degree_max

    @property
    def in_regular(self) -> bool:
        """True if every node in the next layer has the same in-degree."""
        return self.in_degree_min == self.in_degree_max


def degree_statistics(topology: FNNT) -> list[DegreeStatistics]:
    """Degree statistics of every adjacency submatrix of the topology.

    Mixed-radix topologies are both in- and out-regular with degree
    ``N_i`` at level ``i`` -- a direct corollary of equation (1) -- so these
    statistics are used in tests to verify the construction.
    """
    stats = []
    for layer, w in enumerate(topology.submatrices):
        out_deg = w.row_degrees()
        in_deg = w.col_degrees()
        stats.append(
            DegreeStatistics(
                layer=layer,
                out_degree_min=int(out_deg.min()),
                out_degree_max=int(out_deg.max()),
                out_degree_mean=float(out_deg.mean()),
                in_degree_min=int(in_deg.min()),
                in_degree_max=int(in_deg.max()),
                in_degree_mean=float(in_deg.mean()),
            )
        )
    return stats
