"""Random sparse FNNT generators.

Two random baselines against which the deterministic RadiX-Net construction
is compared:

* :func:`erdos_renyi_fnnt` -- each possible edge between adjacent layers is
  kept independently with probability ``p`` (the "random X-Linear" flavour
  of sparsity, probabilistic path-connectedness only);
* :func:`fixed_out_degree_fnnt` -- every node keeps exactly ``k`` outgoing
  edges chosen uniformly at random (a random regular bipartite expander,
  the construction used by random X-Nets in Prabhu et al.).

Both repair all-zero rows/columns so the result is always a valid FNNT.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ValidationError
from repro.topology.fnnt import FNNT
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_positive_int, check_probability


def _repair_empty_rows_cols(mask: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Ensure no all-zero row or column by adding minimal random edges."""
    mask = mask.copy()
    empty_rows = np.flatnonzero(mask.sum(axis=1) == 0)
    if empty_rows.size:
        mask[empty_rows, rng.integers(0, mask.shape[1], size=empty_rows.size)] = True
    empty_cols = np.flatnonzero(mask.sum(axis=0) == 0)
    if empty_cols.size:
        mask[rng.integers(0, mask.shape[0], size=empty_cols.size), empty_cols] = True
    return mask


def erdos_renyi_fnnt(
    layer_sizes: Sequence[int],
    p: float,
    *,
    seed: RngLike = None,
    name: str = "erdos-renyi",
) -> FNNT:
    """A random FNNT where each possible edge exists independently with probability ``p``.

    All-zero rows and columns are repaired with one random edge each, so the
    realized density can slightly exceed ``p`` for very sparse settings.
    """
    sizes = [check_positive_int(s, "layer size") for s in layer_sizes]
    if len(sizes) < 2:
        raise ValidationError("layer_sizes must contain at least two layers")
    p = check_probability(p, "p")
    rng = ensure_rng(seed)
    submatrices = []
    for i in range(len(sizes) - 1):
        mask = rng.random((sizes[i], sizes[i + 1])) < p
        mask = _repair_empty_rows_cols(mask, rng)
        submatrices.append(mask.astype(np.float64))
    return FNNT(submatrices, name=name)


def fixed_out_degree_fnnt(
    layer_sizes: Sequence[int],
    out_degree: int,
    *,
    seed: RngLike = None,
    name: str = "fixed-out-degree",
) -> FNNT:
    """A random FNNT where every node has exactly ``out_degree`` outgoing edges.

    The out-degree is clipped to the width of the next layer.  Empty columns
    (nodes with no incoming edge) are repaired with one extra random edge,
    so in-degrees are only approximately regular -- exactly the behaviour of
    randomly constructed X-Linear layers.
    """
    sizes = [check_positive_int(s, "layer size") for s in layer_sizes]
    if len(sizes) < 2:
        raise ValidationError("layer_sizes must contain at least two layers")
    out_degree = check_positive_int(out_degree, "out_degree")
    rng = ensure_rng(seed)
    submatrices = []
    for i in range(len(sizes) - 1):
        rows, cols = sizes[i], sizes[i + 1]
        k = min(out_degree, cols)
        mask = np.zeros((rows, cols), dtype=bool)
        for r in range(rows):
            mask[r, rng.choice(cols, size=k, replace=False)] = True
        mask = _repair_empty_rows_cols(mask, rng)
        submatrices.append(mask.astype(np.float64))
    return FNNT(submatrices, name=name)
