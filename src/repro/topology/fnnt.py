"""The :class:`FNNT` container.

An FNNT wraps an ordered list of adjacency submatrices
``W = (W_1, ..., W_n)`` (paper Section II, "Adjacency Submatrix of an
FNNT").  The class validates the FNNT axioms:

* consecutive submatrices are conformable
  (``cols(W_i) == rows(W_{i+1})``);
* every submatrix is 0/1-valued;
* no *column* of ``W_i`` is all-zero.  (The paper states the constraint on
  columns; together with the next point it makes every interior node
  reachable and forward-connected.)
* no *row* of ``W_i`` is all-zero -- this is the FNNT axiom that every
  non-output node has non-zero out-degree.

The container also assembles the full block super-diagonal adjacency
matrix ``A`` of the topology (paper Fig. 4 / eq. (11)).
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

import numpy as np

from repro.errors import TopologyError
from repro.sparse.csr import CSRMatrix
from repro.sparse.ops import chain_product, kron
from repro.sparse.convert import from_dense


def _as_csr(matrix: CSRMatrix | np.ndarray) -> CSRMatrix:
    if isinstance(matrix, CSRMatrix):
        return matrix
    return from_dense(np.asarray(matrix, dtype=np.float64))


class FNNT:
    """A feedforward neural-network topology defined by adjacency submatrices.

    Parameters
    ----------
    submatrices:
        Ordered adjacency submatrices; each may be a :class:`CSRMatrix` or a
        dense 0/1 array.  ``submatrices[i]`` has shape
        ``(|U_i|, |U_{i+1}|)``.
    validate:
        When True (default) the FNNT axioms are checked at construction.
    name:
        Optional human-readable label carried through analysis reports.

    Examples
    --------
    >>> import numpy as np
    >>> net = FNNT([np.ones((2, 3)), np.ones((3, 2))], name="dense-2-3-2")
    >>> net.layer_sizes
    (2, 3, 2)
    >>> net.num_edges
    12
    """

    def __init__(
        self,
        submatrices: Sequence[CSRMatrix | np.ndarray],
        *,
        validate: bool = True,
        name: str = "fnnt",
    ) -> None:
        if not submatrices:
            raise TopologyError("an FNNT requires at least one adjacency submatrix")
        self._submatrices: tuple[CSRMatrix, ...] = tuple(_as_csr(w) for w in submatrices)
        self.name = str(name)
        if validate:
            self.validate()

    # ------------------------------------------------------------------ #
    # validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check the FNNT axioms; raise :class:`TopologyError` on violation."""
        for i, w in enumerate(self._submatrices):
            if not w.is_binary():
                raise TopologyError(
                    f"submatrix {i} has non-binary entries; FNNT adjacency "
                    "submatrices must contain only zeros and ones"
                )
            if np.any(w.row_degrees() == 0):
                raise TopologyError(
                    f"submatrix {i} has an all-zero row: a node in layer {i} "
                    "has out-degree 0, violating the FNNT axiom"
                )
            if np.any(w.col_degrees() == 0):
                raise TopologyError(
                    f"submatrix {i} has an all-zero column: a node in layer "
                    f"{i + 1} is unreachable"
                )
        for i in range(len(self._submatrices) - 1):
            left, right = self._submatrices[i], self._submatrices[i + 1]
            if left.shape[1] != right.shape[0]:
                raise TopologyError(
                    f"submatrices {i} and {i + 1} are not conformable: "
                    f"{left.shape} vs {right.shape}"
                )

    # ------------------------------------------------------------------ #
    # basic structure
    # ------------------------------------------------------------------ #
    @property
    def submatrices(self) -> tuple[CSRMatrix, ...]:
        """The ordered adjacency submatrices ``(W_1, ..., W_n)``."""
        return self._submatrices

    def submatrix(self, index: int) -> CSRMatrix:
        """The adjacency submatrix from layer ``index`` to ``index + 1``."""
        return self._submatrices[index]

    def __len__(self) -> int:
        return len(self._submatrices)

    def __iter__(self) -> Iterator[CSRMatrix]:
        return iter(self._submatrices)

    @property
    def num_layers(self) -> int:
        """Number of node layers (``n + 1`` for ``n`` submatrices)."""
        return len(self._submatrices) + 1

    @property
    def layer_sizes(self) -> tuple[int, ...]:
        """Node count of each layer ``(|U_0|, ..., |U_n|)``."""
        sizes = [self._submatrices[0].shape[0]]
        sizes.extend(w.shape[1] for w in self._submatrices)
        return tuple(sizes)

    @property
    def num_nodes(self) -> int:
        """Total node count across all layers."""
        return int(sum(self.layer_sizes))

    @property
    def num_edges(self) -> int:
        """Total edge count (sum of submatrix nnz)."""
        return int(sum(w.nnz for w in self._submatrices))

    @property
    def input_size(self) -> int:
        """Width of the input layer ``|U_0|``."""
        return self.layer_sizes[0]

    @property
    def output_size(self) -> int:
        """Width of the output layer ``|U_n|``."""
        return self.layer_sizes[-1]

    # ------------------------------------------------------------------ #
    # derived quantities
    # ------------------------------------------------------------------ #
    def density(self) -> float:
        """Density as defined in the paper: edges / edges-of-dense-counterpart."""
        sizes = self.layer_sizes
        dense_edges = sum(sizes[i] * sizes[i + 1] for i in range(len(sizes) - 1))
        return self.num_edges / dense_edges

    def dense_counterpart(self) -> "FNNT":
        """The unique fully-connected FNNT on the same layer sizes."""
        sizes = self.layer_sizes
        return FNNT(
            [CSRMatrix.ones((sizes[i], sizes[i + 1])) for i in range(len(sizes) - 1)],
            validate=False,
            name=f"{self.name}-dense",
        )

    def path_count_matrix(self) -> CSRMatrix:
        """The ``|U_0| x |U_n|`` matrix whose ``[u, v]`` entry counts u->v paths."""
        return chain_product(list(self._submatrices))

    def is_path_connected(self) -> bool:
        """True if every output node is reachable from every input node."""
        from repro.topology.properties import is_path_connected

        return is_path_connected(self)

    def is_symmetric(self) -> bool:
        """True if the same number of paths joins every (input, output) pair."""
        from repro.topology.properties import is_symmetric

        return is_symmetric(self)

    def full_adjacency(self) -> CSRMatrix:
        """Assemble the full ``num_nodes x num_nodes`` block adjacency matrix.

        Nodes are indexed layer by layer (all of ``U_0`` first, then
        ``U_1``, ...), so the matrix is block super-diagonal exactly as in
        the paper's Figure 4 and equation (11).
        """
        offsets = np.concatenate([[0], np.cumsum(self.layer_sizes)])
        total = self.num_nodes
        rows: list[np.ndarray] = []
        cols: list[np.ndarray] = []
        vals: list[np.ndarray] = []
        for i, w in enumerate(self._submatrices):
            coo = w.to_coo()
            rows.append(coo.rows + offsets[i])
            cols.append(coo.cols + offsets[i + 1])
            vals.append(coo.values)
        from repro.sparse.coo import COOMatrix

        return COOMatrix(
            (total, total),
            np.concatenate(rows),
            np.concatenate(cols),
            np.concatenate(vals),
        ).to_csr()

    def to_networkx(self):
        """Convert the whole topology to a layered NetworkX digraph.

        Node labels are ``(layer_index, node_index)``; every node carries a
        ``layer`` attribute, every edge a ``weight`` of 1.0.
        """
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for layer, size in enumerate(self.layer_sizes):
            graph.add_nodes_from(((layer, i) for i in range(size)), layer=layer)
        for layer, w in enumerate(self._submatrices):
            coo = w.to_coo()
            graph.add_weighted_edges_from(
                ((layer, int(r)), (layer + 1, int(c)), float(v))
                for r, c, v in zip(coo.rows, coo.cols, coo.values)
            )
        return graph

    # ------------------------------------------------------------------ #
    # composition
    # ------------------------------------------------------------------ #
    def concatenate(self, other: "FNNT", *, name: str | None = None) -> "FNNT":
        """Concatenate two FNNTs by identifying this output layer with the other's input.

        This is exactly how the paper builds extended mixed-radix topologies
        from individual mixed-radix topologies (Fig. 2): the output nodes of
        one are identified label-wise with the input nodes of the next, so
        the result's submatrix list is simply the concatenation.
        """
        if self.output_size != other.input_size:
            raise TopologyError(
                f"cannot concatenate: output width {self.output_size} != "
                f"input width {other.input_size}"
            )
        return FNNT(
            self._submatrices + other._submatrices,
            validate=False,
            name=name or f"{self.name}+{other.name}",
        )

    def kron_expand(self, widths: Sequence[int], *, name: str | None = None) -> "FNNT":
        """Kronecker-expand each submatrix with an all-ones block (paper eq. (3)).

        ``widths`` must have ``num_layers`` entries ``(D_0, ..., D_n)``;
        submatrix ``W_i`` becomes ``1_{D_{i-1} x D_i} (x) W_i``.
        """
        if len(widths) != self.num_layers:
            raise TopologyError(
                f"widths must have {self.num_layers} entries, got {len(widths)}"
            )
        expanded = []
        for i, w in enumerate(self._submatrices):
            ones = CSRMatrix.ones((int(widths[i]), int(widths[i + 1])))
            expanded.append(kron(ones, w))
        return FNNT(expanded, validate=False, name=name or f"{self.name}-kron")

    # ------------------------------------------------------------------ #
    # comparisons / repr
    # ------------------------------------------------------------------ #
    def same_topology(self, other: "FNNT") -> bool:
        """True if both FNNTs have identical sparsity patterns layer by layer."""
        if len(self._submatrices) != len(other._submatrices):
            return False
        return all(
            a.same_pattern(b) for a, b in zip(self._submatrices, other._submatrices)
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"FNNT(name={self.name!r}, layers={self.layer_sizes}, "
            f"edges={self.num_edges}, density={self.density():.4g})"
        )
