"""Feedforward neural network topologies (FNNTs).

An FNNT (paper Section II) is a layered directed graph: nodes are split
into ordered layers ``U_0, ..., U_n``, edges only run from layer ``i`` to
layer ``i+1``, and every non-output node has at least one outgoing edge.
An FNNT is uniquely determined by the ordered list of its *adjacency
submatrices* ``W = (W_1, ..., W_n)`` where ``W_i`` is the
``|U_{i-1}| x |U_i|`` 0/1 matrix of edges from layer ``i-1`` to layer ``i``.

This subpackage provides the :class:`FNNT` container, property checks
(path-connectedness, symmetry, density, path counts), random sparse
FNNT generators, and topology serialization.
"""

from repro.topology.fnnt import FNNT
from repro.topology.properties import (
    is_path_connected,
    is_symmetric,
    path_count_matrix,
    uniform_path_count,
    density,
    minimum_density,
    degree_statistics,
)
from repro.topology.random_graphs import (
    erdos_renyi_fnnt,
    fixed_out_degree_fnnt,
)
from repro.topology.io import (
    save_npz,
    load_npz,
    save_tsv_layers,
    load_tsv_layers,
)
from repro.topology.transforms import (
    permute_layer,
    shuffle_all_layers,
    slice_layers,
    union,
    intersection,
    edge_overlap,
    from_weight_matrices,
)

__all__ = [
    "FNNT",
    "is_path_connected",
    "is_symmetric",
    "path_count_matrix",
    "uniform_path_count",
    "density",
    "minimum_density",
    "degree_statistics",
    "erdos_renyi_fnnt",
    "fixed_out_degree_fnnt",
    "save_npz",
    "load_npz",
    "save_tsv_layers",
    "load_tsv_layers",
    "permute_layer",
    "shuffle_all_layers",
    "slice_layers",
    "union",
    "intersection",
    "edge_overlap",
    "from_weight_matrices",
]
