"""Topology transformations.

Utilities for manipulating FNNTs after construction: relabeling nodes,
extracting sub-topologies, overlaying/intersecting connectivity, and
converting a trained model's surviving weights back into a topology.  These
are the operations downstream users of a topology generator actually need
when adapting a generated net to an existing model or comparing families
structurally.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import TopologyError, ValidationError
from repro.sparse.csr import CSRMatrix
from repro.topology.fnnt import FNNT
from repro.utils.rng import RngLike, ensure_rng


def permute_layer(topology: FNNT, layer: int, permutation: Sequence[int], *, name: str | None = None) -> FNNT:
    """Relabel the nodes of one layer by ``permutation``.

    Node ``i`` of the chosen layer becomes node ``permutation[i]``.  The
    incoming submatrix has its columns permuted and the outgoing submatrix
    its rows, so the graph is unchanged up to labels -- path counts,
    symmetry, and density are invariant (tested).
    """
    sizes = topology.layer_sizes
    if not 0 <= layer < len(sizes):
        raise ValidationError(f"layer must be in [0, {len(sizes) - 1}], got {layer}")
    perm = np.asarray(permutation, dtype=np.int64)
    if perm.shape != (sizes[layer],) or sorted(perm.tolist()) != list(range(sizes[layer])):
        raise ValidationError(
            f"permutation must be a permutation of 0..{sizes[layer] - 1}"
        )
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.size)
    new_submatrices: list[np.ndarray | CSRMatrix] = []
    for index, submatrix in enumerate(topology.submatrices):
        dense = submatrix.to_dense()
        if index == layer - 1:  # incoming edges: permute columns
            dense = dense[:, inverse]
        if index == layer:  # outgoing edges: permute rows
            dense = dense[inverse, :]
        new_submatrices.append(dense)
    return FNNT(new_submatrices, validate=False, name=name or f"{topology.name}-perm{layer}")


def shuffle_all_layers(topology: FNNT, *, seed: RngLike = None, permute_boundaries: bool = False, name: str | None = None) -> FNNT:
    """Relabel every layer with an independent random permutation.

    Interior layers are always shuffled; the input and output layers only
    when ``permute_boundaries`` is set (keeping them fixed preserves the
    meaning of feature/class indices).  Used to decorrelate consecutive
    layers of generated instances, as the Graph Challenge networks do.
    """
    rng = ensure_rng(seed)
    result = topology
    layers = range(topology.num_layers) if permute_boundaries else range(1, topology.num_layers - 1)
    for layer in layers:
        permutation = rng.permutation(result.layer_sizes[layer])
        result = permute_layer(result, layer, permutation)
    return FNNT(
        [w.to_dense() for w in result.submatrices],
        validate=False,
        name=name or f"{topology.name}-shuffled",
    )


def slice_layers(topology: FNNT, start: int, stop: int, *, name: str | None = None) -> FNNT:
    """Extract the sub-topology spanning node layers ``start`` to ``stop`` inclusive."""
    if not 0 <= start < stop < topology.num_layers:
        raise ValidationError(
            f"need 0 <= start < stop <= {topology.num_layers - 1}, got ({start}, {stop})"
        )
    return FNNT(
        list(topology.submatrices[start:stop]),
        validate=False,
        name=name or f"{topology.name}[{start}:{stop}]",
    )


def union(a: FNNT, b: FNNT, *, name: str = "union") -> FNNT:
    """Edge-wise union of two FNNTs with identical layer sizes."""
    _check_same_shape(a, b)
    submatrices = [
        ((wa.to_dense() + wb.to_dense()) > 0).astype(np.float64)
        for wa, wb in zip(a.submatrices, b.submatrices)
    ]
    return FNNT(submatrices, validate=False, name=name)


def intersection(a: FNNT, b: FNNT, *, name: str = "intersection") -> FNNT:
    """Edge-wise intersection of two FNNTs with identical layer sizes.

    The result may violate the FNNT axioms (empty rows/columns) and is
    therefore returned unvalidated; callers interested in validity should
    call ``validate()`` or measure :func:`edge_overlap` instead.
    """
    _check_same_shape(a, b)
    submatrices = [
        ((wa.to_dense() != 0) & (wb.to_dense() != 0)).astype(np.float64)
        for wa, wb in zip(a.submatrices, b.submatrices)
    ]
    return FNNT(submatrices, validate=False, name=name)


def edge_overlap(a: FNNT, b: FNNT) -> float:
    """Jaccard similarity of the edge sets of two same-shaped FNNTs."""
    _check_same_shape(a, b)
    intersection_edges = 0
    union_edges = 0
    for wa, wb in zip(a.submatrices, b.submatrices):
        da = wa.to_dense() != 0
        db = wb.to_dense() != 0
        intersection_edges += int(np.count_nonzero(da & db))
        union_edges += int(np.count_nonzero(da | db))
    return intersection_edges / union_edges if union_edges else 1.0


def from_weight_matrices(weight_matrices: Sequence[np.ndarray], *, tolerance: float = 0.0, name: str = "from-weights") -> FNNT:
    """The topology of nonzero weights of a trained model.

    Entries with magnitude ``<= tolerance`` are treated as absent.  Unlike
    :func:`repro.baselines.pruning.prune_model_to_topology` this performs no
    repair; it reports the model exactly as it is and raises if the result
    is not a valid FNNT (a dead neuron).
    """
    if not weight_matrices:
        raise ValidationError("weight_matrices must be non-empty")
    submatrices = [
        (np.abs(np.asarray(w, dtype=np.float64)) > tolerance).astype(np.float64)
        for w in weight_matrices
    ]
    return FNNT(submatrices, name=name)


def _check_same_shape(a: FNNT, b: FNNT) -> None:
    if a.layer_sizes != b.layer_sizes:
        raise TopologyError(
            f"topologies have different layer sizes: {a.layer_sizes} vs {b.layer_sizes}"
        )
