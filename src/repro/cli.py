"""Command-line interface.

A small ``argparse`` front end over the library, so a topology can be
generated, inspected, verified, and exported without writing Python::

    python -m repro.cli generate --systems "2,2;2,2" --widths 1,2,2,2,1 --out net.npz
    python -m repro.cli info net.npz
    python -m repro.cli verify --systems "2,2;2,2" --widths 1,2,2,2,1
    python -m repro.cli density --systems "3,3;9" --widths 1,1,1,1
    python -m repro.cli challenge --neurons 128 --layers 12 --connections 8
    python -m repro.cli challenge --neurons 128 --layers 12 --save-dir nets/
    python -m repro.cli challenge generate --neurons 16384 --layers 120 --connections 32 --out nets/
    python -m repro.cli challenge run --dir nets/ --neurons 16384 --checkpoint-every 10 --prefetch 4
    python -m repro.cli challenge run --resume nets/checkpoint
    python -m repro.cli challenge serve --dir nets/ --neurons 16384 --port 7744
    python -m repro.cli challenge bench-serve --port 7744 --requests 500 --clients 8
    python -m repro.cli challenge verify --dir nets/ --neurons 128
    python -m repro.cli design --layer-widths 32,64,64,16
    python -m repro.cli train-study --datasets gaussian_mixture --arms radix-net,dense --epochs 5 --output study.json
    python -m repro.cli backends

The kernel-heavy subcommands (``challenge``, ``verify``) accept
``--backend {reference,scipy,vectorized,numba,auto}`` to select the
sparse-kernel implementation (see :mod:`repro.backends`; the
``REPRO_BACKEND`` environment variable sets the default, and ``auto``
micro-probes the registered tiers once and picks the fastest).
``backends`` prints the capability report: which tiers are registered,
which optional tiers are missing and why, JIT warm state and thread
count for numba, and -- with ``--probe`` -- the per-tier fused-kernel
timing behind ``auto``.  Naming a backend that is unknown or not
installed exits 2 (argument-error convention) with a one-line message
listing the available backends.  ``challenge`` additionally
accepts ``--chunk-size`` / ``--workers`` for chunked or process-parallel
batched inference, and ``--activations {auto,dense,sparse}`` /
``--sparse-crossover`` to pick the activation storage policy (CSR
activation batches via SpGEMM vs. dense buffers via SpMM; see
:class:`repro.challenge.inference.ActivationPolicy`).  ``challenge
generate`` streams a network straight to disk one layer at a time
(never holding more than a single layer resident), which is how the
*official* Graph Challenge sizes (16384/65536 neurons) are produced;
``challenge run`` drives the staged streaming pipeline over a saved
network -- layers prefetched from disk on a background thread
(``--prefetch``), pipeline state atomically checkpointed every K layers
(``--checkpoint-every``), interrupted or deliberately staged
(``--stop-after``) runs continued bit-identically with ``--resume`` --
the workflow for official-scale, thousands-of-layers-deep runs;
``challenge serve`` starts a long-lived serving instance (the network
resident in memory, concurrent client requests coalesced into
micro-batches -- see :mod:`repro.serve`) speaking a newline-delimited
JSON protocol over TCP, with ``--warm-start CKPT_DIR`` recovering the
full configuration from a pipeline checkpoint; ``challenge bench-serve``
is the bundled load generator (requests/second + latency percentiles,
``--json`` artifact);
``challenge verify`` cross-checks a network saved on disk (``--save-dir``
/ :func:`repro.challenge.io.save_challenge_network`) against the naive
dense reference recurrence.  ``train-study`` runs the accuracy-versus-
density training comparison (RadiX-Net / random X-Net / dense / pruned
arms, selectable with ``--arms``) over the bundled dataset registry with
genuinely sparse CSR training through the backend kernels (or the
dense-masked path with ``--dense-masked``) and emits a JSON report with
``--output``.

Every subcommand prints a plain-text report and exits 0 on success, 2 on
argument errors (argparse convention), 1 on library errors.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.errors import ReproError, UnknownBackendError


def _parse_int_list(text: str, name: str) -> list[int]:
    try:
        return [int(part) for part in text.replace(" ", "").split(",") if part != ""]
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"{name} must be a comma-separated integer list") from exc


def parse_systems(text: str) -> list[tuple[int, ...]]:
    """Parse ``"2,2;2,2"`` into ``[(2, 2), (2, 2)]``."""
    systems = []
    for chunk in text.split(";"):
        values = _parse_int_list(chunk, "systems")
        if not values:
            raise argparse.ArgumentTypeError("each system needs at least one radix")
        systems.append(tuple(values))
    if not systems:
        raise argparse.ArgumentTypeError("at least one mixed-radix system is required")
    return systems


def parse_widths(text: str) -> list[int]:
    """Parse ``"1,2,2,2,1"`` into ``[1, 2, 2, 2, 1]``."""
    values = _parse_int_list(text, "widths")
    if not values:
        raise argparse.ArgumentTypeError("widths must be non-empty")
    return values


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid float value: {text!r}") from None
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {text}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {text}")
    return value


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {text}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(prog="repro", description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a RadiX-Net and save it")
    generate.add_argument("--systems", type=parse_systems, required=True, help='mixed-radix systems, e.g. "2,2;2,2"')
    generate.add_argument("--widths", type=parse_widths, required=True, help='dense widths, e.g. "1,2,2,2,1"')
    generate.add_argument("--out", default=None, help="output .npz path (optional)")
    generate.add_argument("--name", default="radix-net")

    info = subparsers.add_parser("info", help="report the properties of a saved topology")
    info.add_argument("path", help="topology .npz file written by `generate`")

    verify = subparsers.add_parser("verify", help="verify Theorem 1 on a specification")
    verify.add_argument("--systems", type=parse_systems, required=True)
    verify.add_argument("--widths", type=parse_widths, required=True)
    verify.add_argument("--backend", default=None, help="sparse backend for the chain products (see `backends`)")

    density = subparsers.add_parser("density", help="report eq. (4)/(5)/(6) densities for a specification")
    density.add_argument("--systems", type=parse_systems, required=True)
    density.add_argument("--widths", type=parse_widths, required=True)

    challenge = subparsers.add_parser("challenge", help="generate a Graph Challenge style network and run inference")
    challenge.add_argument("--neurons", type=int, default=128)
    challenge.add_argument("--layers", type=int, default=12)
    challenge.add_argument("--connections", type=int, default=8)
    challenge.add_argument("--batch", type=int, default=32)
    challenge.add_argument("--seed", type=int, default=0)
    challenge.add_argument("--backend", default=None, help="sparse backend for the inference kernels (see `backends`)")
    challenge.add_argument("--chunk-size", type=int, default=None, help="mini-batch rows per chunk (bounds peak memory)")
    challenge.add_argument("--workers", type=int, default=None, help="process-pool fan-out across chunks")
    challenge.add_argument("--activations", choices=["auto", "dense", "sparse"], default="auto",
                           help="activation storage policy: dense SpMM buffers, CSR SpGEMM batches, or per-layer auto crossover")
    challenge.add_argument("--sparse-crossover", type=float, default=None, metavar="DENSITY",
                           help="auto-policy density at or below which activations switch to CSR (default 0.1)")
    challenge.add_argument("--save-dir", default=None, metavar="DIR",
                           help="also save the generated network (TSV + binary sidecar cache) to DIR")
    challenge_sub = challenge.add_subparsers(dest="challenge_command")
    challenge_generate = challenge_sub.add_parser(
        "generate",
        help="stream a challenge network to disk, one layer at a time "
        "(official 16384/65536-neuron sizes included)",
    )
    challenge_generate.add_argument("--out", required=True, metavar="DIR",
                                    help="output directory (TSV layers + meta + binary sidecar cache)")
    challenge_generate.add_argument("--threshold", type=float, default=32.0,
                                    help="activation clamp recorded in the metadata (default 32)")
    challenge_generate.add_argument("--no-shuffle", action="store_true",
                                    help="skip the per-layer neuron permutation (deterministic circulant layers)")
    challenge_generate.add_argument("--no-sidecar", action="store_true",
                                    help="write only the TSVs (skip the binary .npz cache)")
    # SUPPRESS defaults: shared with the parent `challenge` parser -- a
    # subparser default would silently clobber a value given before the
    # `generate` token (see the `verify` subparser below)
    challenge_generate.add_argument("--neurons", type=int, default=argparse.SUPPRESS)
    challenge_generate.add_argument("--layers", type=int, default=argparse.SUPPRESS)
    challenge_generate.add_argument("--connections", type=int, default=argparse.SUPPRESS)
    challenge_generate.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    challenge_generate.add_argument("--backend", default=argparse.SUPPRESS,
                                    help="sparse backend for the per-layer column permutation")
    challenge_run = challenge_sub.add_parser(
        "run",
        help="checkpointed streaming inference over a saved network directory "
        "(resumable, with background layer prefetch)",
    )
    challenge_run.add_argument("--dir", default=None, metavar="DIR",
                               help="network directory written by `challenge generate` / `--save-dir`")
    challenge_run.add_argument("--neurons", type=int, default=None,
                               help="neurons per layer of the saved network (required with --dir; "
                               "pass it after the `run` token)")
    challenge_run.add_argument("--resume", default=None, metavar="CKPT_DIR",
                               help="resume an interrupted run from its checkpoint directory "
                               "(all other parameters come from the checkpoint)")
    challenge_run.add_argument("--checkpoint", default=None, metavar="CKPT_DIR",
                               help="checkpoint directory (default: <network dir>/checkpoint "
                               "when checkpointing is on)")
    challenge_run.add_argument("--checkpoint-every", type=int, default=0, metavar="K",
                               help="atomically checkpoint the pipeline state every K layers (0 = off)")
    # SUPPRESS so a resume can tell "not given" (checkpoint's value) from
    # an explicit depth; fresh runs default to 2
    challenge_run.add_argument("--prefetch", type=int, default=argparse.SUPPRESS,
                               metavar="DEPTH",
                               help="layers read ahead on a background thread; 0 disables "
                               "load/compute overlap (default 2)")
    challenge_run.add_argument("--prefetch-transport", choices=["thread", "process"],
                               default=argparse.SUPPRESS,
                               help="how prefetch overlaps: in-process thread (default) or a "
                               "sidecar process (overlaps even GIL-bound TSV parsing; "
                               "falls back to thread where unavailable)")
    challenge_run.add_argument("--stop-after", type=int, default=None, metavar="L",
                               help="checkpoint and exit cleanly after layer L (staged runs; "
                               "continue with --resume)")
    challenge_run.add_argument("--shards", type=_positive_int, default=None, metavar="K",
                               help="tensor-parallel: partition every layer into K "
                               "column-range shards, each held by its own worker "
                               "process (bit-identical to unsharded; on --resume "
                               "defaults to the checkpoint's recorded count)")
    # SUPPRESS so a resume can tell "not given" (checkpoint's value) from
    # an explicit override, like --prefetch / --prefetch-transport
    challenge_run.add_argument("--shard-transport", choices=["process", "serial"],
                               default=argparse.SUPPRESS,
                               help="how shards exchange the activation frontier: a "
                               "worker-process pool (default; ~1/K model memory per "
                               "process) or in-process serial shards (falls back "
                               "automatically where processes cannot be spawned)")
    challenge_run.add_argument("--no-cache", action="store_true",
                               help="force TSV parsing (ignore the binary sidecar cache)")
    # SUPPRESS defaults: shared with the parent `challenge` parser (see
    # the `verify` subparser below)
    challenge_run.add_argument("--batch", type=int, default=argparse.SUPPRESS)
    challenge_run.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    challenge_run.add_argument("--backend", default=argparse.SUPPRESS,
                               help="sparse backend for the inference kernels")
    challenge_run.add_argument("--activations", choices=["auto", "dense", "sparse"],
                               default=argparse.SUPPRESS)
    challenge_run.add_argument("--sparse-crossover", type=float, default=argparse.SUPPRESS,
                               metavar="DENSITY")
    challenge_serve = challenge_sub.add_parser(
        "serve",
        help="long-lived serving instance: network resident, concurrent requests "
        "coalesced into micro-batches (newline-JSON protocol over TCP)",
    )
    challenge_serve.add_argument("--dir", default=None, metavar="DIR",
                                 help="network directory written by `challenge generate` / `--save-dir`")
    challenge_serve.add_argument("--neurons", type=int, default=None,
                                 help="neurons per layer of the saved network (required with --dir)")
    challenge_serve.add_argument("--warm-start", default=None, metavar="CKPT_DIR",
                                 help="warm restart: recover network directory, neurons, backend, "
                                 "and activation policy from a pipeline checkpoint directory")
    challenge_serve.add_argument("--host", default="127.0.0.1")
    challenge_serve.add_argument("--port", type=int, default=0,
                                 help="listening port (0 = pick an ephemeral port and report it)")
    challenge_serve.add_argument("--port-file", default=None, metavar="PATH",
                                 help="write 'host port' to PATH once listening (for scripted clients)")
    challenge_serve.add_argument("--max-batch", type=int, default=64, metavar="B",
                                 help="row budget per coalesced engine step (default 64)")
    challenge_serve.add_argument("--max-wait-ms", type=float, default=2.0, metavar="T",
                                 help="how long an open micro-batch waits for more rows (default 2ms)")
    # SUPPRESS: the parent `challenge` parser also defines --workers (its
    # process-pool fan-out); here it means batcher worker threads
    challenge_serve.add_argument("--workers", type=int, default=argparse.SUPPRESS,
                                 metavar="N",
                                 help="batcher worker threads draining the request queue "
                                 "(default min(cpu_count, 4))")
    challenge_serve.add_argument("--adaptive-batch", action="store_true",
                                 help="retune max-batch/max-wait-ms live from the "
                                 "batch-size and queue-latency distributions")
    challenge_serve.add_argument("--replicas", type=int, default=None, metavar="K",
                                 help="fork K shared-nothing engine processes behind a "
                                 "load balancer on --host/--port (same wire protocol)")
    challenge_serve.add_argument("--health-interval-ms", type=_positive_float,
                                 default=500.0, metavar="T",
                                 help="with --replicas: gap between balancer health "
                                 "pings of each replica (default 500ms)")
    challenge_serve.add_argument("--max-restarts", type=_nonnegative_int,
                                 default=2, metavar="N",
                                 help="with --replicas: crash restarts allowed per "
                                 "replica before the fleet gives it up (default 2)")
    challenge_serve.add_argument("--shards", type=_positive_int, default=None, metavar="K",
                                 help="tensor-parallel resident engine: keep each layer "
                                 "as K column-range slices and all-gather per step "
                                 "(bit-identical; a warm start defaults to the "
                                 "checkpoint's recorded count)")
    challenge_serve.add_argument("--prefetch", type=int, default=2, metavar="DEPTH",
                                 help="background read-ahead while loading the network resident")
    challenge_serve.add_argument("--no-cache", action="store_true",
                                 help="force TSV parsing for the one-time load (ignore the sidecar)")
    # SUPPRESS defaults: shared with the parent `challenge` parser (see
    # the `verify` subparser below)
    challenge_serve.add_argument("--backend", default=argparse.SUPPRESS,
                                 help="sparse backend for the serving kernels")
    challenge_serve.add_argument("--activations", choices=["auto", "dense", "sparse"],
                                 default=argparse.SUPPRESS)
    challenge_serve.add_argument("--sparse-crossover", type=float, default=argparse.SUPPRESS,
                                 metavar="DENSITY")
    challenge_bench_serve = challenge_sub.add_parser(
        "bench-serve",
        help="load-generate against a live serve instance and report "
        "requests/second + latency percentiles",
    )
    challenge_bench_serve.add_argument("--host", default="127.0.0.1")
    challenge_bench_serve.add_argument("--port", type=int, required=True)
    challenge_bench_serve.add_argument("--requests", type=int, default=100,
                                       help="total inference requests to fire (default 100)")
    challenge_bench_serve.add_argument("--clients", type=int, default=4,
                                       help="concurrent client connections (default 4)")
    challenge_bench_serve.add_argument("--rows", type=int, default=1, metavar="K",
                                       help="activation rows per request (default 1)")
    challenge_bench_serve.add_argument("--encoding", choices=["dense", "sparse"],
                                       default="dense",
                                       help="wire encoding for request rows")
    challenge_bench_serve.add_argument("--json", default=None, metavar="PATH",
                                       help="also write the full report as JSON to PATH")
    challenge_bench_serve.add_argument("--shutdown", action="store_true",
                                       help="send a graceful shutdown op after the load completes")
    challenge_bench_serve.add_argument("--timeout-s", type=_positive_float,
                                       default=120.0, metavar="T",
                                       help="per-request timeout; a hung server fails "
                                       "the request with a clean error (default 120)")
    challenge_bench_serve.add_argument("--sweep", action="store_true",
                                       help="saturation sweep: a clients x rows grid of "
                                       "measurements locating the knee of the "
                                       "throughput/latency curve")
    challenge_bench_serve.add_argument("--sweep-clients", default="1,2,4,8", metavar="LIST",
                                       help="comma-separated client counts for --sweep "
                                       "(default 1,2,4,8)")
    challenge_bench_serve.add_argument("--sweep-rows", default="1", metavar="LIST",
                                       help="comma-separated rows-per-request values for "
                                       "--sweep (default 1)")
    challenge_bench_serve.add_argument("--sweep-requests", type=int, default=60, metavar="N",
                                       help="requests per sweep grid point (default 60)")
    challenge_bench_serve.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    challenge_verify = challenge_sub.add_parser(
        "verify", help="cross-check a saved network directory against the dense reference"
    )
    challenge_verify.add_argument("--dir", required=True, help="directory written by `challenge --save-dir` (TSV + sidecar)")
    challenge_verify.add_argument("--neurons", type=int, required=True, help="neurons per layer of the saved network")
    # SUPPRESS defaults: these flags are also defined on the parent
    # `challenge` parser, and a subparser default would silently clobber
    # a value given before the `verify` token (argparse parses the
    # parent first, then lets the child's defaults overwrite)
    challenge_verify.add_argument("--batch", type=int, default=argparse.SUPPRESS)
    challenge_verify.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    challenge_verify.add_argument("--backend", default=argparse.SUPPRESS, help="sparse backend for the production path under test")
    challenge_verify.add_argument("--activations", choices=["auto", "dense", "sparse"], default=argparse.SUPPRESS)
    challenge_verify.add_argument("--no-cache", action="store_true", help="force TSV parsing (ignore the binary sidecar cache)")

    design = subparsers.add_parser("design", help="find a specification matching layer widths")
    design.add_argument("--layer-widths", type=parse_widths, required=True)
    design.add_argument("--max-n-prime", type=int, default=None)

    train_study = subparsers.add_parser(
        "train-study",
        help="train the accuracy-vs-density comparison arms and report/emit JSON",
    )
    train_study.add_argument(
        "--datasets", default="gaussian_mixture,two_spirals",
        help="comma-separated registered dataset names (default: gaussian_mixture,two_spirals)",
    )
    train_study.add_argument(
        "--arms", default="radix-net,random-xnet,dense,pruned",
        help="comma-separated arms to run (subset of radix-net,random-xnet,dense,pruned; "
        "random-xnet/pruned need radix-net, pruned also needs dense)",
    )
    train_study.add_argument("--epochs", type=_positive_int, default=10, help="training epochs per arm")
    train_study.add_argument("--samples", type=_positive_int, default=600, help="samples per dataset")
    train_study.add_argument(
        "--widths", type=parse_widths, default=[16, 32, 32, 8],
        help='target layer widths, e.g. "16,32,32,8"',
    )
    train_study.add_argument(
        "--classes", type=_positive_int, default=4,
        help="classes for class-count-configurable datasets (gaussian_mixture)",
    )
    train_study.add_argument("--seed", type=int, default=0)
    train_study.add_argument(
        "--dense-masked", action="store_true",
        help="train sparse arms as dense-masked layers instead of CSR layers "
        "(the pre-sparse-training code path)",
    )
    train_study.add_argument(
        "--backend", default=None,
        help="sparse backend for the CSR training kernels (default: active backend)",
    )
    train_study.add_argument("--output", default=None, help="write the full JSON report to this path")

    backends_parser = subparsers.add_parser(
        "backends", help="report sparse-kernel backend capabilities"
    )
    backends_parser.add_argument(
        "--probe", action="store_true",
        help="also micro-probe the performance tiers (the measurement "
        "behind --backend auto)",
    )

    return parser


# --------------------------------------------------------------------------- #
# subcommand implementations
# --------------------------------------------------------------------------- #
def _cmd_generate(args: argparse.Namespace) -> int:
    from repro.core.radixnet import generate_radixnet
    from repro.topology.io import save_npz

    net = generate_radixnet(args.systems, args.widths, name=args.name)
    print(f"generated {net!r}")
    if args.out:
        path = save_npz(net, args.out)
        print(f"saved to {path}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.analysis.compare import topology_report
    from repro.topology.io import load_npz
    from repro.viz.report import format_report_rows

    net = load_npz(args.path)
    print(format_report_rows([topology_report(net).as_row()]))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.core.radixnet import RadixNetSpec
    from repro.core.theory import verify_theorem_1

    spec = RadixNetSpec(args.systems, args.widths)
    check = verify_theorem_1(spec, backend=args.backend)
    print(f"specification: {spec}")
    print(f"symmetric: {check.symmetric}")
    print(f"paths per (input, output) pair: measured {check.measured_paths}, predicted {check.predicted_paths}")
    print(f"Theorem 1 verified: {check.matches_prediction}")
    return 0 if check.matches_prediction else 1


def _cmd_density(args: argparse.Namespace) -> int:
    from repro.core.density import approximate_density, asymptotic_density, effective_depth, exact_density
    from repro.core.radixnet import RadixNetSpec

    spec = RadixNetSpec(args.systems, args.widths)
    mu = spec.mean_radix()
    print(f"specification: {spec}")
    print(f"exact density (eq. 4):       {exact_density(spec):.6g}")
    print(f"approximation (eq. 5, mu/N'): {approximate_density(spec):.6g}")
    print(f"asymptotic (eq. 6, 1/mu^(d-1)): {asymptotic_density(mu, effective_depth(spec)):.6g}")
    return 0


def _cmd_challenge(args: argparse.Namespace) -> int:
    if getattr(args, "challenge_command", None) == "verify":
        return _cmd_challenge_verify(args)
    if getattr(args, "challenge_command", None) == "generate":
        return _cmd_challenge_generate(args)
    if getattr(args, "challenge_command", None) == "run":
        return _cmd_challenge_run(args)
    if getattr(args, "challenge_command", None) == "serve":
        return _cmd_challenge_serve(args)
    if getattr(args, "challenge_command", None) == "bench-serve":
        return _cmd_challenge_bench_serve(args)
    from repro.challenge.generator import challenge_input_batch, generate_challenge_network
    from repro.challenge.inference import ActivationPolicy, engine_for
    from repro.challenge.io import save_challenge_network
    from repro.challenge.verify import verify_categories

    if args.sparse_crossover is not None:
        policy = ActivationPolicy(mode=args.activations, crossover_density=args.sparse_crossover)
    else:
        policy = ActivationPolicy(mode=args.activations)
    network = generate_challenge_network(
        args.neurons, args.layers, connections=args.connections, seed=args.seed
    )
    batch = challenge_input_batch(args.neurons, args.batch, seed=args.seed + 1)
    engine = engine_for(network, args.backend)
    result = engine.run(
        batch, chunk_size=args.chunk_size, workers=args.workers, activations=policy
    )
    print(f"network: {network!r}")
    print(f"backend: {result.backend}")
    if result.layer_seconds:
        print(f"inference: {result.total_seconds:.4f}s, {result.edges_per_second:,.0f} edges/s")
    else:  # parallel fan-out does not collect per-layer timings
        print(f"inference: {result.edges_traversed:,} edges traversed (parallel run; per-layer timing off)")
    print(f"activations: policy {result.activation_policy}, "
          f"peak nnz {result.peak_activation_nnz:,} "
          f"(dense buffer would hold {args.batch * args.neurons:,})")
    if result.layer_modes:
        sparse_layers = result.layer_modes.count("sparse")
        print(f"layer modes: {sparse_layers} sparse / {len(result.layer_modes) - sparse_layers} dense")
    print(f"categories: {result.categories.size} of {args.batch}")
    if args.save_dir:
        saved = save_challenge_network(network, args.save_dir)
        print(f"saved network (TSV + sidecar cache) to {saved}")
    verified = verify_categories(network, batch, backend=args.backend, activations=policy)
    print(f"verified against dense reference: {verified}")
    return 0 if verified else 1


def _report_pipeline_outcome(outcome, *, resumed: bool) -> None:
    """Shared report body of `challenge run` (fresh and resumed paths)."""
    from repro.challenge.verify import category_checksum
    from repro.utils.timing import format_rss_mb, peak_rss_mb

    result = outcome.result
    print(f"backend: {result.backend}, activations: {result.activation_policy}")
    if resumed:
        print(f"resumed from checkpoint at layer {outcome.resumed_from}")
    print(f"layers: {outcome.layers_done} of {outcome.num_layers} applied")
    if result.layer_seconds:
        print(f"inference: {result.total_seconds:.4f}s, "
              f"{result.edges_per_second:,.0f} edges/s")
    print(f"activations: peak nnz {result.peak_activation_nnz:,}")
    if outcome.completed:
        print(f"categories: {result.categories.size} "
              f"(checksum {category_checksum(result.categories)})")
    else:
        print(f"stopped after layer {outcome.layers_done} (staged run; categories "
              "are not final)")
    if outcome.checkpoint is not None:
        print(f"checkpoint: {outcome.checkpoint}")
        if not outcome.completed:
            print(f"resume with: repro challenge run --resume {outcome.checkpoint.parent}")
    if outcome.shards:
        readings = [v for v in (outcome.shard_worker_rss_mb or []) if v is not None]
        if readings:
            print(f"shards: {outcome.shards} "
                  f"(max worker peak RSS {format_rss_mb(max(readings))})")
        else:
            print(f"shards: {outcome.shards} (serial transport)")
    print(f"peak RSS: {format_rss_mb(peak_rss_mb())}")


def _cmd_challenge_run(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.challenge.generator import challenge_input_batch
    from repro.challenge.inference import ActivationPolicy
    from repro.challenge.pipeline import (
        resume_challenge_pipeline,
        run_challenge_pipeline,
    )
    from repro.errors import ValidationError

    prefetch = getattr(args, "prefetch", None)
    transport = getattr(args, "prefetch_transport", None)
    if args.resume is not None:
        if args.dir is not None:
            raise ValidationError("--resume and --dir are mutually exclusive; the "
                                  "checkpoint records its network directory")
        outcome = resume_challenge_pipeline(
            args.resume,
            backend=args.backend,
            prefetch=prefetch,
            transport=transport,
            stop_after=args.stop_after,
            use_cache=False if args.no_cache else None,
            shards=args.shards,
            shard_transport=getattr(args, "shard_transport", None),
        )
        print(f"network: resumed run over {outcome.num_layers} layers")
        _report_pipeline_outcome(outcome, resumed=True)
        return 0
    if args.dir is None:
        raise ValidationError("challenge run needs --dir (fresh run) or --resume")
    if args.neurons is None:
        raise ValidationError("--neurons is required with --dir (pass it after the "
                              "`run` token)")
    if args.shards is not None and args.shards > args.neurons:
        # argument-error convention (exit 2), like the argparse-level
        # validation of non-positive --shards values
        print(f"error: --shards must be in 1..{args.neurons} (the neuron count), "
              f"got {args.shards}", file=sys.stderr)
        return 2
    if args.sparse_crossover is not None:
        policy = ActivationPolicy(mode=args.activations,
                                  crossover_density=args.sparse_crossover)
    else:
        policy = ActivationPolicy(mode=args.activations)
    checkpointing = (
        args.checkpoint is not None or args.checkpoint_every > 0
        or args.stop_after is not None
    )
    checkpoint_dir = None
    if checkpointing:
        checkpoint_dir = args.checkpoint or str(Path(args.dir) / "checkpoint")
    batch = challenge_input_batch(args.neurons, args.batch, seed=args.seed)
    outcome = run_challenge_pipeline(
        args.dir,
        args.neurons,
        batch,
        backend=args.backend,
        activations=policy,
        prefetch=2 if prefetch is None else prefetch,
        transport=transport or "thread",
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        stop_after=args.stop_after,
        use_cache=not args.no_cache,
        context={"batch_size": args.batch, "seed": args.seed},
        shards=args.shards,
        shard_transport=getattr(args, "shard_transport", None) or "process",
    )
    print(f"network: {args.dir} ({args.neurons} neurons x {outcome.num_layers} layers)")
    _report_pipeline_outcome(outcome, resumed=False)
    return 0


def _cmd_challenge_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.challenge.inference import ActivationPolicy
    from repro.errors import ValidationError
    from repro.serve import ServeApp, ServingEngine

    def on_ready(address: tuple[str, int]) -> None:
        import os

        host, port = address
        print(f"serving on {host}:{port} "
              f"(max_batch {args.max_batch}, max_wait {args.max_wait_ms}ms)", flush=True)
        if args.port_file:
            # write-then-rename: a polling client never reads a
            # created-but-not-yet-written file
            target = Path(args.port_file)
            temp = target.with_name(target.name + ".tmp")
            temp.write_text(f"{host} {port}\n")
            os.replace(temp, target)

    if args.shards is not None and args.neurons is not None and args.shards > args.neurons:
        # argument-error convention (exit 2), matching `challenge run`
        print(f"error: --shards must be in 1..{args.neurons} (the neuron count), "
              f"got {args.shards}", file=sys.stderr)
        return 2
    if args.replicas is not None:
        return _serve_fleet(args, on_ready)

    # the parent `challenge` parser defaults --activations to "auto"; treat
    # that as "not given" so a warm start keeps the checkpoint's policy
    # unless the user picked an explicit mode or crossover
    if args.sparse_crossover is not None:
        policy = ActivationPolicy(mode=args.activations,
                                  crossover_density=args.sparse_crossover)
    elif args.activations != "auto":
        policy = args.activations
    else:
        policy = None
    if args.warm_start is not None:
        if args.dir is not None:
            raise ValidationError("--warm-start and --dir are mutually exclusive; the "
                                  "checkpoint records its network directory")
        engine = ServingEngine.from_checkpoint(
            args.warm_start,
            backend=args.backend,
            activations=policy,
            use_cache=not args.no_cache,
            prefetch=args.prefetch,
            shards=args.shards,
        )
    else:
        if args.dir is None:
            raise ValidationError("challenge serve needs --dir (a saved network) or "
                                  "--warm-start (a checkpoint directory)")
        if args.neurons is None:
            raise ValidationError("--neurons is required with --dir (pass it after "
                                  "the `serve` token)")
        engine = ServingEngine.from_directory(
            args.dir,
            args.neurons,
            backend=args.backend,
            activations=policy,
            use_cache=not args.no_cache,
            prefetch=args.prefetch,
            shards=args.shards,
        )
    app = ServeApp(
        engine,
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        workers=args.workers,
        adaptive_batch=args.adaptive_batch,
    )
    print(f"engine: {engine!r} ({app.batcher.workers} workers"
          f"{', adaptive batching' if args.adaptive_batch else ''})")

    app.run(on_ready)
    stats = app.stats()
    print(f"served {stats['requests']} requests ({stats['rows']} rows) in "
          f"{stats['batches']} batches "
          f"(mean batch {stats['mean_batch_rows']:.1f} rows, "
          f"max {stats['max_batch_rows']})")
    return 0


def _serve_fleet(args: argparse.Namespace, on_ready) -> int:
    """`challenge serve --replicas K`: process fleet + load balancer.

    The fleet runs supervised: the balancer health-pings every replica
    each ``--health-interval-ms`` and a watcher thread restarts crashed
    replicas up to ``--max-restarts`` times each.
    """
    import tempfile

    from repro.serve.balancer import FleetSupervisor, LoadBalancer, ReplicaFleet
    from repro.serve.health import HealthPolicy

    activations = args.activations if args.activations != "auto" else None
    with tempfile.TemporaryDirectory(prefix="repro-fleet-") as workdir:
        with ReplicaFleet(
            args.replicas,
            directory=args.dir,
            neurons=args.neurons,
            warm_start=args.warm_start,
            workdir=workdir,
            host=args.host,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            workers=args.workers,
            adaptive_batch=args.adaptive_batch,
            backend=args.backend,
            activations=activations,
            shards=args.shards,
        ) as fleet:
            addresses = fleet.start()
            print(f"fleet: {len(addresses)} replicas at "
                  + ", ".join(f"{h}:{p}" for h, p in addresses), flush=True)
            # pids on their own line so ops tooling (and the CI chaos
            # smoke) can target a replica process directly
            print("fleet pids: " + " ".join(str(p) for p in fleet.pids), flush=True)
            balancer = LoadBalancer(
                addresses,
                host=args.host,
                port=args.port,
                health=HealthPolicy(interval_s=args.health_interval_ms / 1000.0),
            )
            supervisor = FleetSupervisor(
                fleet, balancer, max_restarts=args.max_restarts
            ).start()
            try:
                balancer.run(on_ready)
            finally:
                supervisor.stop()
            routed = balancer.balancer_stats()
            print(f"balanced {sum(routed['routed'])} requests across "
                  f"{routed['replicas']} replicas "
                  f"(per replica: {routed['routed']})")
            print(f"resilience: {routed['retries']} retries, "
                  f"{routed['restarts']} restarts, "
                  f"{routed['health']['ejections']} ejections, "
                  f"{routed['health']['pings_ok']} pings ok")
            fleet.stop()
    return 0


def _cmd_challenge_bench_serve(args: argparse.Namespace) -> int:
    import json as json_mod
    from pathlib import Path

    from repro.serve import bench_serve

    if args.sweep:
        return _bench_serve_sweep(args)

    report = bench_serve(
        args.host,
        args.port,
        requests=args.requests,
        clients=args.clients,
        rows_per_request=args.rows,
        seed=args.seed,
        encoding=args.encoding,
        shutdown=args.shutdown,
        timeout_s=args.timeout_s,
    )
    server = report["server"]
    print(f"server: {server['neurons']} neurons x {server['layers']} layers, "
          f"backend {server['backend']}, activations {server['activations']}")
    print(f"load: {report['requests']} requests x {report['rows_per_request']} rows "
          f"from {report['clients']} clients ({report['encoding']} encoding)")
    print(f"completed: {report['completed']} of {report['requests']} "
          f"({report['errors']} errors) in {report['wall_seconds']:.3f}s")
    print(f"throughput: {report['requests_per_second']:,.1f} requests/s, "
          f"{report['rows_per_second']:,.1f} rows/s")
    print(f"latency: p50 {report['latency_p50_ms']:.2f}ms, "
          f"p95 {report['latency_p95_ms']:.2f}ms, "
          f"p99 {report['latency_p99_ms']:.2f}ms, "
          f"max {report['latency_max_ms']:.2f}ms")
    batches = report["server_stats"].get("batches")
    if batches:
        print(f"server batching: {batches} engine steps, "
              f"mean batch {report['server_stats']['mean_batch_rows']:.1f} rows, "
              f"max {report['server_stats']['max_batch_rows']}")
    if args.shutdown:
        print(f"shutdown: {'acknowledged' if report['shutdown_ok'] else 'FAILED'}")
    if args.json:
        Path(args.json).write_text(json_mod.dumps(report, indent=2) + "\n")
        print(f"report written to {args.json}")
    return 0 if report["errors"] == 0 and report["completed"] == report["requests"] else 1


def _bench_serve_sweep(args: argparse.Namespace) -> int:
    """`challenge bench-serve --sweep`: locate the saturation knee."""
    import json as json_mod
    from pathlib import Path

    from repro.serve import ServeClient, saturation_sweep

    clients_grid = tuple(int(v) for v in args.sweep_clients.split(","))
    rows_grid = tuple(int(v) for v in args.sweep_rows.split(","))
    report = saturation_sweep(
        args.host,
        args.port,
        clients_grid=clients_grid,
        rows_grid=rows_grid,
        requests_per_point=args.sweep_requests,
        seed=args.seed,
        encoding=args.encoding,
    )
    print(f"sweep: clients {list(clients_grid)} x rows {list(rows_grid)}, "
          f"{args.sweep_requests} requests/point ({args.encoding} encoding)")
    for point in report["grid"]:
        extra = ""
        if "queue_wait_mean_ms" in point:
            extra = (f", queue {point['queue_wait_mean_ms']:.2f}ms / "
                     f"compute {point['service_mean_ms']:.2f}ms")
        print(f"  clients {point['clients']:>3} x rows {point['rows_per_request']:>3}: "
              f"{point['requests_per_second']:,.1f} req/s, "
              f"p50 {point['latency_p50_ms']:.2f}ms, "
              f"p99 {point['latency_p99_ms']:.2f}ms"
              f" ({point['errors']} errors){extra}")
    knee = report["knee"]
    if knee is not None:
        print(f"knee: {knee['clients']} clients x {knee['rows_per_request']} rows -> "
              f"{knee['requests_per_second']:,.1f} req/s at "
              f"p99 {knee['latency_p99_ms']:.2f}ms "
              f"({'saturated' if knee['saturated'] else 'still climbing at grid edge'})")
    if args.shutdown:
        with ServeClient(args.host, args.port) as client:
            ok = bool(client.shutdown().get("ok"))
        print(f"shutdown: {'acknowledged' if ok else 'FAILED'}")
    if args.json:
        Path(args.json).write_text(json_mod.dumps(report, indent=2) + "\n")
        print(f"report written to {args.json}")
    return 0 if report["errors"] == 0 else 1


def _cmd_challenge_generate(args: argparse.Namespace) -> int:
    import time

    from repro.challenge.generator import iter_generate_challenge_layers
    from repro.challenge.io import save_challenge_layers
    from repro.utils.timing import format_rss_mb, peak_rss_mb

    neurons, layers = args.neurons, args.layers
    connections = args.connections
    start = time.perf_counter()
    directory = save_challenge_layers(
        args.out,
        iter_generate_challenge_layers(
            neurons,
            layers,
            connections=connections,
            threshold=args.threshold,
            seed=args.seed,
            shuffle_neurons=not args.no_shuffle,
            backend=args.backend,
        ),
        neurons=neurons,
        num_layers=layers,
        threshold=args.threshold,
        write_sidecar=not args.no_sidecar,
    )
    seconds = time.perf_counter() - start
    edges = neurons * connections * layers
    print(f"network: {neurons} neurons x {layers} layers, "
          f"{connections} connections/neuron ({edges:,} edges)")
    print(f"generation+write: {seconds:.4f}s, {edges / seconds:,.0f} edges/s "
          f"(streaming: peak weight memory is one layer's nnz)")
    sidecar_note = "TSV only" if args.no_sidecar else "TSV + sidecar cache"
    print(f"saved to {directory} ({sidecar_note})")
    print(f"peak RSS: {format_rss_mb(peak_rss_mb())} "
          f"(dense per-layer buffer would be {neurons * neurons * 8 / 2**20:,.1f} MB)")
    return 0


def _cmd_challenge_verify(args: argparse.Namespace) -> int:
    from repro.challenge.generator import challenge_input_batch
    from repro.challenge.inference import sparse_dnn_inference
    from repro.challenge.io import load_challenge_network
    from repro.challenge.verify import category_checksum, reference_categories

    import numpy as np

    network = load_challenge_network(args.dir, args.neurons, use_cache=not args.no_cache)
    batch = challenge_input_batch(args.neurons, args.batch, seed=args.seed)
    result = sparse_dnn_inference(
        network, batch, record_timing=False,
        backend=args.backend, activations=args.activations,
    )
    reference = reference_categories(network, batch)
    verified = bool(np.array_equal(result.categories, reference))
    print(f"network: {network!r} (loaded from {args.dir})")
    print(f"backend: {result.backend}, activations: {result.activation_policy}")
    print(f"categories: {result.categories.size} of {args.batch} "
          f"(checksum {category_checksum(result.categories)})")
    print(f"verified against dense reference: {verified}")
    return 0 if verified else 1


def _cmd_design(args: argparse.Namespace) -> int:
    from repro.core.designer import design_for_widths
    from repro.core.density import exact_density

    result = design_for_widths(args.layer_widths, max_n_prime=args.max_n_prime)
    print(f"target widths:   {tuple(args.layer_widths)}")
    print(f"achieved widths: {result.achieved}")
    print(f"specification:   {result.spec}")
    print(f"density:         {exact_density(result.spec):.6g}")
    print(f"width error:     {result.error}")
    return 0


def _cmd_train_study(args: argparse.Namespace) -> int:
    import contextlib
    import json

    import repro.backends as backends
    from repro.experiments.training import train_study

    datasets = tuple(part for part in args.datasets.replace(" ", "").split(",") if part)
    arms = tuple(part for part in args.arms.replace(" ", "").split(",") if part)
    scope = backends.use(args.backend) if args.backend else contextlib.nullcontext()
    with scope:
        report = train_study(
            datasets=datasets,
            num_samples=args.samples,
            num_classes=args.classes,
            layer_widths=tuple(args.widths),
            epochs=args.epochs,
            seed=args.seed,
            arms=arms,
            sparse_training=not args.dense_masked,
        )
    mode = "dense-masked" if args.dense_masked else "sparse (CSR + backend kernels)"
    print(f"train-study: {len(report['datasets'])} dataset(s), "
          f"arms {report['config']['arms']}, {args.epochs} epoch(s), {mode}")
    for dataset, entry in report["datasets"].items():
        print(f"\n{dataset} ({entry['num_classes']} classes):")
        for arm_name, arm in entry["arms"].items():
            print(
                f"  {arm_name:<12} density={arm['density']:.4f}  "
                f"params={arm['parameter_count']:<7d} "
                f"val_acc={arm['val_accuracy']:.4f}  "
                f"loss={arm['train_loss']:.4f}"
            )
        for arm_name, gap in entry.get("accuracy_gap_vs_dense", {}).items():
            print(f"  gap vs dense  {arm_name}: {gap:+.4f}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"\nreport written to {args.output}")
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    import repro.backends as backends

    print(backends.format_capability_report(include_probe=args.probe))
    print(f"(active = current default; override with repro.backends.use(...), "
          f"--backend, or the {backends.DEFAULT_BACKEND_ENV} environment variable; "
          f"'auto' picks the fastest tier)")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "info": _cmd_info,
    "verify": _cmd_verify,
    "density": _cmd_density,
    "challenge": _cmd_challenge,
    "design": _cmd_design,
    "train-study": _cmd_train_study,
    "backends": _cmd_backends,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except UnknownBackendError as error:
        # argument-error convention (argparse exits 2): a mistyped or
        # not-installed --backend / REPRO_BACKEND name
        print(f"error: {error}", file=sys.stderr)
        return 2
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
