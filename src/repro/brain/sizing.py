"""Sizing RadiX-Nets to brain-like neuron/synapse budgets.

A layered RadiX-Net with uniform dense width ``D``, per-layer node count
``n = D * N'``, ``L`` edge layers, and per-node out-degree ``k`` (the
product of the dense fan-out ``D`` and the radix of that layer) has

    neurons  = n * (L + 1)
    synapses = n * L * k

Given targets for neurons, synapses, and depth, :func:`size_radixnet_for_target`
chooses the radix (connections per neuron), ``N'``, and ``D`` that
reproduce the target connections-per-neuron ratio, reporting the relative
error on each quantity.  :func:`instantiate_scaled` builds an actual
in-memory topology after dividing the counts by a scale factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.core.radixnet import RadixNetSpec, generate_from_spec
from repro.numeral.factorization import balanced_radix_list
from repro.topology.fnnt import FNNT
from repro.utils.validation import check_positive_int


@dataclass(frozen=True)
class BrainScaleTarget:
    """A target size/sparsity point: total neurons, total synapses, layer count."""

    name: str
    neurons: float
    synapses: float
    layers: int

    @property
    def synapses_per_neuron(self) -> float:
        """Average out-degree implied by the target."""
        return self.synapses / self.neurons

    @property
    def implied_density(self) -> float:
        """Density of a layered net with these totals relative to dense layers."""
        neurons_per_layer = self.neurons / (self.layers + 1)
        return self.synapses_per_neuron / neurons_per_layer


#: Approximate human brain: ~8.6e10 neurons, ~1e14 synapses.
HUMAN_BRAIN = BrainScaleTarget(name="human", neurons=8.6e10, synapses=1.0e14, layers=120)

#: Approximate mouse brain: ~7.1e7 neurons, ~1e11 synapses.
MOUSE_BRAIN = BrainScaleTarget(name="mouse", neurons=7.1e7, synapses=1.0e11, layers=32)


@dataclass(frozen=True)
class SizingResult:
    """Chosen RadiX-Net parameters for a brain-scale target."""

    target: BrainScaleTarget
    radix: int
    n_prime: int
    dense_width: int
    layers: int
    neurons_per_layer: int
    achieved_neurons: float
    achieved_synapses: float

    @property
    def neuron_error(self) -> float:
        """Relative error on the neuron count."""
        return abs(self.achieved_neurons - self.target.neurons) / self.target.neurons

    @property
    def synapse_error(self) -> float:
        """Relative error on the synapse count."""
        return abs(self.achieved_synapses - self.target.synapses) / self.target.synapses

    def spec(self, *, max_nodes: int | None = None) -> RadixNetSpec:
        """A RadiX-Net specification realizing (a possibly scaled copy of) this sizing."""
        scale_note = "" if max_nodes is None else "-scaled"
        radices = balanced_radix_list(self.n_prime, max(1, round(math.log(self.n_prime, self.radix))))
        widths = [self.dense_width] * (len(radices) + 1)
        return RadixNetSpec([radices], widths, name=f"brain-{self.target.name}{scale_note}")


def size_radixnet_for_target(
    target: BrainScaleTarget,
    *,
    radix: int | None = None,
) -> SizingResult:
    """Choose RadiX-Net parameters matching a brain-scale target.

    The per-neuron out-degree (``radix``, i.e. connections contributed by
    the mixed-radix structure at dense width 1) defaults to the rounded
    target synapses-per-neuron divided by the layer count... in practice the
    challenge-style construction keeps degree constant per layer, so
    ``degree = synapses_per_neuron`` rounded to the nearest power of two.
    ``N'`` and the dense width are then set so the per-layer neuron count
    matches the target.
    """
    if target.neurons <= 0 or target.synapses <= 0 or target.layers <= 0:
        raise ValidationError("target quantities must be positive")
    degree = radix if radix is not None else int(2 ** round(math.log2(max(2.0, target.synapses_per_neuron))))
    degree = check_positive_int(degree, "radix", minimum=2)
    neurons_per_layer = max(degree, int(round(target.neurons / (target.layers + 1))))
    # round neurons_per_layer up to a multiple of the degree so an exact
    # mixed-radix layer exists
    neurons_per_layer = int(math.ceil(neurons_per_layer / degree) * degree)
    n_prime = neurons_per_layer  # dense width 1: all structure in the radix part
    dense_width = 1
    achieved_neurons = float(neurons_per_layer * (target.layers + 1))
    achieved_synapses = float(neurons_per_layer * target.layers * degree)
    return SizingResult(
        target=target,
        radix=degree,
        n_prime=n_prime,
        dense_width=dense_width,
        layers=target.layers,
        neurons_per_layer=neurons_per_layer,
        achieved_neurons=achieved_neurons,
        achieved_synapses=achieved_synapses,
    )


def instantiate_scaled(
    sizing: SizingResult,
    *,
    scale: float = 1e-6,
    max_layers: int = 8,
    max_neurons: int = 512,
) -> FNNT:
    """Materialize a scaled-down topology preserving the design's *sparsity shape*.

    ``scale`` divides the per-layer neuron count, clipped to
    ``[8, max_neurons]``; ``max_layers`` caps the depth.  The per-neuron
    degree is the full-size degree when it still fits (at most a quarter of
    the scaled layer width, so the instance stays clearly sparse) and is
    reduced proportionally otherwise -- the full 1e14-synapse design cannot
    be held in memory, which is exactly why the scaled instance exists.
    """
    if not 0 < scale <= 1:
        raise ValidationError("scale must be in (0, 1]")
    max_layers = check_positive_int(max_layers, "max_layers")
    max_neurons = check_positive_int(max_neurons, "max_neurons", minimum=8)
    raw_neurons = int(np.clip(round(sizing.neurons_per_layer * scale), 8, max_neurons))
    degree = max(2, min(sizing.radix, raw_neurons // 4))
    scaled_neurons = int(math.ceil(raw_neurons / degree) * degree)
    layers = min(sizing.layers, max_layers)
    from repro.challenge.generator import generate_challenge_network

    network = generate_challenge_network(
        scaled_neurons,
        layers,
        connections=degree,
        shuffle_neurons=False,
        seed=0,
    )
    return network.topology
