"""Brain-scale sizing of RadiX-Nets.

The paper notes (Conclusions) that RadiX-Net is used to construct "a neural
net simulating the size and sparsity of the human brain" (Wang & Kepner,
unpublished).  That companion work is not published, so this subpackage
reproduces the *sizing arithmetic*: given target neuron and synapse counts
(and therefore a target connections-per-neuron figure), find RadiX-Net
parameters ``(N*, D)`` whose generated topology matches those targets, and
instantiate scaled-down versions that fit in memory.
"""

from repro.brain.sizing import (
    BrainScaleTarget,
    HUMAN_BRAIN,
    MOUSE_BRAIN,
    size_radixnet_for_target,
    instantiate_scaled,
)

__all__ = [
    "BrainScaleTarget",
    "HUMAN_BRAIN",
    "MOUSE_BRAIN",
    "size_radixnet_for_target",
    "instantiate_scaled",
]
