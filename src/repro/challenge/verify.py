"""Verification of Graph Challenge inference results.

The official benchmark checks submissions by comparing the surviving
category list against a reference.  Here the reference is a deliberately
naive dense re-implementation of the recurrence; :func:`verify_categories`
cross-checks the production kernel against it.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.challenge.generator import ChallengeNetwork
from repro.challenge.inference import sparse_dnn_inference


def reference_categories(network: ChallengeNetwork, inputs: np.ndarray) -> np.ndarray:
    """Dense NumPy reference implementation of the inference recurrence."""
    y = np.asarray(inputs, dtype=np.float64).copy()
    for weight, bias in zip(network.weights, network.biases):
        z = y @ weight.to_dense()
        active = y.sum(axis=1) > 0
        z[active] += bias
        y = np.clip(z, 0.0, network.threshold)
    return np.flatnonzero(y.sum(axis=1) > 0)


def verify_categories(
    network: ChallengeNetwork,
    inputs: np.ndarray,
    *,
    backend=None,
    activations=None,
) -> bool:
    """True if the sparse kernel and the dense reference agree on the categories.

    ``backend`` / ``activations`` select the production path under test
    (sparse-kernel backend and activation storage policy); the reference
    side is always the naive dense recurrence.
    """
    sparse_result = sparse_dnn_inference(
        network, inputs, record_timing=False, backend=backend, activations=activations
    )
    dense_result = reference_categories(network, inputs)
    return bool(np.array_equal(sparse_result.categories, dense_result))


def category_checksum(categories: np.ndarray) -> str:
    """A stable hex digest of a category list (for recording results compactly)."""
    data = np.asarray(categories, dtype=np.int64).tobytes()
    return hashlib.sha256(data).hexdigest()[:16]
