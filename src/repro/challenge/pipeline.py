"""Staged streaming-inference pipeline: load -> compute -> checkpoint.

The Graph Challenge recurrence at official scale (16384/65536 neurons,
120-1920 layers) is a long-running, I/O-bound job: every layer must be
read (or generated) before it can multiply, and a single in-process loop
that dies at layer 1700 of 1920 restarts from zero.  This module
decomposes one run into three explicit stages:

* :class:`LoadStage` -- produces ``(weight, weight_t, bias)`` triples
  from any layer source (an in-memory network, the ``.npz`` sidecar /
  TSV files of a saved network, a generator), optionally on a background
  prefetch thread with a bounded queue so layer ``l+1`` is being parsed
  from disk while layer ``l`` computes (see
  :class:`repro.parallel.pipeline.Prefetcher`);
* :class:`ComputeStage` -- advances the
  :class:`~repro.challenge.inference.ActivationBatch` through one layer
  under the :class:`~repro.challenge.inference.ActivationPolicy` (the
  existing dense-SpMM / fused-SpGEMM kernels), accumulating the per-layer
  stats every :class:`~repro.challenge.inference.InferenceResult`
  reports;
* :class:`CheckpointStage` -- atomically serializes the full pipeline
  state (activation batch, layer cursor, policy, accumulated stats) to
  disk every ``K`` layers, so an interrupted run resumes from its last
  checkpoint (``repro challenge run --resume DIR``) instead of
  restarting.

:func:`run_pipeline` is the **single** recurrence implementation:
:meth:`repro.challenge.inference.InferenceEngine.run`/``stream``, the
process-pool chunk workers, and
:func:`repro.challenge.inference.streaming_inference` are all thin
drivers over it.  :func:`run_challenge_pipeline` /
:func:`resume_challenge_pipeline` are the disk-backed drivers used by
``repro challenge run``: they stream a saved network directory through
the stages, seek back to the checkpointed layer via
:func:`repro.challenge.io.read_layer`-style random access
(:func:`repro.challenge.io.iter_challenge_layers` with ``start=``), and
produce bit-identical results whether or not the run was interrupted.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.backends import resolve_backend
from repro.backends.base import SparseBackend
from repro.challenge.inference import (
    DENSE,
    SPARSE,
    ActivationBatch,
    ActivationPolicy,
    DenseActivations,
    InferenceResult,
    SparseActivations,
)
from repro.errors import SerializationError, ShapeError, ValidationError
from repro.sparse.csr import CSRMatrix

CHECKPOINT_VERSION = 1
CHECKPOINT_NAME = "pipeline-checkpoint.npz"

# a layer as the compute stage consumes it; either of weight / weight_t
# may be None (see ComputeStage.advance)
LayerTriple = tuple[CSRMatrix | None, CSRMatrix | None, np.ndarray]


# --------------------------------------------------------------------------- #
# pipeline state
# --------------------------------------------------------------------------- #
@dataclass
class PipelineState:
    """Everything the recurrence has accumulated after ``layers_done`` layers.

    This is the unit of checkpointing: the activation batch *is* the
    recurrence's entire carried state (layers already applied never
    matter again), so persisting ``(batch, layers_done, stats)`` and
    replaying layers ``layers_done+1..`` reproduces an uninterrupted run
    bit for bit.
    """

    batch: ActivationBatch
    rows: int
    layers_done: int = 0
    layer_seconds: list[float] = field(default_factory=list)
    layer_modes: list[str] = field(default_factory=list)
    layer_density: list[float] = field(default_factory=list)
    peak_nnz: int = 0
    edges_per_sample: int = 0

    @classmethod
    def initial(cls, inputs: np.ndarray, *, neurons: int | None = None) -> "PipelineState":
        """Fresh state from a dense ``(batch, neurons)`` input matrix."""
        y = np.asarray(inputs, dtype=np.float64)
        if y.ndim != 2:
            raise ShapeError(f"inputs must be 2-D (batch, neurons), got shape {y.shape}")
        if neurons is not None and y.shape[1] != neurons:
            raise ShapeError(
                f"inputs must have shape (batch, {neurons}), got {y.shape}"
            )
        batch = DenseActivations(y)
        return cls(batch=batch, rows=y.shape[0], peak_nnz=batch.nnz())

    def result(self, *, backend: str, policy: ActivationPolicy) -> InferenceResult:
        """Materialize the state into an :class:`InferenceResult`."""
        return InferenceResult(
            activations=self.batch.to_array(),
            categories=self.batch.categories(),
            layer_seconds=list(self.layer_seconds),
            edges_traversed=self.edges_per_sample * self.rows,
            backend=backend,
            activation_policy=policy.mode,
            layer_modes=list(self.layer_modes),
            layer_density=list(self.layer_density),
            peak_activation_nnz=self.peak_nnz,
        )


# --------------------------------------------------------------------------- #
# load stage
# --------------------------------------------------------------------------- #
def _normalize_layer(layer: tuple) -> LayerTriple:
    """Accept ``(weight, bias)`` or ``(weight, weight_t, bias)``."""
    if len(layer) == 2:
        weight, bias = layer
        weight_t = None
    elif len(layer) == 3:
        weight, weight_t, bias = layer
    else:
        raise ValidationError(
            f"layer items must be (weight, bias) or (weight, weight_t, bias) "
            f"tuples, got length {len(layer)}"
        )
    return weight, weight_t, np.asarray(bias, dtype=np.float64)


THREAD = "thread"
PROCESS = "process"
_TRANSPORTS = (THREAD, PROCESS)

# sharded execution exchanges the activation frontier either inside the
# driving process ("serial") or with a pool of resident-shard worker
# processes ("process") -- see repro.parallel.sharding
SERIAL = "serial"
_SHARD_TRANSPORTS = (PROCESS, SERIAL)


def _process_layer_producer(
    out_queue, directory: str, neurons: int, start: int, use_cache: bool, mmap: bool
) -> None:
    """Sidecar-process body: parse layers, ship their CSR arrays back.

    Runs in a child process so TSV parsing (which holds the GIL) truly
    overlaps the parent's compute kernels on multi-core machines.  Ships
    raw ``(shape, indptr, indices, data, bias)`` tuples -- cheap to
    pickle -- and relays any failure as an ``("error", exc)`` message.
    """
    from repro.challenge.io import iter_challenge_layers

    try:
        for weight, bias in iter_challenge_layers(
            directory, neurons, start=start, use_cache=use_cache, mmap=mmap
        ):
            out_queue.put(
                ("item", (weight.shape, weight.indptr, weight.indices, weight.data, bias))
            )
        out_queue.put(("done", None))
    except BaseException as exc:  # noqa: BLE001 - relayed to the consumer
        try:
            out_queue.put(("error", exc))
        except Exception:  # exception not picklable: relay its repr
            out_queue.put(("error", RuntimeError(repr(exc))))


def _iter_process_prefetched(
    directory: str,
    neurons: int,
    *,
    start: int,
    use_cache: bool,
    mmap: bool,
    depth: int,
) -> Iterator[tuple[CSRMatrix, np.ndarray]]:
    """Yield ``(weight, bias)`` produced by a bounded sidecar process.

    ``Process.start()`` runs eagerly, so the ``OSError`` /
    ``PermissionError`` / ``RuntimeError`` of a restricted environment
    surfaces at the call (callers fall back to the in-process thread
    transport), not on first iteration.
    """
    import multiprocessing
    import queue as queue_mod

    ctx = multiprocessing.get_context()
    out_queue = ctx.Queue(maxsize=depth)
    producer = ctx.Process(
        target=_process_layer_producer,
        args=(out_queue, str(directory), int(neurons), int(start), use_cache, mmap),
        daemon=True,
    )
    producer.start()

    def _consume() -> Iterator[tuple[CSRMatrix, np.ndarray]]:
        try:
            while True:
                try:
                    kind, payload = out_queue.get(timeout=0.1)
                except queue_mod.Empty:
                    if not producer.is_alive():
                        raise SerializationError(
                            "layer prefetch process died without a result"
                        ) from None
                    continue
                if kind == "done":
                    return
                if kind == "error":
                    raise payload
                shape, indptr, indices, data, bias = payload
                yield CSRMatrix(shape, indptr, indices, data), bias
        finally:
            if producer.is_alive():
                producer.terminate()
            producer.join(timeout=5.0)

    return _consume()


class LoadStage:
    """Produce layer triples for the compute stage, optionally prefetched.

    ``layers`` is any iterable of ``(weight, bias)`` or
    ``(weight, weight_t, bias)`` tuples.  With ``prefetch > 0`` the
    source is consumed on a background thread through a bounded queue of
    that depth -- at most ``prefetch`` layers (plus the one computing)
    are ever resident, and the producer's I/O overlaps the consumer's
    kernels.  ``prefetch=0`` is plain serial iteration.  Use as a
    context manager so an early exit (error, ``stop_after``) shuts the
    producer down promptly.

    For disk-backed sources, :meth:`from_directory` additionally offers
    ``transport="process"``: the layers are parsed in a sidecar
    *process* and their CSR arrays shipped through a bounded queue,
    which overlaps even the GIL-holding TSV parse with the compute
    kernels (the thread transport can only overlap the I/O and
    GIL-releasing sections).  It degrades to the thread transport
    automatically where processes cannot be spawned.
    """

    def __init__(self, layers: Iterable[tuple], *, prefetch: int = 0) -> None:
        if prefetch < 0:
            raise ValidationError(f"prefetch must be >= 0, got {prefetch}")
        self.prefetch = int(prefetch)
        self._source = (_normalize_layer(layer) for layer in layers)
        self._iter: Iterator[LayerTriple] | None = None
        # extra teardown hooks (e.g. the process-transport consumer, whose
        # close() terminates the sidecar process deterministically)
        self._closers: list = []

    @classmethod
    def from_directory(
        cls,
        directory: str | os.PathLike,
        neurons: int,
        *,
        start: int = 0,
        prefetch: int = 2,
        use_cache: bool = True,
        mmap: bool = True,
        transport: str = THREAD,
    ) -> "LoadStage":
        """Stream a saved network directory, skipping ``start`` layers.

        Layers come from the fresh ``.npz`` sidecar (memory-mapped) or
        the per-layer TSVs; the skip is a free seek, not a parse (layer
        files are independent), which is what makes resuming from a
        checkpoint at layer ``k`` O(remaining layers).  ``transport``
        selects how ``prefetch > 0`` overlaps: a background thread
        (default) or a sidecar process (see the class docstring).
        """
        from repro.challenge.io import iter_challenge_layers

        if transport not in _TRANSPORTS:
            raise ValidationError(
                f"transport must be one of {_TRANSPORTS}, got {transport!r}"
            )
        if transport == PROCESS and prefetch > 0:
            try:
                source = _iter_process_prefetched(
                    str(directory),
                    neurons,
                    start=start,
                    use_cache=use_cache,
                    mmap=mmap,
                    depth=prefetch,
                )
                # the sidecar process already bounds the read-ahead; the
                # consuming generator runs in-line (prefetch=0 here)
                stage = cls(source, prefetch=0)
                stage._closers.append(source.close)
                return stage
            except (OSError, PermissionError, RuntimeError):
                pass  # restricted environment: fall back to the thread
        return cls(
            iter_challenge_layers(
                directory, neurons, start=start, use_cache=use_cache, mmap=mmap
            ),
            prefetch=prefetch,
        )

    def __enter__(self) -> "LoadStage":
        # lazy: repro.parallel.pipeline imports repro.challenge.inference at
        # module level, so a top-level import here would be circular
        from repro.parallel.pipeline import prefetched

        self._iter = prefetched(self._source, self.prefetch)
        return self

    def __exit__(self, *exc_info: object) -> None:
        close = getattr(self._iter, "close", None)
        if close is not None:
            close()
        self._iter = None
        for close in self._closers:
            close()

    def __iter__(self) -> Iterator[LayerTriple]:
        if self._iter is None:
            # not in a `with` block: serial iteration straight off the source
            return iter(self._source)
        return self._iter


# --------------------------------------------------------------------------- #
# compute stage
# --------------------------------------------------------------------------- #
class ComputeStage:
    """Advance the activation batch through one layer at a time.

    Owns the policy decision (dense SpMM vs fused sparse SpGEMM), the
    per-layer timing, and the stats accumulation; mutates the
    :class:`PipelineState` in place so the checkpoint stage always sees
    the complete post-layer state.
    """

    def __init__(
        self,
        *,
        threshold: float,
        backend: SparseBackend,
        policy: ActivationPolicy,
        record_timing: bool = True,
    ) -> None:
        self.threshold = float(threshold)
        self.backend = backend
        self.policy = policy
        self.record_timing = record_timing

    def advance(
        self,
        state: PipelineState,
        weight: CSRMatrix | None,
        weight_t: CSRMatrix | None,
        bias: np.ndarray,
    ) -> None:
        """Apply one layer.  Either of ``weight`` / ``weight_t`` may be
        ``None``: the dense path transposes on demand when only ``weight``
        is present, and the sparse path (which needs the untransposed
        ``weight``) falls back to dense when only ``weight_t`` is."""
        ref = weight if weight is not None else weight_t
        if ref is None:
            raise ValidationError("each layer needs a weight or transposed weight")
        self._advance(
            state,
            in_size=ref.shape[0] if weight is not None else ref.shape[1],
            nnz=ref.nnz,
            has_weight=weight is not None,
            any_positive_bias=bool(np.any(bias > 0.0)),
            step=lambda batch, target: batch.step(
                weight, weight_t, bias, self.threshold, self.backend
            ),
        )

    def _advance(
        self,
        state: PipelineState,
        *,
        in_size: int,
        nnz: int,
        has_weight: bool,
        any_positive_bias: bool,
        step,
    ) -> None:
        """The policy/timing/stats frame around one layer step.

        ``step(batch, target)`` performs the actual kernel work on the
        already-converted batch.  Subclasses (the sharded compute stage)
        swap the step while inheriting the policy decision, the sparse
        gate, and the bookkeeping unchanged -- which is what keeps their
        recorded stats identical to an unsharded run.
        """
        batch = state.batch
        if in_size != batch.neurons:
            raise ShapeError(
                f"layer expects {in_size} input neurons, activations have {batch.neurons}"
            )
        state.edges_per_sample += nnz
        target = self.policy.pick(density=batch.density(), elements=batch.elements)
        if target == SPARSE and (
            state.rows == 0 or not has_weight or any_positive_bias
        ):
            if self.policy.mode == SPARSE and state.rows > 0 and has_weight:
                raise ValidationError(
                    "sparse activation policy requires non-positive biases "
                    "(a positive bias activates entries outside the sparse "
                    "product's pattern); use activations='dense' or 'auto'"
                )
            target = DENSE
        start = time.perf_counter() if self.record_timing else 0.0
        batch = batch.to_sparse() if target == SPARSE else batch.to_dense()
        batch = step(batch, target)
        if self.record_timing:
            state.layer_seconds.append(time.perf_counter() - start)
        nnz_out = batch.nnz()
        state.batch = batch
        state.layers_done += 1
        state.peak_nnz = max(state.peak_nnz, nnz_out)
        state.layer_modes.append(target)
        state.layer_density.append(nnz_out / batch.elements if batch.elements else 0.0)


# --------------------------------------------------------------------------- #
# checkpoint stage
# --------------------------------------------------------------------------- #
@dataclass
class PipelineCheckpoint:
    """A loaded on-disk checkpoint: resumable state plus run description."""

    state: PipelineState
    policy: ActivationPolicy
    threshold: float
    backend: str
    num_layers: int
    every: int
    completed: bool
    context: dict
    path: Path


def checkpoint_path(directory: str | os.PathLike) -> Path:
    """Location of the checkpoint file inside a checkpoint directory."""
    return Path(directory) / CHECKPOINT_NAME


def save_checkpoint(
    directory: str | os.PathLike,
    state: PipelineState,
    *,
    policy: ActivationPolicy,
    threshold: float,
    backend: str,
    num_layers: int,
    every: int = 0,
    context: dict | None = None,
) -> Path:
    """Atomically persist ``state`` (and the run description) to ``directory``.

    Write-then-rename: the new checkpoint replaces the old one only once
    it is fully on disk, so a crash *during* checkpointing leaves the
    previous checkpoint intact -- there is never a moment without a
    valid resume point.  ``context`` is a JSON-serializable dict the
    driver uses to make resume self-contained (network directory,
    neurons, input-batch seed, ...).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    batch = state.batch
    arrays: dict[str, np.ndarray] = {
        "layer_seconds": np.asarray(state.layer_seconds, dtype=np.float64),
        "layer_density": np.asarray(state.layer_density, dtype=np.float64),
        "layer_modes": np.asarray(state.layer_modes, dtype=np.str_),
    }
    if isinstance(batch, SparseActivations):
        arrays["batch_indptr"] = batch.matrix.indptr
        arrays["batch_indices"] = batch.matrix.indices
        arrays["batch_data"] = batch.matrix.data
    else:
        arrays["batch_array"] = batch.to_array()
    meta = {
        "version": CHECKPOINT_VERSION,
        "kind": batch.kind,
        "shape": [int(batch.rows), int(batch.neurons)],
        "rows": int(state.rows),
        "layers_done": int(state.layers_done),
        "peak_nnz": int(state.peak_nnz),
        "edges_per_sample": int(state.edges_per_sample),
        "threshold": float(threshold),
        "backend": str(backend),
        "num_layers": int(num_layers),
        "every": int(every),
        "completed": bool(state.layers_done >= num_layers),
        "policy": {
            "mode": policy.mode,
            "crossover_density": policy.crossover_density,
            "min_sparse_elements": policy.min_sparse_elements,
        },
        "context": dict(context or {}),
    }
    final = checkpoint_path(directory)
    temp = final.with_name(final.name + ".tmp.npz")
    try:
        with temp.open("wb") as handle:
            np.savez(handle, meta_json=np.asarray(json.dumps(meta)), **arrays)
        os.replace(temp, final)
    except BaseException:
        temp.unlink(missing_ok=True)
        raise
    return final


def load_checkpoint(directory: str | os.PathLike) -> PipelineCheckpoint:
    """Load a checkpoint written by :func:`save_checkpoint`."""
    path = checkpoint_path(directory)
    if not path.exists():
        raise SerializationError(f"no pipeline checkpoint found at {path}")
    try:
        with np.load(path, allow_pickle=False) as npz:
            meta = json.loads(str(npz["meta_json"][()]))
            if int(meta.get("version", -1)) != CHECKPOINT_VERSION:
                raise SerializationError(
                    f"{path}: unsupported checkpoint version {meta.get('version')!r}"
                )
            shape = tuple(int(v) for v in meta["shape"])
            if meta["kind"] == SPARSE:
                batch: ActivationBatch = SparseActivations(
                    CSRMatrix(
                        shape,
                        np.array(npz["batch_indptr"]),
                        np.array(npz["batch_indices"]),
                        np.array(npz["batch_data"]),
                    )
                )
            else:
                array = np.array(npz["batch_array"], dtype=np.float64)
                if array.shape != shape:
                    raise SerializationError(
                        f"{path}: activation array shape {array.shape} does not "
                        f"match recorded shape {shape}"
                    )
                batch = DenseActivations(array)
            state = PipelineState(
                batch=batch,
                rows=int(meta["rows"]),
                layers_done=int(meta["layers_done"]),
                layer_seconds=[float(v) for v in npz["layer_seconds"]],
                layer_modes=[str(v) for v in npz["layer_modes"]],
                layer_density=[float(v) for v in npz["layer_density"]],
                peak_nnz=int(meta["peak_nnz"]),
                edges_per_sample=int(meta["edges_per_sample"]),
            )
            policy_meta = meta["policy"]
            policy = ActivationPolicy(
                mode=str(policy_meta["mode"]),
                crossover_density=float(policy_meta["crossover_density"]),
                min_sparse_elements=int(policy_meta["min_sparse_elements"]),
            )
    except (KeyError, ValueError, OSError) as exc:
        raise SerializationError(f"{path}: malformed checkpoint: {exc}") from None
    return PipelineCheckpoint(
        state=state,
        policy=policy,
        threshold=float(meta["threshold"]),
        backend=str(meta["backend"]),
        num_layers=int(meta["num_layers"]),
        every=int(meta["every"]),
        completed=bool(meta["completed"]),
        context=dict(meta["context"]),
        path=path,
    )


class CheckpointStage:
    """Persist pipeline state every ``every`` layers (and on demand).

    ``every=0`` disables the periodic saves; :meth:`save` still works
    for final/stop-point checkpoints.  Saves are atomic (see
    :func:`save_checkpoint`) and idempotent per cursor -- the stage
    remembers the last cursor written so the final save after a loop
    that just checkpointed does not rewrite the same state.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        every: int = 0,
        policy: ActivationPolicy,
        threshold: float,
        backend: str,
        num_layers: int,
        context: dict | None = None,
    ) -> None:
        if every < 0:
            raise ValidationError(f"checkpoint_every must be >= 0, got {every}")
        self.directory = Path(directory)
        self.every = int(every)
        self.policy = policy
        self.threshold = float(threshold)
        self.backend = str(backend)
        self.num_layers = int(num_layers)
        self.context = dict(context or {})
        self._last_saved: int | None = None

    @property
    def path(self) -> Path:
        return checkpoint_path(self.directory)

    def save(self, state: PipelineState) -> Path:
        path = save_checkpoint(
            self.directory,
            state,
            policy=self.policy,
            threshold=self.threshold,
            backend=self.backend,
            num_layers=self.num_layers,
            every=self.every,
            context=self.context,
        )
        self._last_saved = state.layers_done
        return path

    def after_layer(self, state: PipelineState) -> Path | None:
        """Periodic hook: checkpoint when the cursor hits a multiple of ``every``."""
        if self.every and state.layers_done % self.every == 0:
            return self.save(state)
        return None

    def finalize(self, state: PipelineState) -> Path | None:
        """Persist the end-of-run (or stop-point) state unless already on disk."""
        if self._last_saved == state.layers_done:
            return None
        return self.save(state)


# --------------------------------------------------------------------------- #
# the pipeline runner -- the single recurrence implementation
# --------------------------------------------------------------------------- #
def run_pipeline(
    layers: Iterable[tuple] | LoadStage,
    state: PipelineState,
    *,
    threshold: float,
    backend: str | SparseBackend | None = None,
    policy: str | ActivationPolicy | None = None,
    record_timing: bool = True,
    prefetch: int = 0,
    checkpoint: CheckpointStage | None = None,
    max_layers: int | None = None,
    layout: "object | None" = None,
) -> PipelineState:
    """Drive ``state`` through ``layers``: load -> compute -> checkpoint.

    ``layers`` is a :class:`LoadStage` or any iterable it accepts
    (``prefetch`` applies only when a raw iterable is wrapped here).
    ``max_layers`` stops the run -- checkpointing the stop point -- once
    ``state.layers_done`` reaches it (a *staged* run: apply layers k..m,
    exit, resume later).  ``layout`` (a
    :class:`repro.parallel.sharding.ShardLayout`) computes each layer as
    column-range shards via the serial sharded stage -- bit-identical to
    the unsharded path; the process-transport pool lives in
    :func:`repro.parallel.sharding.run_sharded_challenge_pipeline`.  On
    any error or interrupt the state reached after the last completed
    layer is checkpointed best-effort, so a killed run resumes from where
    it actually stopped rather than the last periodic save.  Returns the
    advanced ``state`` (the same object, mutated).
    """
    load = layers if isinstance(layers, LoadStage) else LoadStage(layers, prefetch=prefetch)
    if layout is not None:
        # lazy: repro.parallel.sharding imports this module at its top level
        from repro.parallel.sharding import ShardedComputeStage

        compute: ComputeStage = ShardedComputeStage(
            threshold=threshold,
            backend=resolve_backend(backend),
            policy=ActivationPolicy.resolve(policy),
            record_timing=record_timing,
            layout=layout,
        )
    else:
        compute = ComputeStage(
            threshold=threshold,
            backend=resolve_backend(backend),
            policy=ActivationPolicy.resolve(policy),
            record_timing=record_timing,
        )
    if max_layers is not None and max_layers <= state.layers_done:
        raise ValidationError(
            f"max_layers ({max_layers}) must exceed the {state.layers_done} "
            "layers already applied"
        )
    try:
        with load:
            for weight, weight_t, bias in load:
                compute.advance(state, weight, weight_t, bias)
                if checkpoint is not None:
                    checkpoint.after_layer(state)
                if max_layers is not None and state.layers_done >= max_layers:
                    break
    except BaseException:
        if checkpoint is not None:
            try:
                checkpoint.finalize(state)
            except Exception:  # noqa: BLE001 - never mask the original error
                pass
        raise
    if checkpoint is not None:
        checkpoint.finalize(state)
    return state


# --------------------------------------------------------------------------- #
# disk-backed drivers (the `repro challenge run` path)
# --------------------------------------------------------------------------- #
@dataclass
class PipelineOutcome:
    """What a (possibly staged) disk-backed pipeline run produced.

    ``result`` reflects the state *reached*: for a completed run it is
    the final :class:`InferenceResult`; for a staged run stopped at
    ``--stop-after`` it is the partial state (categories are not final
    until ``completed`` is true).  ``shards`` is the tensor-parallel
    shard count the run executed with (``None`` for the unsharded path);
    ``shard_worker_rss_mb`` carries the per-worker peak RSS readings of a
    process-transport sharded run (``None`` elsewhere).
    """

    result: InferenceResult
    completed: bool
    layers_done: int
    num_layers: int
    resumed_from: int = 0
    checkpoint: Path | None = None
    shards: int | None = None
    shard_worker_rss_mb: list | None = None


def _outcome(
    state: PipelineState,
    *,
    backend: SparseBackend,
    policy: ActivationPolicy,
    num_layers: int,
    resumed_from: int,
    stage: CheckpointStage | None,
    shards: int | None = None,
    shard_worker_rss_mb: list | None = None,
) -> PipelineOutcome:
    return PipelineOutcome(
        result=state.result(backend=backend.name, policy=policy),
        completed=state.layers_done >= num_layers,
        layers_done=state.layers_done,
        num_layers=num_layers,
        resumed_from=resumed_from,
        checkpoint=stage.path if stage is not None else None,
        shards=shards,
        shard_worker_rss_mb=shard_worker_rss_mb,
    )


def run_challenge_pipeline(
    directory: str | os.PathLike,
    neurons: int,
    inputs: np.ndarray,
    *,
    backend: str | SparseBackend | None = None,
    activations: str | ActivationPolicy | None = None,
    prefetch: int = 2,
    transport: str = THREAD,
    checkpoint_dir: str | os.PathLike | None = None,
    checkpoint_every: int = 0,
    stop_after: int | None = None,
    use_cache: bool = True,
    record_timing: bool = True,
    context: dict | None = None,
    shards: int | None = None,
    shard_transport: str = PROCESS,
) -> PipelineOutcome:
    """Checkpointed, prefetch-overlapped inference over a saved network.

    Streams the network at ``directory`` through the staged pipeline:
    layers are read from the sidecar/TSVs on a background thread
    (``prefetch`` deep; 0 disables overlap), the activation batch is
    advanced by the active backend's kernels, and -- when
    ``checkpoint_dir`` is given -- the full state is atomically persisted
    every ``checkpoint_every`` layers plus at the end (or at
    ``stop_after``, for deliberately staged runs).  ``context`` entries
    (JSON-serializable) are stored in the checkpoint so
    :func:`resume_challenge_pipeline` is self-contained; the network
    directory, neurons, and streaming options are always recorded.

    ``shards=K`` runs tensor-parallel: every layer is partitioned into K
    contiguous output-column ranges, computed independently, and
    all-gathered -- bit-identical to the unsharded run (see
    :mod:`repro.parallel.sharding`).  With the default
    ``shard_transport="process"`` a pool of K worker processes each holds
    only its slice of every layer (~1/K of the model per process); where
    processes cannot be spawned it degrades to the in-process ``"serial"``
    transport automatically.  The shard count is recorded in the
    checkpoint so resume reconstructs (and guards) the layout.
    """
    from repro.challenge.io import read_challenge_meta

    directory = Path(directory)
    meta = read_challenge_meta(directory, neurons)
    impl = resolve_backend(backend)
    policy = ActivationPolicy.resolve(activations)
    if stop_after is not None and not 1 <= stop_after <= meta.num_layers:
        raise ValidationError(
            f"stop_after must be in 1..{meta.num_layers}, got {stop_after}"
        )
    if shard_transport not in _SHARD_TRANSPORTS:
        raise ValidationError(
            f"shard_transport must be one of {_SHARD_TRANSPORTS}, got {shard_transport!r}"
        )
    layout = None
    if shards is not None:
        from repro.parallel.sharding import ShardLayout

        layout = ShardLayout.balanced(meta.neurons, shards)
    state = PipelineState.initial(inputs, neurons=meta.neurons)
    stage = None
    if checkpoint_dir is not None:
        run_context = {
            "directory": str(directory.resolve()),
            "neurons": int(meta.neurons),
            "use_cache": bool(use_cache),
            "prefetch": int(prefetch),
            "transport": str(transport),
            **(context or {}),
        }
        if layout is not None:
            run_context["shards"] = layout.shards
            run_context["shard_transport"] = str(shard_transport)
        stage = CheckpointStage(
            checkpoint_dir,
            every=checkpoint_every,
            policy=policy,
            threshold=meta.threshold,
            backend=impl.name,
            num_layers=meta.num_layers,
            context=run_context,
        )
    elif checkpoint_every:
        raise ValidationError("checkpoint_every requires a checkpoint_dir")
    elif stop_after is not None:
        raise ValidationError(
            "stop_after without a checkpoint_dir would discard the partial run"
        )
    if layout is not None and shard_transport == PROCESS:
        from repro.parallel.sharding import run_sharded_challenge_pipeline

        try:
            state, worker_rss = run_sharded_challenge_pipeline(
                directory,
                meta.neurons,
                state,
                layout=layout,
                threshold=meta.threshold,
                backend=impl,
                policy=policy,
                record_timing=record_timing,
                checkpoint=stage,
                max_layers=stop_after,
                use_cache=use_cache,
            )
            return _outcome(
                state,
                backend=impl,
                policy=policy,
                num_layers=meta.num_layers,
                resumed_from=0,
                stage=stage,
                shards=layout.shards,
                shard_worker_rss_mb=worker_rss,
            )
        except (OSError, PermissionError, RuntimeError):
            if state.layers_done:
                raise  # partially advanced: a serial redo would double-apply
            # restricted environment: fall back to the serial transport
    load = LoadStage.from_directory(
        directory,
        meta.neurons,
        start=0,
        prefetch=prefetch,
        use_cache=use_cache,
        transport=transport,
    )
    state = run_pipeline(
        load,
        state,
        threshold=meta.threshold,
        backend=impl,
        policy=policy,
        record_timing=record_timing,
        checkpoint=stage,
        max_layers=stop_after,
        layout=layout,
    )
    return _outcome(
        state,
        backend=impl,
        policy=policy,
        num_layers=meta.num_layers,
        resumed_from=0,
        stage=stage,
        shards=None if layout is None else layout.shards,
    )


def resume_challenge_pipeline(
    checkpoint_dir: str | os.PathLike,
    *,
    backend: str | SparseBackend | None = None,
    prefetch: int | None = None,
    transport: str | None = None,
    stop_after: int | None = None,
    use_cache: bool | None = None,
    record_timing: bool = True,
    shards: int | None = None,
    shard_transport: str | None = None,
) -> PipelineOutcome:
    """Continue an interrupted run from its on-disk checkpoint.

    Everything needed -- network directory, neurons, threshold, policy,
    backend, streaming options -- comes from the checkpoint itself;
    keyword overrides apply only where given (the backend may differ:
    the recurrence is backend-agnostic, so resuming under another kernel
    set still yields bit-identical categories).  Layers already applied
    are *seeked past*, never re-read.  Resuming a completed checkpoint
    is a no-op returning the stored final state.

    A sharded checkpoint records its ``--shards`` count.  By default the
    resume reuses it; an explicit ``shards`` must either match or be
    ``1`` -- dropping to unsharded is always safe because the
    checkpointed activation batch is layout-independent, while resuming
    under any *other* layout is refused loudly rather than silently
    producing a layout chimera.
    """
    ckpt = load_checkpoint(checkpoint_dir)
    impl = resolve_backend(backend if backend is not None else ckpt.backend)
    directory = ckpt.context.get("directory")
    neurons = ckpt.context.get("neurons")
    if directory is None or neurons is None:
        raise SerializationError(
            f"{ckpt.path}: checkpoint context lacks the network directory/neurons "
            "needed to resume"
        )
    recorded = ckpt.context.get("shards")
    recorded_k = int(recorded) if recorded is not None else 1
    if shards is None:
        effective_shards = int(recorded) if recorded is not None else None
    elif shards in (recorded_k, 1):
        effective_shards = int(shards)
    else:
        raise ValidationError(
            f"checkpoint at {ckpt.path} was written with --shards {recorded_k}; "
            f"resume with --shards {recorded_k} (the recorded layout) or "
            f"--shards 1 (unsharded -- always safe), not --shards {shards}"
        )
    layout = None
    if effective_shards is not None:
        from repro.parallel.sharding import ShardLayout

        layout = ShardLayout.balanced(int(neurons), effective_shards)
    effective_transport = str(
        shard_transport
        if shard_transport is not None
        else ckpt.context.get("shard_transport", PROCESS)
    )
    if effective_transport not in _SHARD_TRANSPORTS:
        raise ValidationError(
            f"shard_transport must be one of {_SHARD_TRANSPORTS}, "
            f"got {effective_transport!r}"
        )
    context = dict(ckpt.context)
    if layout is not None:
        context["shards"] = layout.shards
        context["shard_transport"] = effective_transport
    else:
        context.pop("shards", None)
        context.pop("shard_transport", None)
    stage = CheckpointStage(
        checkpoint_dir,
        every=ckpt.every,
        policy=ckpt.policy,
        threshold=ckpt.threshold,
        backend=impl.name,
        num_layers=ckpt.num_layers,
        context=context,
    )
    resumed_from = ckpt.state.layers_done
    if ckpt.completed or resumed_from >= ckpt.num_layers:
        return _outcome(
            ckpt.state,
            backend=impl,
            policy=ckpt.policy,
            num_layers=ckpt.num_layers,
            resumed_from=resumed_from,
            stage=stage,
            shards=None if layout is None else layout.shards,
        )
    if stop_after is not None and stop_after <= resumed_from:
        raise ValidationError(
            f"stop_after ({stop_after}) must exceed the {resumed_from} layers "
            "already checkpointed"
        )
    if layout is not None and effective_transport == PROCESS:
        from repro.parallel.sharding import run_sharded_challenge_pipeline

        state = ckpt.state
        try:
            state, worker_rss = run_sharded_challenge_pipeline(
                directory,
                int(neurons),
                state,
                layout=layout,
                threshold=ckpt.threshold,
                backend=impl,
                policy=ckpt.policy,
                record_timing=record_timing,
                checkpoint=stage,
                max_layers=stop_after,
                use_cache=bool(
                    use_cache
                    if use_cache is not None
                    else ckpt.context.get("use_cache", True)
                ),
            )
            return _outcome(
                state,
                backend=impl,
                policy=ckpt.policy,
                num_layers=ckpt.num_layers,
                resumed_from=resumed_from,
                stage=stage,
                shards=layout.shards,
                shard_worker_rss_mb=worker_rss,
            )
        except (OSError, PermissionError, RuntimeError):
            if state.layers_done != resumed_from:
                raise  # partially advanced: a serial redo would double-apply
            # restricted environment: fall back to the serial transport
    load = LoadStage.from_directory(
        directory,
        int(neurons),
        start=resumed_from,
        prefetch=int(
            prefetch if prefetch is not None else ckpt.context.get("prefetch", 2)
        ),
        use_cache=bool(
            use_cache if use_cache is not None else ckpt.context.get("use_cache", True)
        ),
        transport=str(
            transport if transport is not None else ckpt.context.get("transport", THREAD)
        ),
    )
    state = run_pipeline(
        load,
        ckpt.state,
        threshold=ckpt.threshold,
        backend=impl,
        policy=ckpt.policy,
        record_timing=record_timing,
        checkpoint=stage,
        max_layers=stop_after,
        layout=layout,
    )
    return _outcome(
        state,
        backend=impl,
        policy=ckpt.policy,
        num_layers=ckpt.num_layers,
        resumed_from=resumed_from,
        stage=stage,
        shards=None if layout is None else layout.shards,
    )
