"""The Graph Challenge sparse DNN inference engine.

The reference recurrence (Kepner et al., "Sparse Deep Neural Network Graph
Challenge") is, for activation matrix ``Y`` with one row per input sample:

    Z = Y W_l + B_l          (bias broadcast to active rows)
    Y = min(max(Z, 0), threshold)

after the last layer, the *categories* are the rows of ``Y`` with any
positive entry.

:class:`InferenceEngine` is the production path: it binds a network to a
sparse-kernel backend (see :mod:`repro.backends`), precomputes every
layer's transposed weight matrix **once** at construction (the recurrence
computes ``Y W`` as ``(W^T Y^T)^T``, so a naive implementation pays a
transpose per layer per call), and runs the recurrence either single-shot
or in chunked mini-batches -- optionally fanned out across processes via
:func:`repro.parallel.executor.parallel_map` -- while recording per-layer
wall-clock time and the backend used.

:func:`sparse_dnn_inference` keeps the original functional API on top of
the engine; engines are cached per ``(network, backend)`` so repeated
calls (and :func:`layer_activation_profile`) reuse the transposed
weights.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.backends import resolve_backend
from repro.backends.base import SparseBackend
from repro.challenge.generator import ChallengeNetwork
from repro.errors import ShapeError, ValidationError


@dataclass
class InferenceResult:
    """Outcome of a sparse DNN inference run."""

    activations: np.ndarray
    categories: np.ndarray
    layer_seconds: list[float] = field(default_factory=list)
    edges_traversed: int = 0
    backend: str = ""

    @property
    def total_seconds(self) -> float:
        """Total inference wall-clock time across layers."""
        return float(sum(self.layer_seconds))

    @property
    def edges_per_second(self) -> float:
        """The Graph Challenge throughput figure of merit (edges / second)."""
        total = self.total_seconds
        return self.edges_traversed / total if total > 0 else float("inf")


def _layer_step(
    y: np.ndarray,
    weight_t,
    bias: np.ndarray,
    threshold: float,
    backend: SparseBackend,
) -> np.ndarray:
    """One layer of the recurrence: ``min(max(Y W + b, 0), threshold)``.

    ``weight_t`` is the pre-transposed weight matrix (``Y W`` is computed
    as ``(W^T Y^T)^T``).  The bias is only added to rows that have any
    active input, matching the GraphBLAS reference implementation (bias
    enters through the semiring on existing entries, so fully-inactive
    samples stay inactive).
    """
    z = backend.spmm(weight_t, y.T).T
    active_rows = y.sum(axis=1) > 0
    z[active_rows] += bias
    np.maximum(z, 0.0, out=z)
    np.minimum(z, threshold, out=z)
    return z


class InferenceEngine:
    """A network bound to a backend, ready for repeated batched inference.

    Parameters
    ----------
    network:
        The :class:`~repro.challenge.generator.ChallengeNetwork` to run.
    backend:
        Backend name, instance, or ``None`` for the active backend.  The
        per-layer transposed weights are computed once here, with this
        backend, and reused by every subsequent call -- the hot loop never
        transposes.
    """

    def __init__(
        self,
        network: ChallengeNetwork,
        *,
        backend: str | SparseBackend | None = None,
    ) -> None:
        self.network = network
        self.backend = resolve_backend(backend)
        # x @ W computed as (W^T @ x^T)^T; pay the transposes once, here.
        self.weights_t = tuple(self.backend.transpose(w) for w in network.weights)
        self.edges_per_sample = int(sum(w.nnz for w in network.weights))

    # ------------------------------------------------------------------ #
    def run(
        self,
        inputs: np.ndarray,
        *,
        chunk_size: int | None = None,
        workers: int | None = None,
        record_timing: bool = True,
    ) -> InferenceResult:
        """Run the full recurrence over ``inputs`` (``(batch, neurons)``).

        ``chunk_size`` splits the batch into mini-batches of at most that
        many rows, bounding the peak size of intermediate activation
        buffers (each chunk's intermediates are released before the next
        chunk starts); the merged result is bit-identical to the
        single-shot path.  ``workers`` additionally fans the chunks out
        across a process pool (chunks are independent, so this is a pure
        batch partition); per-layer timings are not collected on the
        parallel path.
        """
        y = self._validate_inputs(inputs)
        batch = y.shape[0]
        if chunk_size is not None and chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        if workers is not None and workers < 1:
            raise ValidationError(f"workers must be >= 1, got {workers}")
        if batch == 0:
            return self._run_block(y, record_timing=record_timing)
        if chunk_size is None:
            if workers is None or workers == 1:
                return self._run_block(y, record_timing=record_timing)
            # floor, not ceil: ceil(batch/workers) can yield fewer chunks
            # than workers (batch=9, workers=4 -> 3 chunks of 3), idling a
            # worker; floor gives at least `workers` chunks when batch
            # allows, and the pool queue balances the remainder
            chunk_size = max(1, batch // workers)
        if batch <= chunk_size:
            # a single chunk: run it in-process; fanning one task out to a
            # pool would only add spawn/pickle overhead
            return self._run_block(y, record_timing=record_timing)
        if workers is not None and workers > 1:
            return self._run_parallel(y, chunk_size, workers)
        layer_seconds = [0.0] * self.network.num_layers
        activations: list[np.ndarray] = []
        categories: list[np.ndarray] = []
        for offset, chunk_result in self.stream(
            y, chunk_size=chunk_size, record_timing=record_timing
        ):
            activations.append(chunk_result.activations)
            categories.append(chunk_result.categories + offset)
            for i, seconds in enumerate(chunk_result.layer_seconds):
                layer_seconds[i] += seconds
        return self._merged_result(
            activations, categories, layer_seconds if record_timing else [], batch
        )

    def stream(
        self,
        inputs: np.ndarray,
        *,
        chunk_size: int,
        record_timing: bool = False,
    ) -> Iterator[tuple[int, InferenceResult]]:
        """Yield ``(row_offset, result)`` per mini-batch of ``chunk_size`` rows.

        The streaming form keeps only one chunk's activations alive at a
        time, so arbitrarily large batches run in bounded memory when the
        caller consumes (or discards) each chunk before requesting the
        next.  Chunk category indices are chunk-local; add ``row_offset``
        to place them in the full batch.
        """
        y = self._validate_inputs(inputs)
        if chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        for offset in range(0, y.shape[0], chunk_size):
            chunk = y[offset : offset + chunk_size]
            yield offset, self._run_block(chunk, record_timing=record_timing)

    def layer_profile(self, inputs: np.ndarray) -> list[float]:
        """Fraction of nonzero activations after every layer (diagnostic curve).

        The challenge instances are tuned so activations neither die out
        nor saturate; this profile is the quickest way to confirm a
        generated instance behaves like the real ones.
        """
        y = self._validate_inputs(inputs)
        profile = []
        for weight_t, bias in zip(self.weights_t, self.network.biases):
            y = self._apply_layer(y, weight_t, bias)
            profile.append(float(np.count_nonzero(y) / y.size))
        return profile

    # ------------------------------------------------------------------ #
    def _validate_inputs(self, inputs: np.ndarray) -> np.ndarray:
        y = np.asarray(inputs, dtype=np.float64)
        if y.ndim != 2 or y.shape[1] != self.network.neurons:
            raise ShapeError(
                f"inputs must have shape (batch, {self.network.neurons}), got {y.shape}"
            )
        return y

    def _apply_layer(self, y: np.ndarray, weight_t, bias: np.ndarray) -> np.ndarray:
        return _layer_step(y, weight_t, bias, self.network.threshold, self.backend)

    def _run_block(self, y: np.ndarray, *, record_timing: bool) -> InferenceResult:
        batch = y.shape[0]
        layer_seconds: list[float] = []
        for weight_t, bias in zip(self.weights_t, self.network.biases):
            start = time.perf_counter() if record_timing else 0.0
            y = self._apply_layer(y, weight_t, bias)
            if record_timing:
                layer_seconds.append(time.perf_counter() - start)
        categories = np.flatnonzero(y.sum(axis=1) > 0)
        return InferenceResult(
            activations=y,
            categories=categories,
            layer_seconds=layer_seconds,
            edges_traversed=self.edges_per_sample * batch,
            backend=self.backend.name,
        )

    def _run_parallel(
        self, y: np.ndarray, chunk_size: int, workers: int
    ) -> InferenceResult:
        from repro.parallel.executor import parallel_map

        chunks = [y[offset : offset + chunk_size] for offset in range(0, y.shape[0], chunk_size)]
        # Ship only what the recurrence needs (transposed weights, biases,
        # threshold, backend) -- not the whole engine, whose network would
        # add the original weights and topology to every task's pickle.
        model = (self.weights_t, self.network.biases, self.network.threshold, self.backend)
        tasks = [(model, chunk) for chunk in chunks]
        outputs = parallel_map(
            _engine_chunk_worker, tasks, workers=workers, min_items_for_parallel=2
        )
        activations = [o[0] for o in outputs]
        categories = []
        offset = 0
        for chunk, (_, cats) in zip(chunks, outputs):
            categories.append(cats + offset)
            offset += chunk.shape[0]
        return self._merged_result(activations, categories, [], y.shape[0])

    def _merged_result(
        self,
        activations: list[np.ndarray],
        categories: list[np.ndarray],
        layer_seconds: list[float],
        batch: int,
    ) -> InferenceResult:
        """Assemble per-chunk outputs (categories already offset) into one result."""
        return InferenceResult(
            activations=np.concatenate(activations, axis=0)
            if activations
            else np.empty((0, self.network.neurons)),
            categories=np.concatenate(categories)
            if categories
            else np.empty(0, dtype=np.int64),
            layer_seconds=layer_seconds,
            edges_traversed=self.edges_per_sample * batch,
            backend=self.backend.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"InferenceEngine(network={self.network!r}, "
            f"backend={self.backend.name!r})"
        )


def _engine_chunk_worker(task) -> tuple[np.ndarray, np.ndarray]:
    """Process-pool worker: run one chunk through the recurrence.

    The model bundle (transposed weights, biases, threshold, backend)
    rides along in the task tuple (CSR matrices and backends pickle
    cleanly) so the worker is independent of process start method and of
    module-level state.
    """
    (weights_t, biases, threshold, backend), y = task
    for weight_t, bias in zip(weights_t, biases):
        y = _layer_step(y, weight_t, bias, threshold, backend)
    return y, np.flatnonzero(y.sum(axis=1) > 0)


def engine_for(
    network: ChallengeNetwork, backend: str | SparseBackend | None = None
) -> InferenceEngine:
    """The cached engine of ``network`` for ``backend`` (built on first use).

    Engines are memoized on the network object itself (one per backend
    name), so their lifetime is tied to the network and repeated
    functional-API calls never pay the per-layer transposes again.
    """
    impl = resolve_backend(backend)
    engines: dict[str, InferenceEngine] | None = getattr(network, "_engines", None)
    if engines is None:
        engines = {}
        object.__setattr__(network, "_engines", engines)
    engine = engines.get(impl.name)
    if engine is None:
        engine = InferenceEngine(network, backend=impl)
        engines[impl.name] = engine
    return engine


def sparse_dnn_inference(
    network: ChallengeNetwork,
    inputs: np.ndarray,
    *,
    record_timing: bool = True,
    backend: str | SparseBackend | None = None,
    chunk_size: int | None = None,
    workers: int | None = None,
) -> InferenceResult:
    """Run the challenge inference recurrence over all layers of ``network``.

    ``inputs`` is a dense ``(batch, neurons)`` activation matrix (sparse
    batches are supported by the caller simply passing mostly-zero rows --
    the kernel exploits sparsity through the CSR weight matrices).

    This is the stable functional front end of :class:`InferenceEngine`;
    see :meth:`InferenceEngine.run` for the ``chunk_size`` / ``workers``
    semantics.  ``edges_traversed`` is the Graph Challenge convention:
    total stored weight entries across layers, times the batch size.
    """
    return engine_for(network, backend).run(
        inputs,
        chunk_size=chunk_size,
        workers=workers,
        record_timing=record_timing,
    )


def infer_categories(network: ChallengeNetwork, inputs: np.ndarray) -> np.ndarray:
    """Convenience wrapper returning only the surviving category indices."""
    return sparse_dnn_inference(network, inputs, record_timing=False).categories


def layer_activation_profile(network: ChallengeNetwork, inputs: np.ndarray) -> list[float]:
    """Fraction of nonzero activations after every layer (diagnostic curve).

    Delegates to the cached :class:`InferenceEngine` of ``network`` so the
    transposed weights are shared with inference calls.  Raises
    :class:`ValidationError` on malformed inputs (the historical contract
    of this wrapper; the engine itself raises :class:`ShapeError`).
    """
    try:
        return engine_for(network).layer_profile(inputs)
    except ShapeError as exc:
        raise ValidationError(str(exc)) from None
